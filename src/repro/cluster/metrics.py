"""Cluster-wide metrics collection.

Production deployments need observability: per-operation latency
distributions, link utilization, device load, and KV-store behaviour.
The :class:`MetricsCollector` gathers these from a running deployment —
benchmarks and examples use it to report the same quantities the
paper's evaluation measures.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Optional

from repro.cluster.builder import Cloud4Home

__all__ = ["OperationRecord", "MetricsCollector"]


@dataclass
class OperationRecord:
    """One timed operation."""

    op: str
    device: str
    started_at: float
    finished_at: float
    bytes_moved: float = 0.0
    ok: bool = True

    @property
    def latency_s(self) -> float:
        return self.finished_at - self.started_at


@dataclass
class LatencySummary:
    """Distribution summary for one operation kind."""

    count: int
    mean_s: float
    median_s: float
    p95_s: float
    max_s: float
    throughput_mb_s: float


class MetricsCollector:
    """Collects and summarizes metrics from one deployment."""

    def __init__(self, cluster: Cloud4Home) -> None:
        self.cluster = cluster
        self.records: list[OperationRecord] = []
        self._started_at = cluster.sim.now

    @property
    def sim(self):
        return self.cluster.sim

    # -- recording -----------------------------------------------------------

    def timed(self, op: str, device: str, generator, bytes_moved: float = 0.0):
        """Process: run ``generator`` and record its latency.

        Returns the wrapped operation's value; failures are recorded
        with ``ok=False`` and re-raised.
        """
        started = self.sim.now
        try:
            result = yield from generator
        except Exception:
            self.records.append(
                OperationRecord(
                    op, device, started, self.sim.now, bytes_moved, ok=False
                )
            )
            raise
        self.records.append(
            OperationRecord(op, device, started, self.sim.now, bytes_moved)
        )
        return result

    def record(
        self,
        op: str,
        device: str,
        started_at: float,
        finished_at: float,
        bytes_moved: float = 0.0,
        ok: bool = True,
    ) -> None:
        """Record an externally timed operation."""
        self.records.append(
            OperationRecord(op, device, started_at, finished_at, bytes_moved, ok)
        )

    # -- summaries -------------------------------------------------------------

    def ops(self, op: Optional[str] = None, ok_only: bool = True):
        out = self.records
        if op is not None:
            out = [r for r in out if r.op == op]
        if ok_only:
            out = [r for r in out if r.ok]
        return out

    def summary(self, op: str) -> Optional[LatencySummary]:
        """Latency distribution for one operation kind (None if empty)."""
        records = self.ops(op)
        if not records:
            return None
        latencies = sorted(r.latency_s for r in records)
        span = max(r.finished_at for r in records) - min(
            r.started_at for r in records
        )
        total_mb = sum(r.bytes_moved for r in records) / (1024 * 1024)
        p95_index = min(len(latencies) - 1, int(0.95 * len(latencies)))
        return LatencySummary(
            count=len(latencies),
            mean_s=statistics.mean(latencies),
            median_s=statistics.median(latencies),
            p95_s=latencies[p95_index],
            max_s=latencies[-1],
            throughput_mb_s=total_mb / span if span > 0 else 0.0,
        )

    def error_rate(self, op: Optional[str] = None) -> float:
        relevant = [r for r in self.records if op is None or r.op == op]
        if not relevant:
            return 0.0
        return sum(1 for r in relevant if not r.ok) / len(relevant)

    def link_utilization(self) -> dict[str, float]:
        """Fraction of each cluster link's capacity used since start."""
        elapsed = self.sim.now - self._started_at
        if elapsed <= 0:
            return {}
        out = {}
        for link in (
            self.cluster.lan_link,
            self.cluster.uplink,
            self.cluster.downlink,
        ):
            out[link.name] = min(
                1.0, link.bytes_delivered / (link.bandwidth * elapsed)
            )
        return out

    def device_loads(self) -> dict[str, float]:
        """Average core utilization per device since boot."""
        return {
            d.name: d.hypervisor.average_load() for d in self.cluster.devices
        }

    def kv_totals(self) -> dict[str, int]:
        """Aggregated KV-store counters across all devices.

        Reads each store's :meth:`KvStats.snapshot` — the same export
        the telemetry metrics plane ingests — so the two views can
        never drift apart.
        """
        totals: dict[str, int] = {}
        for device in self.cluster.devices:
            for key, value in device.kv.stats.snapshot()["counters"].items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def report(self) -> str:
        """Human-readable metrics dump."""
        lines = ["== cluster metrics =="]
        for op in sorted({r.op for r in self.records}):
            s = self.summary(op)
            if s is None:
                continue
            lines.append(
                f"{op}: n={s.count} mean={s.mean_s:.3f}s "
                f"median={s.median_s:.3f}s p95={s.p95_s:.3f}s "
                f"max={s.max_s:.3f}s thr={s.throughput_mb_s:.2f}MB/s"
            )
            rate = self.error_rate(op)
            if rate:
                lines.append(f"  error rate: {rate:.1%}")
        lines.append("link utilization:")
        for name, util in self.link_utilization().items():
            lines.append(f"  {name}: {util:.1%}")
        lines.append("device loads:")
        for name, load in self.device_loads().items():
            lines.append(f"  {name}: {load:.1%}")
        kv = self.kv_totals()
        lines.append(
            f"kv: puts={kv['puts']} gets={kv['gets']} "
            f"cache_hits={kv['cache_hits']} forwards={kv['forwards']}"
        )
        return "\n".join(lines)
