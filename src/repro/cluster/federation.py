"""Federation of multiple Cloud4Home infrastructures.

Paper, Section VII: "(v) to evaluate use cases in which multiple
Cloud4Home infrastructures collaborate.  A concrete example ... would
be a 'neighborhood security' system in which multiple Cloud4Home
systems interact to provide effective security services for entire
neighborhoods."

The federation shares one simulated fabric: every home keeps its own
LAN, uplink, overlay, and VStore++ deployment; collaboration flows
through the cloud, exactly as separate households would reach each
other in practice:

* a **directory service** (a cloud-hosted rendezvous point) tracks
  published objects and alert subscriptions;
* homes **publish** ``public``-access objects by uploading them to the
  shared S3 bucket and registering the URL;
* any home can **fetch** a published object over its own downlink;
* a home can **broadcast an alert** (e.g. an intruder detection) that
  the directory relays to every subscribed home's gateway device.

Access control is enforced at the federation boundary: only objects
whose metadata says ``access == "public"`` may be published.
"""

from __future__ import annotations

from typing import Callable

from repro.cluster.builder import Cloud4Home
from repro.cluster.config import ClusterConfig, DeviceConfig, default_devices
from repro.net import Network, Request, RpcEndpoint
from repro.sim import RandomSource, Simulator
from repro.vstore import ObjectNotFoundError, object_key
from repro.vstore.errors import AccessDeniedError
from repro.vstore.objects import ObjectMeta

__all__ = ["FederationDirectory", "Federation"]

MSG_PUBLISH = "fed.publish"
MSG_LOOKUP = "fed.lookup"
MSG_SUBSCRIBE = "fed.subscribe"
MSG_ALERT = "fed.alert"
MSG_ALERT_DELIVER = "fed.alert-deliver"


class FederationDirectory:
    """The cloud-hosted rendezvous service for federated homes."""

    def __init__(self, network: Network, host_name: str = "federation-hub") -> None:
        self.network = network
        host = network.add_host(host_name, group="cloud")
        self.host_name = host_name
        self.endpoint = RpcEndpoint(network, host)
        #: Published objects: name -> {home, url, size_mb, access}.
        self.entries: dict[str, dict] = {}
        #: Gateway device names subscribed to alerts, by home label.
        self.subscribers: dict[str, str] = {}
        self.alerts_relayed = 0
        self._register_handlers()
        self.endpoint.start()

    def _register_handlers(self) -> None:
        self.endpoint.register(MSG_PUBLISH, self._handle_publish)
        self.endpoint.register(MSG_LOOKUP, self._handle_lookup)
        self.endpoint.register(MSG_SUBSCRIBE, self._handle_subscribe)
        self.endpoint.register(MSG_ALERT, self._handle_alert)

    def _handle_publish(self, request: Request) -> dict:
        entry = dict(request.body)
        self.entries[entry["name"]] = entry
        return {"published": True}

    def _handle_lookup(self, request: Request) -> dict:
        name = request.body["name"]
        entry = self.entries.get(name)
        if entry is None:
            raise ObjectNotFoundError(name)
        return entry

    def _handle_subscribe(self, request: Request) -> dict:
        self.subscribers[request.body["home"]] = request.body["gateway"]
        return {"subscribed": True}

    def _handle_alert(self, request: Request) -> None:
        """Relay an alert to every subscribed home except the sender."""
        body = request.body
        for home, gateway in self.subscribers.items():
            if home == body.get("from_home"):
                continue
            try:
                self.endpoint.notify(gateway, MSG_ALERT_DELIVER, body)
            except Exception:  # noqa: BLE001 - a down gateway is fine
                continue
        self.alerts_relayed += 1


class Federation:
    """Several Cloud4Home homes collaborating over one shared cloud."""

    def __init__(
        self,
        homes: list[Cloud4Home],
        directory: FederationDirectory,
    ) -> None:
        self.homes = homes
        self.directory = directory
        self.sim = directory.network.sim
        #: Per-home alert callbacks: (home_index, alert_body).
        self.on_alert: list[Callable[[int, dict], None]] = []
        self._gateway_endpoints: list[RpcEndpoint] = []

    # -- construction -----------------------------------------------------

    @classmethod
    def build(
        cls,
        n_homes: int = 2,
        seed: int = 0,
        devices_per_home: int = 3,
        with_ec2: bool = False,
    ) -> "Federation":
        """Assemble ``n_homes`` independent homes on one shared fabric.

        Device names are prefixed per home (``h0-netbook0`` ...), each
        home gets its own LAN and wireless uplink, and all of them share
        the S3 bucket and the federation directory.
        """
        if n_homes < 1:
            raise ValueError("n_homes must be >= 1")
        sim = Simulator()
        network = Network(sim, RandomSource(seed))
        homes: list[Cloud4Home] = []
        shared_s3 = None
        for h in range(n_homes):
            base = default_devices()[:devices_per_home]
            devices = [
                DeviceConfig(
                    **{**dc.__dict__, "name": f"h{h}-{dc.name}"}
                )
                for dc in base
            ]
            config = ClusterConfig(
                devices=devices, seed=seed + h, with_ec2=with_ec2
            )
            home = Cloud4Home(
                config, network=network, s3=shared_s3, home_group=f"home{h}"
            )
            shared_s3 = home.s3
            homes.append(home)
        directory = FederationDirectory(network)
        federation = cls(homes, directory)
        return federation

    def start(self) -> None:
        """Start every home and subscribe their gateways for alerts."""
        for index, home in enumerate(self.homes):
            home.start(monitors=False)
            gateway = self.gateway(index)
            self._wire_gateway(index, gateway)
            self.run(
                self._call(
                    gateway.vstore.endpoint,
                    MSG_SUBSCRIBE,
                    {"home": f"home{index}", "gateway": gateway.name},
                )
            )

    def gateway(self, home_index: int):
        """The device that fronts a home's federation traffic."""
        return self.homes[home_index].devices[0]

    def run(self, generator):
        proc = self.sim.process(generator)
        return self.sim.run(until=proc)

    # -- collaboration operations ---------------------------------------------

    def publish(self, home_index: int, object_name: str):
        """Process: make one home's public object visible to the others.

        The gateway fetches the object's metadata, enforces the
        ``public`` access level, uploads the bytes to the shared S3
        bucket, and registers the entry with the directory.
        """
        gateway = self.gateway(home_index)
        vstore = gateway.vstore
        try:
            value = yield from vstore.kv.get(object_key(object_name))
        except Exception as exc:  # KeyNotFoundError from another home's view
            raise ObjectNotFoundError(object_name) from exc
        meta = ObjectMeta.from_wire(value)
        if meta.access != "public":
            raise AccessDeniedError(object_name, f"home{home_index}-federation")
        # Bring the bytes to the gateway, then push them to the cloud.
        if meta.location != gateway.name and not meta.is_remote:
            yield from vstore._ensure_local(meta)
        if not meta.is_remote:
            url = yield from vstore.cloud.store_remote(
                f"fed/{object_name}", meta.size_bytes
            )
        else:
            url = meta.url
        entry = {
            "name": object_name,
            "home": f"home{home_index}",
            "url": url,
            "size_mb": meta.size_mb,
            "access": meta.access,
        }
        yield self._call_event(vstore.endpoint, MSG_PUBLISH, entry)
        return entry

    def fetch_published(self, home_index: int, object_name: str):
        """Process: pull a neighbour's published object into this home.

        Returns the downloaded size in MB.  The object arrives at the
        gateway over the home's own downlink.
        """
        gateway = self.gateway(home_index)
        yield self._call_event(
            gateway.vstore.endpoint, MSG_LOOKUP, {"name": object_name}
        )
        home = self.homes[home_index]
        s3_key = f"fed/{object_name}"
        if not home.s3.contains(s3_key):
            # Published while already cloud-resident: use the raw name.
            s3_key = object_name
        report = yield from home.s3.get_object(gateway.name, s3_key)
        return report.nbytes / (1024 * 1024)

    def broadcast_alert(self, home_index: int, alert: dict):
        """Process: send an alert to every other home's gateway."""
        gateway = self.gateway(home_index)
        body = {**alert, "from_home": f"home{home_index}"}
        yield self._call_event(
            gateway.vstore.endpoint, MSG_ALERT, body
        )
        return body

    # -- plumbing -----------------------------------------------------------------

    def _wire_gateway(self, index: int, gateway) -> None:
        endpoint = gateway.vstore.endpoint

        def deliver(request: Request, index=index) -> None:
            for callback in self.on_alert:
                callback(index, request.body)

        endpoint.register(MSG_ALERT_DELIVER, deliver)
        self._gateway_endpoints.append(endpoint)

    def _call(self, endpoint: RpcEndpoint, msg_type: str, body: dict):
        reply = yield endpoint.call(self.directory.host_name, msg_type, body)
        return reply

    def _call_event(self, endpoint: RpcEndpoint, msg_type: str, body: dict):
        return endpoint.call(self.directory.host_name, msg_type, body)
