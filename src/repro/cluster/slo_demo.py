"""The seeded availability-under-chaos SLO scenario.

One scenario, three consumers — the ``python -m repro slo --check``
CLI, ``benchmarks/perf/slo_bench.py``, and the integration test in
``tests/telemetry/`` — so the proof the acceptance gate relies on is
defined exactly once:

* eight home nodes store a working set with two payload replicas each
  (``resilience=True``), while a survivor drives a steady fetch loop;
* a fixed chaos script kills 2 of the 8 nodes;
* the **availability SLO must fire within one window** of the second
  kill, and must **resolve after the Repairer restores replication**
  (promoting surviving replicas to primary and re-replicating) — with
  a schema-valid flight-recorder dump produced along the way.

The SLO judges *clean* fetches: a fetch counts toward availability
only when it succeeds **and** is served by the object's recorded
primary or from the fetching node's own disk (as primary or replica
holder), not by failover to a *remote* replica or the cloud
backstop.  That is the honest signal here: with two replicas the stack
keeps every fetch *succeeding* through the outage (that is PR 4's
availability claim, benchmarked in ``resilience_bench``), but a
quarter of the working set is being served degraded — one failed
holder away from loss — until the repairers promote and re-replicate.
The windowed ratio drops below target within a window of the kills
and recovers only after the repair log shows the promotions, which is
exactly the firing → resolved sequence the engine must produce.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.builder import Cloud4Home
from repro.cluster.chaos import ChaosSchedule
from repro.cluster.config import (
    ClusterConfig,
    DeviceConfig,
    ResilienceConfig,
    SloConfig,
)
from repro.kvstore import KvError
from repro.net import NetworkError
from repro.telemetry.slo import SloSpec
from repro.vstore.errors import VStoreError

__all__ = ["availability_chaos_scenario", "AVAILABILITY_SLO_ID", "CLEAN_FETCH_METRIC"]

N_NODES = 8
VICTIMS = ("node1", "node2")
AVAILABILITY_SLO_ID = "fetch-availability"
#: The windowed ratio the scenario feeds: ok = fetch succeeded and was
#: served by its primary holder (no failover, no cloud backstop).
CLEAN_FETCH_METRIC = "fetch.clean"

WINDOW_S = 10.0
SUB_WINDOWS = 5
EVAL_PERIOD_S = 2.0
REPAIR_PERIOD_S = 20.0
FETCH_GAP_S = 0.4


def _availability_spec() -> SloSpec:
    return SloSpec(
        id=AVAILABILITY_SLO_ID,
        metric=CLEAN_FETCH_METRIC,
        kind="ratio",
        op=">=",
        threshold=0.99,
        min_samples=5,
        breach_windows=1,
        clear_windows=1,
        description=f"clean fetch ratio >= 0.99 over {WINDOW_S:.0f}s windows",
    )


def _build(seed: int, dump_dir: Optional[str]) -> Cloud4Home:
    config = ClusterConfig(
        devices=[DeviceConfig(name=f"node{i}") for i in range(N_NODES)],
        seed=seed,
        replication_factor=3,
        resilience=True,
        data_replicas=2,
        resilience_tuning=ResilienceConfig(repair_period_s=REPAIR_PERIOD_S),
        slo=True,
        slo_tuning=SloConfig(
            window_s=WINDOW_S,
            sub_windows=SUB_WINDOWS,
            eval_period_s=EVAL_PERIOD_S,
            specs=[_availability_spec()],
            recorder_dump_dir=dump_dir,
        ),
    )
    c4h = Cloud4Home(config)
    c4h.start()
    return c4h


def _one_fetch(c4h: Cloud4Home, survivor, name: str, ratio):
    """Process: one fetch, marked into the clean ratio on completion."""
    sim = c4h.sim
    try:
        result = yield from survivor.client.fetch_object(name)
    except (NetworkError, VStoreError, KvError):
        ratio.mark(now=sim.now, ok=False)
    else:
        # Clean = served from this node's own disk (as primary or as a
        # replica holder) or by the recorded primary.  A serve that had
        # to fail over to a *remote* replica or the cloud backstop is
        # the degraded signal the SLO watches.
        clean = result.served_from in (
            "local",
            survivor.name,
            result.meta.location,
        )
        ratio.mark(now=sim.now, ok=clean)


def _fetch_loop(c4h: Cloud4Home, survivor, names: list[str], ratio, stop_at: float):
    """Process: open-loop round-robin fetch injection.

    Each fetch runs as its own process so one straggler (e.g. an RPC
    in flight to a node the chaos script kills, which burns its full
    timeout) cannot stall the offered load — the same open-loop
    principle as :class:`repro.load.OpenLoopDriver`.
    """
    sim = c4h.sim
    i = 0
    while sim.now < stop_at:
        sim.process(_one_fetch(c4h, survivor, names[i % len(names)], ratio))
        i += 1
        yield sim.timeout(FETCH_GAP_S)


def availability_chaos_scenario(
    seed: int = 7,
    n_objects: int = 24,
    horizon_s: float = 80.0,
    dump_dir: Optional[str] = None,
) -> dict:
    """Run the scenario; return a JSON-ready timeline and verdict.

    The returned dict's ``ok`` is True iff the availability SLO fired
    within one window (plus one evaluator period of detection
    granularity) of the second kill AND resolved at-or-after the first
    repair action.  ``dump`` always carries one flight-recorder dump
    for schema validation; when ``dump_dir`` is set, alert-triggered
    artifacts land there too (paths in ``dump_paths``).
    """
    c4h = _build(seed, dump_dir)
    engine = c4h.slo_engine
    # The fetch vantage must be a survivor that is *not* itself a
    # replica holder for the working set: the balanced placement
    # policy concentrates replica copies on a few nodes (node0 among
    # them), and a node that holds a copy of everything serves every
    # fetch from its own disk — clean by definition — so it can never
    # observe the degraded window the SLO is meant to catch.
    survivor = c4h.device("node3")

    names = []
    for i in range(n_objects):
        writer = c4h.devices[i % N_NODES]
        name = f"slo-{i:03d}.jpg"
        c4h.run(writer.client.store_file(name, 1.0))
        names.append(name)

    t0 = c4h.sim.now
    ratio = c4h.metrics.windowed_ratio(
        CLEAN_FETCH_METRIC, node=survivor.name,
        window_s=WINDOW_S, sub_windows=SUB_WINDOWS,
    )
    c4h.sim.process(_fetch_loop(c4h, survivor, names, ratio, t0 + horizon_s))
    chaos = (
        ChaosSchedule(c4h)
        .crash(after=0.5, device_name=VICTIMS[0])
        .crash(after=1.0, device_name=VICTIMS[1])
    )
    chaos.start()
    t_kill = t0 + 1.0  # the second (final) kill
    c4h.sim.run(until=t0 + horizon_s)

    alerts = [a for a in engine.alerts if a.slo_id == AVAILABILITY_SLO_ID]
    fired = next((a for a in alerts if a.state == "firing"), None)
    resolved = next((a for a in alerts if a.state == "resolved"), None)
    repairs = [
        action
        for device in c4h.devices
        if device.repairer is not None and device.name not in VICTIMS
        for action in device.repairer.repairs
        if action.action in ("promote", "replicate")
    ]
    first_repair_at = min((a.at for a in repairs), default=None)

    fired_ok = fired is not None and fired.at - t_kill <= WINDOW_S + EVAL_PERIOD_S
    resolved_ok = (
        resolved is not None
        and fired is not None
        and resolved.at > fired.at
        and first_repair_at is not None
        and resolved.at >= first_repair_at
    )
    # The engine must agree the SLO is healthy again at the horizon.
    clear_ok = (AVAILABILITY_SLO_ID, "") not in engine.firing() and (
        AVAILABILITY_SLO_ID,
        survivor.name,
    ) not in engine.firing()

    hub = c4h.recorders
    final_dump = hub.dump(now=c4h.sim.now, reason="scenario-end")
    return {
        "seed": seed,
        "nodes": N_NODES,
        "killed": list(VICTIMS),
        "objects": n_objects,
        "window_s": WINDOW_S,
        "eval_period_s": EVAL_PERIOD_S,
        "t_kill": t_kill,
        "fired_at": fired.at if fired is not None else None,
        "fired_within_s": (fired.at - t_kill) if fired is not None else None,
        "resolved_at": resolved.at if resolved is not None else None,
        "first_repair_at": first_repair_at,
        "repair_actions": len(repairs),
        "alerts": [a.as_dict() for a in alerts],
        "alerts_total": len(engine.alerts),
        "evaluations": engine.evaluations,
        "ok": bool(fired_ok and resolved_ok and clear_ok),
        "dump": final_dump,
        "dump_paths": list(hub.dump_paths),
        "health": {
            node: hs.score for node, hs in c4h.health.scoreboard(c4h.sim.now).items()
        },
    }
