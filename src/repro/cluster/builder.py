"""Assembly of a complete Cloud4Home deployment.

:class:`Cloud4Home` wires every layer of the reproduction together the
way the prototype deployment did: per-device hypervisors with a dom0
and a guest domain joined by a XenSocket channel, a Chimera overlay
with the DHT key-value store, resource monitors, service registries,
the VStore++ node and client, a home LAN, and the WAN path to the
simulated S3/EC2 cloud.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Optional

from repro.cloud import Ec2Instance, PublicCloudInterface, S3Store
from repro.kvstore import DhtKeyValueStore
from repro.monitoring import (
    BandwidthEstimator,
    DecisionEngine,
    FileSystemWatcher,
    ResourceMonitor,
    ResourceSnapshot,
)
from repro.net import Link, Network, Route, TcpProfile
from repro.overlay import ID_DIGITS, ChimeraNode, PeerInfo
from repro.resilience import (
    BreakerRegistry,
    Repairer,
    ResilientCaller,
    RetryPolicy,
)
from repro.services import Service, ServiceRegistry
from repro.sim import RandomSource, Simulator
from repro.storage import SimDiskStore, StorageFlusher, make_store
from repro.telemetry import (
    HealthBoard,
    MetricsRegistry,
    RecorderHub,
    SloEngine,
    SloEvaluator,
    Telemetry,
    WindowPolicy,
    default_slo_specs,
)
from repro.virt import (
    ATOM_NETBOOK,
    ATOM_S1,
    EC2_XL,
    QUAD_DESKTOP,
    QUAD_S2,
    DeviceProfile,
    Domain,
    Hypervisor,
    TransferEngine,
    XenSocketChannel,
)
from repro.vstore import StripeCodec, StripingPolicy, VStoreClient, VStoreNode
from repro.cluster.config import ClusterConfig, DeviceConfig

__all__ = ["Device", "Cloud4Home", "PROFILES"]

MB = 1024 * 1024

PROFILES: dict[str, DeviceProfile] = {
    "atom-netbook": ATOM_NETBOOK,
    "quad-desktop": QUAD_DESKTOP,
    "atom-s1": ATOM_S1,
    "quad-s2": QUAD_S2,
    "ec2-xl": EC2_XL,
}


@dataclass
class Device:
    """One fully assembled home device."""

    config: DeviceConfig
    profile: DeviceProfile
    hypervisor: Hypervisor
    dom0: Domain
    guest: Domain
    xensocket: XenSocketChannel
    chimera: ChimeraNode
    kv: DhtKeyValueStore
    registry: ServiceRegistry
    watcher: FileSystemWatcher
    monitor: ResourceMonitor
    decision: DecisionEngine
    bandwidth: BandwidthEstimator
    cloud: PublicCloudInterface
    vstore: VStoreNode
    client: VStoreClient
    #: Resilience layer (None when ``ClusterConfig.resilience`` is off).
    breakers: Optional[BreakerRegistry] = None
    caller: Optional[ResilientCaller] = None
    repairer: Optional[Repairer] = None
    #: Durable storage backend (None when ``ClusterConfig.storage`` is
    #: ``"off"``) and its background flusher (``"disk"`` backend only).
    storage: Optional[object] = None
    flusher: Optional[StorageFlusher] = None

    @property
    def name(self) -> str:
        return self.config.name


def _lognormal_sampler(mean_mb_s: float, sigma: float, cap_mb_s: float):
    """Per-transfer bandwidth sampler: lognormal with the given mean,
    clipped to the direction's physical maximum."""
    # For a lognormal, mean = exp(mu + sigma^2/2).
    mu = math.log(mean_mb_s * MB) - sigma * sigma / 2.0

    def sample(rng: RandomSource) -> float:
        return min(rng.lognormal(mu, sigma), cap_mb_s * MB)

    return sample


class Cloud4Home:
    """A running Cloud4Home deployment (home cloud + remote cloud).

    Passing an existing ``network`` (and optionally a shared ``s3``)
    places this home on a shared fabric — the basis for federating
    multiple Cloud4Home infrastructures (Section VII (v)).
    ``home_group`` names this home's location group on that fabric.
    """

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        network: Optional[Network] = None,
        s3: Optional[S3Store] = None,
        home_group: str = "home",
    ) -> None:
        self.config = config or ClusterConfig()
        self.home_group = home_group
        if network is None:
            self.sim = Simulator(batched=self.config.fastpath)
            self.rng = RandomSource(self.config.seed)
            self.network = Network(
                self.sim, self.rng, coalesce_delivery=self.config.fastpath
            )
        else:
            self.network = network
            self.sim = network.sim
            self.rng = RandomSource(self.config.seed).fork(home_group)
        want_windowed = self.config.windowed_metrics or self.config.slo
        want_telemetry = self.config.telemetry or want_windowed
        if want_telemetry and self.sim.telemetry is None:
            # Federated homes on a shared fabric inherit the simulator's
            # already-attached plane instead of replacing it, so one
            # span/metric store covers the whole federation.
            windowed = self._window_policy() if want_windowed else None
            Telemetry(self.sim, windowed=windowed).attach()
        elif want_windowed and self.sim.telemetry.windowed is None:
            # Joining a federation whose plane predates this home's
            # windowed request: upgrade the shared plane in place.
            self.sim.telemetry.windowed = self._window_policy()
        #: Shared metrics plane for this deployment.  With telemetry
        #: attached this is the plane's own registry, so span latency
        #: histograms and ingested KV counters land in one place.
        self.metrics = (
            self.sim.telemetry.metrics
            if self.sim.telemetry is not None
            else MetricsRegistry()
        )
        self._build_fabric()
        self.s3 = s3 or S3Store(
            self.network,
            request_overhead_s=self.config.wan.s3_request_overhead_s,
        )
        self.ec2: list[Ec2Instance] = []
        if self.config.with_ec2:
            for i in range(self.config.ec2_instances):
                name = f"ec2-xl-{i}" if home_group == "home" else f"{home_group}-ec2-{i}"
                self.ec2.append(Ec2Instance(self.network, name=name))
        self.devices: list[Device] = [
            self._build_device(dc) for dc in self.config.devices
        ]
        self._by_name: dict[str, Device] = {d.name: d for d in self.devices}
        #: Active observability layer (None unless ``config.slo``).
        self.slo_engine: Optional[SloEngine] = None
        self.health: Optional[HealthBoard] = None
        self.recorders: Optional[RecorderHub] = None
        self._slo_evaluator: Optional[SloEvaluator] = None
        if self.config.slo:
            self._build_slo_layer()
        self._started = False

    # -- fabric -----------------------------------------------------------

    def _build_fabric(self) -> None:
        lan = self.config.lan
        wan = self.config.wan
        fastpath = self.config.fastpath
        lan_link = Link(
            self.sim,
            bandwidth=lan.bandwidth_mbps * 1e6 / 8,
            name=f"{self.home_group}-lan",
            coalesce_timer=fastpath,
        )
        self.lan_link = lan_link
        self.network.connect_groups(
            self.home_group,
            self.home_group,
            Route(
                lan_link,
                base_latency=lan.latency_s,
                jitter=lan.jitter,
                cap_sampler=lambda rng: lan.flow_cap_mb_s * MB,
            ),
        )
        up_tcp = TcpProfile(
            rtt=wan.tcp_rtt_s,
            init_window=wan.tcp_init_window,
            max_window=wan.tcp_max_window,
            shaping_after_s=wan.shaping_after_s,
            shaped_rate=wan.shaped_up_mb_s * MB,
        )
        down_tcp = TcpProfile(
            rtt=wan.tcp_rtt_s,
            init_window=wan.tcp_init_window,
            max_window=wan.tcp_max_window,
            shaping_after_s=wan.shaping_after_s,
            shaped_rate=wan.shaped_down_mb_s * MB,
        )
        self.uplink = Link(
            self.sim,
            bandwidth=wan.up_capacity_mb_s * MB,
            name=f"{self.home_group}-uplink",
            coalesce_timer=fastpath,
        )
        self.downlink = Link(
            self.sim,
            bandwidth=wan.down_capacity_mb_s * MB,
            name=f"{self.home_group}-downlink",
            coalesce_timer=fastpath,
        )
        self._up_tcp = up_tcp
        self._down_tcp = down_tcp
        self._up_sampler = _lognormal_sampler(
            wan.up_flow_mean_mb_s, wan.flow_sigma, wan.up_capacity_mb_s
        )
        self.network.connect_groups(
            self.home_group,
            "cloud",
            Route(
                self.uplink,
                base_latency=wan.latency_s,
                jitter=wan.jitter,
                tcp=up_tcp,
                cap_sampler=_lognormal_sampler(
                    wan.up_flow_mean_mb_s, wan.flow_sigma, wan.up_capacity_mb_s
                ),
            ),
        )
        self.network.connect_groups(
            "cloud",
            self.home_group,
            Route(
                self.downlink,
                base_latency=wan.latency_s,
                jitter=wan.jitter,
                tcp=down_tcp,
                cap_sampler=_lognormal_sampler(
                    wan.down_flow_mean_mb_s, wan.flow_sigma, wan.down_capacity_mb_s
                ),
            ),
        )
        # Cloud-internal traffic (S3 <-> EC2) is fast and flat.
        cloud_link = Link(
            self.sim,
            bandwidth=200 * MB,
            name="cloud-internal",
            coalesce_timer=fastpath,
        )
        self.network.connect_groups(
            "cloud", "cloud", Route(cloud_link, base_latency=0.002)
        )

    # -- devices ------------------------------------------------------------

    def _build_device(self, dc: DeviceConfig) -> Device:
        profile = PROFILES[dc.profile_name]
        host = self.network.add_host(dc.name, group=self.home_group)
        hypervisor = Hypervisor(self.sim, profile)
        guest = hypervisor.create_domain(
            f"{dc.name}-guest", vcpus=dc.guest_vcpus, mem_mb=dc.guest_mem_mb
        )
        dom0 = hypervisor.create_domain(
            f"{dc.name}-dom0",
            vcpus=profile.cpu_cores,
            mem_mb=hypervisor.free_mem_mb(),
            is_control=True,
        )
        xensocket = XenSocketChannel(
            self.sim,
            page_size=dc.xensocket_page_size,
            page_count=dc.xensocket_page_count,
        )
        xensocket.owner = dc.name
        chimera = ChimeraNode(
            self.network,
            host,
            leaf_size=self.config.leaf_size,
            route_cache=self.config.fastpath,
            rpc_push=self.config.fastpath,
            route_cache_max=self.config.route_cache_max,
        )
        storage = None
        flusher = None
        if self.config.storage != "off":
            st = self.config.storage_tuning
            storage = make_store(
                self.config.storage,
                node=dc.name,
                metrics=self.metrics,
                snapshot_every=st.snapshot_every,
                write_mb_s=st.write_mb_s,
                fsync_s=st.fsync_s,
                replay_mb_s=st.replay_mb_s,
                jitter=st.jitter,
                rng=self.rng.fork(f"storage:{dc.name}"),
            )
            if isinstance(storage, SimDiskStore):
                flusher = StorageFlusher(
                    self.sim, storage, period_s=st.fsync_interval_s
                )
        kv = DhtKeyValueStore(
            chimera,
            replication_factor=self.config.replication_factor,
            cache_enabled=self.config.cache_enabled,
            ring_scan_reference=self.config.ring_scan_reference,
            storage=storage,
        )
        registry = ServiceRegistry(kv)
        res = self.config.resilience_tuning if self.config.resilience else None
        breakers = None
        caller = None
        if res is not None:
            breakers = BreakerRegistry(
                failure_threshold=res.failure_threshold,
                cooldown_s=res.breaker_cooldown_s,
                metrics=self.metrics,
                node=dc.name,
            )
            caller = ResilientCaller(
                chimera.endpoint,
                policy=RetryPolicy(
                    max_attempts=res.max_attempts,
                    base_delay_s=res.base_delay_s,
                    multiplier=res.multiplier,
                    max_delay_s=res.max_delay_s,
                    jitter=res.jitter,
                    deadline_s=res.deadline_s,
                ),
                rng=self.rng.fork(f"retry:{dc.name}"),
                breakers=breakers,
                metrics=self.metrics,
                node=dc.name,
            )
        decision = DecisionEngine(
            chimera,
            kv,
            parallel=self.config.parallel_decision,
            freshness_ttl_s=res.freshness_ttl_s if res is not None else None,
            breakers=breakers,
        )
        bandwidth = BandwidthEstimator(
            default_mbps=self.config.lan.bandwidth_mbps,
            metrics=self.metrics,
            node=dc.name,
        )
        transfer = TransferEngine(
            self.network, zero_copy=True, observer=bandwidth.observe_report
        )
        cloud = PublicCloudInterface(
            self.network, dc.name, self.s3, gateway=self.config.cloud_gateway
        )
        striping = None
        if self.config.striping:
            st = self.config.striping_tuning
            striping = StripingPolicy(
                codec=StripeCodec(st.stripe_k, st.stripe_m),
                min_object_mb=st.min_object_mb,
                codec_mb_s=st.codec_mb_s,
            )
        vstore = VStoreNode(
            chimera=chimera,
            kv=kv,
            registry=registry,
            decision=decision,
            transfer=transfer,
            mandatory_mb=dc.mandatory_mb,
            voluntary_mb=dc.voluntary_mb,
            guest_domain=guest,
            dom0_domain=dom0,
            xensocket=xensocket,
            cloud=cloud,
            ec2=self.ec2[0] if self.ec2 else None,
            disk_mb_s=profile.disk_mb_s,
            caller=caller,
            data_replicas=self.config.data_replicas if res is not None else 0,
            striping=striping,
            metrics=self.metrics,
            storage=storage,
        )
        repairer = None
        if res is not None:
            repairer = Repairer(
                vstore,
                data_replicas=self.config.data_replicas,
                period_s=res.repair_period_s,
                caller=caller,
                metrics=self.metrics,
                track_lost=storage is not None,
            )
        watcher = FileSystemWatcher(vstore.mandatory, vstore.voluntary)

        def sampler(
            dc=dc, profile=profile, hypervisor=hypervisor, guest=guest, watcher=watcher
        ) -> ResourceSnapshot:
            return ResourceSnapshot(
                node=dc.name,
                device_type=profile.name,
                vcpus=dc.guest_vcpus,
                cpu_cores=profile.cpu_cores,
                cpu_ghz=profile.cpu_ghz,
                cpu_load=hypervisor.instantaneous_load(),
                mem_total_mb=profile.mem_mb,
                # The guest VM's allocation bounds what services see.
                mem_free_mb=guest.mem_mb,
                mandatory_free_mb=watcher.mandatory_free_mb(),
                voluntary_free_mb=watcher.voluntary_free_mb(),
                # Adaptive: observed throughput once transfers happened,
                # the nominal LAN figure before that.
                bandwidth_mbps=bandwidth.overall_mbps(),
                battery=dc.battery,
                taken_at=self.sim.now,
            )

        vstore.snapshot_fn = sampler
        monitor = ResourceMonitor(kv, sampler, period_s=self.config.monitor_period_s)
        client = VStoreClient(vstore)
        return Device(
            config=dc,
            profile=profile,
            hypervisor=hypervisor,
            dom0=dom0,
            guest=guest,
            xensocket=xensocket,
            chimera=chimera,
            kv=kv,
            registry=registry,
            watcher=watcher,
            monitor=monitor,
            decision=decision,
            bandwidth=bandwidth,
            cloud=cloud,
            vstore=vstore,
            client=client,
            breakers=breakers,
            caller=caller,
            repairer=repairer,
            storage=storage,
            flusher=flusher,
        )

    # -- observability ----------------------------------------------------------

    def _slo_specs(self) -> list:
        tuning = self.config.slo_tuning
        return (
            tuning.specs
            if tuning.specs is not None
            else default_slo_specs(window_s=tuning.window_s)
        )

    def _window_policy(self) -> WindowPolicy:
        """The windowed-rollup shape for this home's telemetry plane.

        ``windowed_metrics=True`` feeds a rollup for every span name.
        ``slo=True`` alone scopes the per-span feed to the metrics the
        engine and health board actually judge — every other span then
        costs one set-membership test instead of a ring write, which is
        what keeps the active layer inside its overhead budget
        (``benchmarks/perf/slo_bench.py``).
        """
        tuning = self.config.slo_tuning
        names = None
        if not self.config.windowed_metrics:
            names = frozenset(
                {spec.metric for spec in self._slo_specs()}
                | {tuning.health_latency_metric}
            )
        return WindowPolicy(
            window_s=tuning.window_s, sub_windows=tuning.sub_windows, names=names
        )

    def _build_slo_layer(self) -> None:
        """SLO engine + health scoreboard + flight recorders (slo on)."""
        tuning = self.config.slo_tuning
        specs = self._slo_specs()
        self.slo_engine = SloEngine(
            self.metrics, specs, telemetry=self.sim.telemetry, node=self.home_group
        )
        res = self.config.resilience_tuning
        self.health = HealthBoard(
            self.metrics,
            latency_metric=tuning.health_latency_metric,
            latency_target_s=tuning.health_latency_target_s,
            repair_window_s=tuning.health_repair_window_s,
            freshness_ttl_s=res.freshness_ttl_s,
        )
        self.recorders = RecorderHub(
            telemetry=self.sim.telemetry,
            metrics=self.metrics,
            capacity=tuning.recorder_capacity,
            dump_dir=tuning.recorder_dump_dir,
        )
        self.slo_engine.on_alert(self.recorders.alert_hook)
        for device in self.devices:
            self.health.attach_node(
                device.name,
                breakers=device.breakers,
                repairer=device.repairer,
                monitor=device.monitor,
            )
        self._slo_evaluator = SloEvaluator(
            self.sim, self.slo_engine, period_s=tuning.eval_period_s
        )

    @property
    def telemetry(self):
        """The attached :class:`repro.telemetry.Telemetry` plane, or
        None when the deployment runs untraced (the default)."""
        return self.sim.telemetry

    def collect_metrics(self) -> MetricsRegistry:
        """Ingest every device's KV stats into the metrics registry and
        return it.  Safe to call repeatedly — counters are set to the
        stores' lifetime totals, not incremented."""
        for device in self.devices:
            self.metrics.ingest_kvstats(device.name, device.kv.stats)
        return self.metrics

    # -- lifecycle --------------------------------------------------------------

    def start(self, monitors: bool = True, publish: bool = True) -> None:
        """Join all devices into one overlay and publish resources.

        ``publish=False`` skips the initial resource-snapshot puts —
        the scale benches bring up 10k-node overlays that only exercise
        the KV path and have no use for 10k monitor publications.
        """
        if self._started:
            return
        if self.config.fast_join:
            self._seed_overlay_views()
        else:
            bootstrap = self.devices[0]
            bootstrap.chimera.start()
            for device in self.devices[1:]:
                self.run(device.chimera.join(bootstrap=bootstrap.name))
                self.sim.run()  # drain join announcements
        for device in self.devices:
            if publish:
                self.run(device.monitor.publish_once())
            if monitors:
                device.monitor.start(publish_immediately=False)
                if device.repairer is not None:
                    device.repairer.start()
                if device.flusher is not None:
                    device.flusher.start()
        # The SLO evaluator is a background process like the monitors;
        # monitors=False means "no periodic activity" and callers can
        # still drive SloEngine.evaluate() by hand.
        if monitors and self._slo_evaluator is not None:
            self._slo_evaluator.start()
        self._started = True

    def _seed_overlay_views(self) -> None:
        """Install Pastry-correct partial views on every node directly.

        Builds the routing state a fresh protocol bring-up converges
        to, straight from the globally sorted id list: each node's leaf
        set is its ``leaf_size`` true ring neighbours per side, and its
        routing-table (row, col) entry is the first id inside that
        prefix range (deterministic — no RNG, no protocol traffic, no
        simulated time).  Rows stop once the node is alone in its
        prefix group, so per-node state is O(log N) and total
        construction is O(N log N) instead of the protocol join's
        O(N²) messages.
        """
        order = sorted((d.chimera for d in self.devices), key=lambda c: c.id.value)
        values = [c.id.value for c in order]
        infos = [PeerInfo(c.name, c.id) for c in order]
        n = len(order)
        per_side = self.config.leaf_size
        for i, node in enumerate(order):
            node.start()
            if n == 1:
                continue
            peers: dict[int, PeerInfo] = {}
            for j in range(1, per_side + 1):
                for k in ((i + j) % n, (i - j) % n):
                    if k != i:
                        peers[k] = infos[k]
            value = node.id.value
            for row in range(ID_DIGITS):
                shift = (ID_DIGITS - row - 1) * 4
                prefix_base = (value >> (shift + 4)) << (shift + 4)
                glo = bisect_left(values, prefix_base)
                ghi = bisect_left(values, prefix_base + (1 << (shift + 4)))
                if ghi - glo <= 1:
                    break  # alone in the prefix group: deeper rows are empty
                own_col = (value >> shift) & 0xF
                for col in range(16):
                    if col == own_col:
                        continue
                    low = prefix_base + (col << shift)
                    k = bisect_left(values, low, glo, ghi)
                    if k < ghi and values[k] < low + (1 << shift):
                        peers[k] = infos[k]
            peers.pop(i, None)
            node.seed_view(peers.values())

    def device(self, name: str) -> Device:
        """Look up one assembled device by name (KeyError if absent)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no device named {name!r}") from None

    def run(self, generator):
        """Drive a process generator to completion; return its value."""
        proc = self.sim.process(generator)
        return self.sim.run(until=proc)

    def object_inventory(self) -> dict:
        """Where every physically stored object lives, cluster-wide.

        Maps object name -> {"node": name or "@remote-cloud",
        "bin": bin name or "s3", "size_mb": size}.
        """
        out: dict[str, dict] = {}
        for device in self.devices:
            inv = device.vstore.inventory()
            for bin_name in ("mandatory", "voluntary"):
                for name, size_mb in inv[bin_name].items():
                    out[name] = {
                        "node": device.name,
                        "bin": bin_name,
                        "size_mb": size_mb,
                    }
        for key, obj in self.s3.objects.items():
            out.setdefault(
                key,
                {"node": "@remote-cloud", "bin": "s3", "size_mb": obj.size_mb},
            )
        return out

    def storage_report(self) -> str:
        """Human-readable cluster storage summary."""
        lines = ["== storage =="]
        for device in self.devices:
            inv = device.vstore.inventory()
            lines.append(
                f"{device.name}: mandatory "
                f"{len(inv['mandatory'])} objs "
                f"({inv['mandatory_free_mb']:.0f} MB free), voluntary "
                f"{len(inv['voluntary'])} objs "
                f"({inv['voluntary_free_mb']:.0f} MB free)"
            )
        lines.append(
            f"s3: {len(self.s3.objects)} objs "
            f"({self.s3.stored_bytes / (1024 * 1024):.1f} MB)"
        )
        return "\n".join(lines)

    def deploy_service(self, service_factory, nodes: Optional[list[str]] = None):
        """Register a service (built per node by ``service_factory``)
        on the named nodes (default: all), and on EC2 when present."""
        targets = (
            self.devices
            if nodes is None
            else [self.device(name) for name in nodes]
        )
        for device in targets:
            service: Service = service_factory()
            self.run(device.registry.register(service))
        for instance in self.ec2:
            instance.deploy(service_factory())
