"""Ready-made cluster configurations.

The paper's evaluation uses several distinct setups; these constructors
reproduce them by name so benchmarks, examples, and downstream users
build the right testbed in one line.
"""

from __future__ import annotations

from repro.cluster.config import ClusterConfig, DeviceConfig, default_devices

__all__ = [
    "paper_testbed",
    "figure7_pair",
    "minimal_pair",
    "large_home",
    "scale_overlay",
]


def paper_testbed(seed: int = 0, **overrides) -> ClusterConfig:
    """Section V's testbed: 5 Atom netbooks + a quad desktop, EC2/S3."""
    return ClusterConfig(devices=default_devices(), seed=seed, **overrides)


def figure7_pair(seed: int = 0, **overrides) -> ClusterConfig:
    """Figure 7's S1/S2 hosts (S3 is the EC2 instance).

    S1: low-end 1.3 GHz dual-core Atom with a 512 MB, 1-VCPU VM.
    S2: 1.8 GHz quad core with a 128 MB, multi-VCPU VM.
    """
    devices = [
        DeviceConfig(
            name="S1",
            profile_name="atom-s1",
            guest_mem_mb=512.0,
            guest_vcpus=1,
        ),
        DeviceConfig(
            name="S2",
            profile_name="quad-s2",
            guest_mem_mb=128.0,
            guest_vcpus=4,
            battery=None,
        ),
    ]
    return ClusterConfig(devices=devices, seed=seed, **overrides)


def minimal_pair(seed: int = 0, **overrides) -> ClusterConfig:
    """Two netbooks, no cloud: the smallest overlay that exercises
    inter-node behaviour (fast for unit-style experiments)."""
    devices = [
        DeviceConfig(name="alpha"),
        DeviceConfig(name="beta"),
    ]
    overrides.setdefault("with_ec2", False)
    return ClusterConfig(devices=devices, seed=seed, **overrides)


def large_home(n_devices: int = 24, seed: int = 0, **overrides) -> ClusterConfig:
    """A scaled-up home/office deployment (future work iii): mostly
    netbook-class devices with a desktop every eighth node."""
    if n_devices < 2:
        raise ValueError("large_home needs at least 2 devices")
    devices = []
    for i in range(n_devices):
        if i % 8 == 7:
            devices.append(
                DeviceConfig(
                    name=f"desktop{i // 8}",
                    profile_name="quad-desktop",
                    guest_mem_mb=1024.0,
                    guest_vcpus=4,
                    battery=None,
                )
            )
        else:
            devices.append(DeviceConfig(name=f"dev{i:02d}"))
    overrides.setdefault("leaf_size", 2)
    return ClusterConfig(devices=devices, seed=seed, **overrides)


def scale_overlay(n_nodes: int, seed: int = 0, **overrides) -> ClusterConfig:
    """A 1k–10k-node neighbourhood overlay for scale benchmarking.

    Homogeneous netbook-class devices, no public cloud, ``fast_join``
    construction, and a small per-node route cache — the configuration
    `benchmarks/perf/scale_bench.py` and ``python -m repro load`` drive
    open-loop traffic against.  Only the KV/overlay path matters at
    this scale, so EC2 and monitors stay off.
    """
    if n_nodes < 2:
        raise ValueError("scale_overlay needs at least 2 nodes")
    devices = [DeviceConfig(name=f"n{i:05d}") for i in range(n_nodes)]
    overrides.setdefault("with_ec2", False)
    overrides.setdefault("fast_join", True)
    overrides.setdefault("route_cache_max", 256)
    return ClusterConfig(devices=devices, seed=seed, **overrides)
