"""Cluster assembly: the whole Cloud4Home deployment in one object.

Public surface:

* :class:`Cloud4Home` — builds and starts the home cloud + remote cloud.
* :class:`ClusterConfig`, :class:`LanConfig`, :class:`WanConfig`,
  :class:`DeviceConfig` — configuration.
* :class:`Device` — one assembled home device (all layers).
"""

from repro.cluster.builder import Cloud4Home, Device, PROFILES
from repro.cluster.chaos import ChaosEvent, ChaosSchedule
from repro.cluster.metrics import MetricsCollector, OperationRecord
from repro.cluster.presets import (
    figure7_pair,
    large_home,
    minimal_pair,
    paper_testbed,
    scale_overlay,
)
from repro.cluster.federation import Federation, FederationDirectory
from repro.cluster.config import (
    ClusterConfig,
    DeviceConfig,
    LanConfig,
    ResilienceConfig,
    SloConfig,
    StorageConfig,
    StripingConfig,
    WanConfig,
    default_devices,
)
from repro.cluster.slo_demo import availability_chaos_scenario

__all__ = [
    "Cloud4Home",
    "Device",
    "PROFILES",
    "ClusterConfig",
    "DeviceConfig",
    "LanConfig",
    "ResilienceConfig",
    "SloConfig",
    "StorageConfig",
    "StripingConfig",
    "WanConfig",
    "availability_chaos_scenario",
    "default_devices",
    "Federation",
    "FederationDirectory",
    "ChaosSchedule",
    "ChaosEvent",
    "MetricsCollector",
    "OperationRecord",
    "paper_testbed",
    "figure7_pair",
    "minimal_pair",
    "large_home",
    "scale_overlay",
]
