"""Fault injection for Cloud4Home deployments.

The home environment's defining property is dynamism: "nodes may
periodically go off-line and become unavailable" (Section III), and the
paper's future work asks for "mechanisms that adapt to the changing
network conditions" (Section VII (iv)).  The :class:`ChaosSchedule`
scripts that dynamism against a running deployment:

* **crash** — a device fails abruptly (no notifications);
* **leave** — a device departs gracefully (keys handed off first);
* **revive** — a crashed device comes back and rejoins the overlay;
* **degrade / restore** — a link's capacity drops (e.g. the wireless
  uplink during rain) and later recovers;
* **flap_link** — a link oscillates between degraded and healthy;
* **partition / heal** — the fabric splits into sides that cannot
  reach each other, then rejoins;
* **drop_messages** — control messages are silently lost with a given
  probability (the failure the sender cannot distinguish from
  slowness).

Fault times are relative delays (seconds after :meth:`start`, or after
scheduling for faults added to a running schedule); the applied sequence
is recorded in ``events`` for assertions and post-mortems.

:class:`RandomChaos` builds a seeded random-but-safe schedule from
these primitives — the same seed always produces the same script, and
invariants a naive random script would break (too many devices down at
once, a device crashed forever) are guaranteed by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.cluster.builder import Cloud4Home, Device
from repro.net import Link
from repro.sim import RandomSource

__all__ = ["ChaosSchedule", "ChaosEvent", "RandomChaos"]


@dataclass
class ChaosEvent:
    """One applied fault, for the post-mortem log."""

    at: float
    kind: str
    target: str
    detail: str = ""


class ChaosSchedule:
    """Scripted fault sequence against one deployment."""

    def __init__(self, cluster: Cloud4Home) -> None:
        self.cluster = cluster
        self.sim = cluster.sim
        self.events: list[ChaosEvent] = []
        self._pending: list = []
        self._started = False
        #: Per-link healthy bandwidth, captured the first time a link is
        #: degraded — restores always return to this exact value even
        #: when degrades overlap.
        self._baselines: dict[str, float] = {}
        #: Per-link stack of currently active degrade factors.
        self._degrades: dict[str, list[float]] = {}

    # -- schedule construction (fluent) -----------------------------------

    def crash(self, after: float, device_name: str) -> "ChaosSchedule":
        """Abrupt failure: the device vanishes without a word."""
        self._add(after, self._do_crash, device_name)
        return self

    def leave(self, after: float, device_name: str) -> "ChaosSchedule":
        """Graceful departure: keys are redistributed first."""
        self._add(after, self._do_leave, device_name)
        return self

    def revive(
        self, after: float, device_name: str, bootstrap: Optional[str] = None
    ) -> "ChaosSchedule":
        """A crashed/departed device rejoins the overlay."""
        self._add(after, self._do_revive, device_name, bootstrap)
        return self

    def degrade_link(
        self,
        after: float,
        link: Link,
        factor: float,
        duration: Optional[float] = None,
    ) -> "ChaosSchedule":
        """Scale a link's bandwidth by ``factor`` (restoring after
        ``duration`` seconds, if given).

        Overlapping degrades compound multiplicatively; each restore
        recomputes the bandwidth from the link's healthy baseline and
        the degrades still active, so when the last one ends the link
        is back at its exact original capacity.
        """
        if not 0 < factor:
            raise ValueError("factor must be positive")
        self._add(after, self._do_degrade, link, factor, duration)
        return self

    def flap_link(
        self,
        after: float,
        link: Link,
        factor: float,
        period: float,
        count: int,
    ) -> "ChaosSchedule":
        """Oscillate a link: degraded by ``factor`` for half of each
        ``period``, healthy for the other half, ``count`` times."""
        if not 0 < factor:
            raise ValueError("factor must be positive")
        if period <= 0:
            raise ValueError("period must be positive")
        if count < 1:
            raise ValueError("count must be >= 1")
        self._add(after, self._do_flap, link, factor, period, count)
        return self

    def partition(
        self,
        after: float,
        side_a: Sequence[str],
        side_b: Sequence[str],
        duration: Optional[float] = None,
    ) -> "ChaosSchedule":
        """Split the fabric into two sides that cannot reach each other
        (healing after ``duration`` seconds, if given)."""
        self._add(after, self._do_partition, list(side_a), list(side_b), duration)
        return self

    def heal(
        self, after: float, side_a: Sequence[str], side_b: Sequence[str]
    ) -> "ChaosSchedule":
        """Heal a previously injected partition."""
        self._add(after, self._do_heal, list(side_a), list(side_b))
        return self

    def drop_messages(
        self, after: float, rate: float, duration: Optional[float] = None
    ) -> "ChaosSchedule":
        """Silently lose control messages with probability ``rate``
        (reverting to the previous rate after ``duration``, if given)."""
        if not 0 <= rate <= 1:
            raise ValueError("rate must be in [0, 1]")
        self._add(after, self._do_drop, rate, duration)
        return self

    def start(self) -> None:
        """Arm the schedule (idempotent)."""
        if self._started:
            return
        self._started = True
        for delay, action, args in self._pending:
            self.sim.process(self._fire(delay, action, args))

    # -- internals ----------------------------------------------------------

    def _add(self, after: float, action, *args) -> None:
        """Schedule ``action`` ``after`` seconds from now (from
        :meth:`start` for faults queued before it)."""
        if after < 0:
            raise ValueError(f"fault delay {after} is negative")
        if self._started:
            self.sim.process(self._fire(after, action, args))
        else:
            self._pending.append((after, action, args))

    def _fire(self, delay: float, action, args):
        yield self.sim.timeout(delay)
        yield from action(*args)

    def _device(self, name: str) -> Device:
        return self.cluster.device(name)

    def _do_crash(self, name: str):
        device = self._device(name)
        device.monitor.stop()
        if device.repairer is not None:
            device.repairer.stop()
        if device.flusher is not None:
            # Stopped *before* the backend's crash(): a flush that was
            # mid-charge never commits, so its entries are lost tail.
            device.flusher.stop()
        device.chimera.fail_abruptly()
        self.cluster.network.take_offline(name)
        detail = ""
        if device.storage is not None:
            report = device.storage.crash()
            device.kv.lose_memory()
            device.vstore.lose_memory()
            detail = (
                f"lost {report['lost_records']} records, "
                f"{report['lost_ops']} unsynced ops"
            )
        self.events.append(ChaosEvent(self.sim.now, "crash", name, detail))
        return
        yield  # pragma: no cover - generator marker

    def _do_leave(self, name: str):
        device = self._device(name)
        device.monitor.stop()
        if device.repairer is not None:
            device.repairer.stop()
        if device.flusher is not None:
            device.flusher.stop()
        yield from device.kv.leave()
        self.cluster.network.take_offline(name)
        self.events.append(ChaosEvent(self.sim.now, "leave", name))

    def _do_revive(self, name: str, bootstrap: Optional[str]):
        device = self._device(name)
        if device.chimera.joined and self.cluster.network.hosts[name].online:
            # Reviving a node that never went down must be a typed
            # no-op, not a double-join that corrupts overlay state.
            self.events.append(
                ChaosEvent(self.sim.now, "revive-skip", name, "already online")
            )
            return
        self.cluster.network.bring_online(name)
        if bootstrap is None:
            bootstrap = next(
                (
                    d.name
                    for d in self.cluster.devices
                    if d.name != name and d.chimera.joined
                ),
                None,
            )
            if bootstrap is None:
                # A bare next() here would raise StopIteration, which
                # PEP 479 turns into an opaque RuntimeError inside this
                # generator — name the actual problem instead.
                raise ValueError(
                    f"cannot revive {name!r}: no joined device is "
                    "available to bootstrap from"
                )
        detail = f"via {bootstrap}"
        if device.storage is not None:
            # Replay the durable state (charging the backend's replay
            # cost) *before* rejoining, like a real boot sequence.
            report = yield from device.kv.recover()
            device.vstore.recover()
            detail += f", replayed {report.records} records"
        yield from device.chimera.join(bootstrap=bootstrap)
        yield from device.monitor.publish_once()
        if device.storage is not None:
            # One anti-entropy round with the ring neighbours: pull
            # writes missed while down, push records only we hold,
            # apply deletes we slept through.
            tuning = self.cluster.config.storage_tuning
            summary = yield from device.kv.sync_with_peers(
                fanout=tuning.anti_entropy_peers or None
            )
            detail += (
                f", synced +{summary['pulled']}/-{summary['deleted']} "
                f"(pushed {summary['pushed']})"
            )
        if device.repairer is not None:
            device.repairer.start()
        if device.flusher is not None:
            device.flusher.start()
        self.events.append(
            ChaosEvent(self.sim.now, "revive", name, detail)
        )

    def _do_degrade(self, link: Link, factor: float, duration: Optional[float]):
        # Baseline is captured once per link, *before* any degrade —
        # overlapping degrades therefore restore to the true healthy
        # bandwidth, not to each other's degraded values.
        self._baselines.setdefault(link.name, link.bandwidth)
        self._degrades.setdefault(link.name, []).append(factor)
        self._apply_degrades(link)
        self.events.append(
            ChaosEvent(
                self.sim.now,
                "degrade",
                link.name,
                f"x{factor:g} for {duration if duration is not None else 'ever'}",
            )
        )
        if duration is not None:
            yield self.sim.timeout(duration)
            self._degrades[link.name].remove(factor)
            self._apply_degrades(link)
            self.events.append(
                ChaosEvent(self.sim.now, "restore", link.name)
            )

    def _apply_degrades(self, link: Link) -> None:
        """Recompute a link's bandwidth: baseline times active factors."""
        bandwidth = self._baselines[link.name]
        for factor in self._degrades.get(link.name, ()):
            bandwidth *= factor
        link.set_bandwidth(bandwidth)

    def _do_flap(self, link: Link, factor: float, period: float, count: int):
        for _ in range(count):
            yield from self._do_degrade(link, factor, period / 2.0)
            yield self.sim.timeout(period / 2.0)

    def _do_partition(
        self, side_a: list[str], side_b: list[str], duration: Optional[float]
    ):
        target = f"{'+'.join(sorted(side_a))} | {'+'.join(sorted(side_b))}"
        self.cluster.network.partition(side_a, side_b)
        self.events.append(ChaosEvent(self.sim.now, "partition", target))
        if duration is not None:
            yield self.sim.timeout(duration)
            self.cluster.network.heal_partition(side_a, side_b)
            self.events.append(ChaosEvent(self.sim.now, "heal", target))

    def _do_heal(self, side_a: list[str], side_b: list[str]):
        target = f"{'+'.join(sorted(side_a))} | {'+'.join(sorted(side_b))}"
        self.cluster.network.heal_partition(side_a, side_b)
        self.events.append(ChaosEvent(self.sim.now, "heal", target))
        return
        yield  # pragma: no cover - generator marker

    def _do_drop(self, rate: float, duration: Optional[float]):
        network = self.cluster.network
        previous = network.loss_rate
        network.loss_rate = rate
        self.events.append(
            ChaosEvent(self.sim.now, "loss", "network", f"p={rate:g}")
        )
        if duration is not None:
            yield self.sim.timeout(duration)
            network.loss_rate = previous
            self.events.append(
                ChaosEvent(self.sim.now, "loss-end", "network", f"p={previous:g}")
            )


class RandomChaos:
    """A seeded random fault script over one deployment.

    :meth:`script` draws faults from a forked
    :class:`~repro.sim.RandomSource` and queues them on a
    :class:`ChaosSchedule` — the same seed always yields the same
    script.  Unlike naive random injection, the generated script is
    *safe by construction*:

    * never more than ``max_down`` devices are down at once;
    * devices named in ``protected`` are never taken down;
    * every crash is paired with a revive after a bounded outage, so
      the deployment always converges back to full strength.
    """

    def __init__(
        self,
        cluster: Cloud4Home,
        seed: int = 0,
        mean_interval_s: float = 30.0,
        max_down: int = 1,
        protected: Sequence[str] = (),
        outage_s: tuple[float, float] = (20.0, 60.0),
        degrade_s: tuple[float, float] = (10.0, 30.0),
        loss_rate_max: float = 0.05,
    ) -> None:
        if mean_interval_s <= 0:
            raise ValueError("mean_interval_s must be positive")
        if max_down < 0:
            raise ValueError("max_down must be >= 0")
        self.cluster = cluster
        self.rng = RandomSource(seed).fork("chaos")
        self.mean_interval_s = mean_interval_s
        self.max_down = max_down
        self.protected = set(protected)
        self.outage_s = outage_s
        self.degrade_s = degrade_s
        self.loss_rate_max = loss_rate_max
        self.schedule = ChaosSchedule(cluster)

    def script(self, horizon_s: float) -> ChaosSchedule:
        """Fill the schedule with random faults covering ``horizon_s``
        seconds, and return it (not yet started)."""
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        candidates = [
            d.name for d in self.cluster.devices if d.name not in self.protected
        ]
        #: Planned device state along the script timeline: name -> time
        #: it comes back (crash+revive pairs are planned together).
        down_until: dict[str, float] = {}
        t = 0.0
        while True:
            t += self.rng.exponential(1.0 / self.mean_interval_s)
            if t >= horizon_s:
                break
            kind = self.rng.weighted_choice(
                ["crash", "degrade", "flap", "loss"], [3.0, 2.0, 1.0, 1.0]
            )
            if kind == "crash":
                down_until = {
                    n: back for n, back in down_until.items() if back > t
                }
                up = [n for n in candidates if n not in down_until]
                if len(down_until) >= self.max_down or not up:
                    continue
                name = self.rng.choice(sorted(up))
                outage = self.rng.uniform(*self.outage_s)
                down_until[name] = t + outage
                self.schedule.crash(t, name)
                self.schedule.revive(t + outage, name)
            elif kind == "degrade":
                factor = self.rng.uniform(0.1, 0.5)
                self.schedule.degrade_link(
                    t,
                    self.cluster.lan_link,
                    factor,
                    duration=self.rng.uniform(*self.degrade_s),
                )
            elif kind == "flap":
                self.schedule.flap_link(
                    t,
                    self.cluster.lan_link,
                    self.rng.uniform(0.2, 0.6),
                    period=self.rng.uniform(2.0, 8.0),
                    count=self.rng.randint(2, 4),
                )
            else:
                self.schedule.drop_messages(
                    t,
                    self.rng.uniform(0.0, self.loss_rate_max),
                    duration=self.rng.uniform(*self.degrade_s),
                )
        return self.schedule
