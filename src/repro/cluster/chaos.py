"""Fault injection for Cloud4Home deployments.

The home environment's defining property is dynamism: "nodes may
periodically go off-line and become unavailable" (Section III), and the
paper's future work asks for "mechanisms that adapt to the changing
network conditions" (Section VII (iv)).  The :class:`ChaosSchedule`
scripts that dynamism against a running deployment:

* **crash** — a device fails abruptly (no notifications);
* **leave** — a device departs gracefully (keys handed off first);
* **revive** — a crashed device comes back and rejoins the overlay;
* **degrade / restore** — a link's capacity drops (e.g. the wireless
  uplink during rain) and later recovers.

Fault times are relative delays (seconds after :meth:`start`, or after
scheduling for faults added to a running schedule); the applied sequence
is recorded in ``events`` for assertions and post-mortems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.builder import Cloud4Home, Device
from repro.net import Link

__all__ = ["ChaosSchedule", "ChaosEvent"]


@dataclass
class ChaosEvent:
    """One applied fault, for the post-mortem log."""

    at: float
    kind: str
    target: str
    detail: str = ""


class ChaosSchedule:
    """Scripted fault sequence against one deployment."""

    def __init__(self, cluster: Cloud4Home) -> None:
        self.cluster = cluster
        self.sim = cluster.sim
        self.events: list[ChaosEvent] = []
        self._pending: list = []
        self._started = False

    # -- schedule construction (fluent) -----------------------------------

    def crash(self, after: float, device_name: str) -> "ChaosSchedule":
        """Abrupt failure: the device vanishes without a word."""
        self._add(after, self._do_crash, device_name)
        return self

    def leave(self, after: float, device_name: str) -> "ChaosSchedule":
        """Graceful departure: keys are redistributed first."""
        self._add(after, self._do_leave, device_name)
        return self

    def revive(
        self, after: float, device_name: str, bootstrap: Optional[str] = None
    ) -> "ChaosSchedule":
        """A crashed/departed device rejoins the overlay."""
        self._add(after, self._do_revive, device_name, bootstrap)
        return self

    def degrade_link(
        self,
        after: float,
        link: Link,
        factor: float,
        duration: Optional[float] = None,
    ) -> "ChaosSchedule":
        """Scale a link's bandwidth by ``factor`` (restoring after
        ``duration`` seconds, if given)."""
        if not 0 < factor:
            raise ValueError("factor must be positive")
        self._add(after, self._do_degrade, link, factor, duration)
        return self

    def start(self) -> None:
        """Arm the schedule (idempotent)."""
        if self._started:
            return
        self._started = True
        for delay, action, args in self._pending:
            self.sim.process(self._fire(delay, action, args))

    # -- internals ----------------------------------------------------------

    def _add(self, after: float, action, *args) -> None:
        """Schedule ``action`` ``after`` seconds from now (from
        :meth:`start` for faults queued before it)."""
        if after < 0:
            raise ValueError(f"fault delay {after} is negative")
        if self._started:
            self.sim.process(self._fire(after, action, args))
        else:
            self._pending.append((after, action, args))

    def _fire(self, delay: float, action, args):
        yield self.sim.timeout(delay)
        yield from action(*args)

    def _device(self, name: str) -> Device:
        return self.cluster.device(name)

    def _do_crash(self, name: str):
        device = self._device(name)
        device.monitor.stop()
        device.chimera.fail_abruptly()
        self.cluster.network.take_offline(name)
        self.events.append(ChaosEvent(self.sim.now, "crash", name))
        return
        yield  # pragma: no cover - generator marker

    def _do_leave(self, name: str):
        device = self._device(name)
        device.monitor.stop()
        yield from device.kv.leave()
        self.cluster.network.take_offline(name)
        self.events.append(ChaosEvent(self.sim.now, "leave", name))

    def _do_revive(self, name: str, bootstrap: Optional[str]):
        device = self._device(name)
        self.cluster.network.bring_online(name)
        if bootstrap is None:
            bootstrap = next(
                d.name
                for d in self.cluster.devices
                if d.name != name and d.chimera.joined
            )
        yield from device.chimera.join(bootstrap=bootstrap)
        yield from device.monitor.publish_once()
        self.events.append(
            ChaosEvent(self.sim.now, "revive", name, f"via {bootstrap}")
        )

    def _do_degrade(self, link: Link, factor: float, duration: Optional[float]):
        original = link.bandwidth
        link.set_bandwidth(original * factor)
        self.events.append(
            ChaosEvent(
                self.sim.now,
                "degrade",
                link.name,
                f"x{factor:g} for {duration if duration is not None else 'ever'}",
            )
        )
        if duration is not None:
            yield self.sim.timeout(duration)
            link.set_bandwidth(original)
            self.events.append(
                ChaosEvent(self.sim.now, "restore", link.name)
            )
