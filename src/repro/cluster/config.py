"""Configuration for assembling a Cloud4Home deployment.

Defaults reproduce the paper's testbed (Section V): five dual-core
1.66 GHz Atom netbooks plus a 2.3 GHz quad-core desktop on a 95.5 Mbps
Ethernet LAN, reaching Amazon EC2/S3 over a wireless uplink with
~6.5 Mbps download / ~4.5 Mbps upload maxima and ~1.5 Mbps averages.
The WAN TCP parameters (window cap ≈1.6 MB, ISP traffic shaping of
long transfers) are the ones behind Figure 5's optimum object size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "WanConfig",
    "LanConfig",
    "DeviceConfig",
    "ResilienceConfig",
    "StripingConfig",
    "SloConfig",
    "StorageConfig",
    "ClusterConfig",
]

MB = 1024 * 1024


@dataclass
class LanConfig:
    """The home Ethernet segment."""

    bandwidth_mbps: float = 95.5
    latency_s: float = 0.0008
    jitter: float = 0.15
    #: Effective per-flow TCP throughput on commodity devices; Table I's
    #: inter-node column implies ≈8 MB/s for a single stream.
    flow_cap_mb_s: float = 8.0


@dataclass
class WanConfig:
    """The path between the home and the remote public cloud."""

    latency_s: float = 0.045
    jitter: float = 0.35
    #: Aggregate link capacity in each direction, MB/s.
    down_capacity_mb_s: float = 2.6
    up_capacity_mb_s: float = 1.8
    #: Per-transfer achievable throughput (lognormal), MB/s — the
    #: wireless variability behind Figure 4's error bars.
    down_flow_mean_mb_s: float = 1.5
    up_flow_mean_mb_s: float = 1.0
    flow_sigma: float = 0.30
    #: TCP behaviour: S3's window cap and slow start.
    tcp_rtt_s: float = 0.15
    tcp_init_window: int = 4 * 1024
    tcp_max_window: int = int(1.6 * MB)
    #: ISP traffic shaping of long, bandwidth-hogging transfers.
    shaping_after_s: float = 15.0
    shaped_down_mb_s: float = 0.80
    shaped_up_mb_s: float = 0.50
    #: Per-request S3 overhead (auth + HTTP), seconds.
    s3_request_overhead_s: float = 0.08


@dataclass
class DeviceConfig:
    """One home device and its domain layout."""

    name: str
    profile_name: str = "atom-netbook"  # key into repro.virt profiles
    guest_mem_mb: float = 512.0
    guest_vcpus: int = 1
    mandatory_mb: float = 4096.0
    voluntary_mb: float = 8192.0
    battery: float | None = 0.8  # None = mains powered
    xensocket_page_size: int = 4 * 1024
    xensocket_page_count: int = 32


def default_devices() -> list[DeviceConfig]:
    """The paper's testbed: 5 Atom netbooks + 1 quad desktop."""
    devices = [
        DeviceConfig(name=f"netbook{i}", profile_name="atom-netbook")
        for i in range(5)
    ]
    devices.append(
        DeviceConfig(
            name="desktop",
            profile_name="quad-desktop",
            guest_mem_mb=1024.0,
            guest_vcpus=4,
            battery=None,
        )
    )
    return devices


@dataclass
class ResilienceConfig:
    """Tuning for the resilience layer.

    Only read when ``ClusterConfig.resilience`` is on; the defaults are
    sized for the paper's testbed (5 s monitor period, 600 s worst-case
    fetch timeout).
    """

    #: Retry policy around every peer RPC.
    max_attempts: int = 4
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.5
    #: Per-operation deadline budget (attempts + backoffs).  Must exceed
    #: the longest single-RPC timeout on the data path — fetches allow
    #: 600 s — or legitimate large transfers would be cut short.
    deadline_s: float = 900.0
    #: Circuit breaker: consecutive failures before opening, and how
    #: long an open breaker refuses calls before half-opening.
    failure_threshold: int = 3
    breaker_cooldown_s: float = 15.0
    #: Period of each node's background payload-repair sweep.
    repair_period_s: float = 30.0
    #: Decision-engine freshness TTL: candidates whose published
    #: snapshot is older than this are treated as dead.  Six monitor
    #: periods of slack by default.
    freshness_ttl_s: float = 30.0


@dataclass
class StripingConfig:
    """Tuning for erasure-coded striping.

    Only read when ``ClusterConfig.striping`` is on.  The (4, 2)
    default matches the resilience layer's 2-failure tolerance
    (``data_replicas=2``) at half its storage overhead: 1.5x stored
    bytes per logical byte instead of 3.0x.
    """

    #: Data chunks per object — reads parallelize k ways.
    stripe_k: int = 4
    #: Parity chunks per object — up to m holders may fail.
    stripe_m: int = 2
    #: Objects below this size keep the replication path (chunking a
    #: tiny object trades one RPC for k+m of them with no bandwidth win).
    min_object_mb: float = 4.0
    #: Erasure encode/decode throughput, MB of logical data per second.
    codec_mb_s: float = 400.0


@dataclass
class SloConfig:
    """Tuning for the active observability layer.

    Only read when ``ClusterConfig.slo`` (or ``windowed_metrics``) is
    on.  Window geometry applies to every windowed rollup the
    telemetry plane mints; the SLO engine evaluates once per
    ``eval_period_s`` of simulated time.
    """

    #: Sliding-window span for every windowed instrument, seconds.
    window_s: float = 60.0
    #: Ring granularity: rotation happens every window_s / sub_windows.
    sub_windows: int = 6
    #: Simulated period of the background SLO evaluator process.
    eval_period_s: float = 10.0
    #: Objectives to enforce; None selects
    #: :func:`repro.telemetry.slo.default_slo_specs`.
    specs: list | None = None
    #: Health scoreboard: the reference latency metric/target and the
    #: repair-pressure window (freshness TTL comes from
    #: ``ResilienceConfig.freshness_ttl_s``).
    health_latency_metric: str = "kv.get"
    health_latency_target_s: float = 2.0
    health_repair_window_s: float = 60.0
    #: Flight recorder: per-node ring capacity, and where firing alerts
    #: drop their dump artifacts (None = keep dumps in memory only).
    recorder_capacity: int = 256
    recorder_dump_dir: str | None = None


@dataclass
class StorageConfig:
    """Tuning for the durable storage backends.

    Only read when ``ClusterConfig.storage`` is not ``"off"``.  The
    cost-model fields apply to the ``"disk"`` backend only; WAL
    geometry applies to both ``"wal"`` and ``"disk"``.
    """

    #: Fold the WAL into the compacted snapshot every N entries.
    snapshot_every: int = 256
    #: Disk cost model: sequential journal write bandwidth, MB/s.
    write_mb_s: float = 40.0
    #: Disk cost model: per-fsync latency, seconds.
    fsync_s: float = 0.005
    #: Period of the background flusher that makes appends durable.
    fsync_interval_s: float = 0.25
    #: Disk cost model: replay read bandwidth, MB/s.
    replay_mb_s: float = 80.0
    #: Multiplicative latency jitter on flush/replay costs.
    jitter: float = 0.10
    #: Ring neighbours contacted per anti-entropy round after a
    #: recovery (0 = derive from the KV replication factor).
    anti_entropy_peers: int = 0


@dataclass
class ClusterConfig:
    """Everything needed to build a Cloud4Home deployment."""

    devices: list[DeviceConfig] = field(default_factory=default_devices)
    lan: LanConfig = field(default_factory=LanConfig)
    wan: WanConfig = field(default_factory=WanConfig)
    seed: int = 0
    replication_factor: int = 2
    cache_enabled: bool = True
    leaf_size: int = 4
    monitor_period_s: float = 5.0
    with_ec2: bool = True
    ec2_instances: int = 1
    #: When set, all public-cloud traffic relays through this device
    #: ("the public cloud interactions are performed only via some
    #: subset of designated nodes", Section III-C).
    cloud_gateway: str | None = None
    #: Cross-layer simulation fast path: coalesced link boundary timers
    #: and the overlay route cache.  Simulated results are identical
    #: either way (the golden tests pin this); disabling it selects the
    #: legacy reference implementations the perf harness measures
    #: against.
    fastpath: bool = True
    #: Attach the :mod:`repro.telemetry` plane (causal spans + metrics
    #: registry) to the deployment's simulator.  Off by default: with
    #: telemetry disabled every instrumented layer skips emission behind
    #: a single ``is not None`` check, RPC bodies carry no span context,
    #: and simulated results are byte-identical to a build without the
    #: subsystem.
    telemetry: bool = False
    #: Scatter-gather placement decisions: ``chimeraGetDecision`` issues
    #: all k candidate snapshot lookups concurrently and joins them, so
    #: a decision's simulated latency is roughly the max of the k
    #: lookups instead of their sum.  Concurrent lookups overlap on the
    #: links, which *changes simulated timing* (unlike ``fastpath``),
    #: so the flag defaults to off and has its own golden tests; the
    #: ranking produced is identical in both modes.
    parallel_decision: bool = False
    #: Resilience layer (repro.resilience): retries with deadlines and
    #: circuit breakers on every peer RPC, k-way payload replication at
    #: store time with fetch failover, health-aware decision filtering,
    #: and a background payload repairer per node.  Off by default:
    #: with it off no retry/breaker/replication code runs and simulated
    #: results are byte-identical to a build without the subsystem.
    resilience: bool = False
    #: Extra payload copies per object when ``resilience`` is on.
    data_replicas: int = 2
    #: Tuning knobs for the resilience layer.
    resilience_tuning: ResilienceConfig = field(default_factory=ResilienceConfig)
    #: Erasure-coded striping (repro.vstore.striping): qualifying
    #: objects split into (k, m) chunks scattered across distinct
    #: holders; fetches run as first-k-of-(k+m) parallel scatter-gather
    #: and tolerate up to m lost holders at m/k storage overhead.  Off
    #: by default: with it off no striping code runs on any store or
    #: fetch path and simulated results are byte-identical to a build
    #: without the subsystem.
    striping: bool = False
    #: Tuning knobs for erasure-coded striping.
    striping_tuning: StripingConfig = field(default_factory=StripingConfig)
    #: Windowed metrics rollups (repro.telemetry.timeseries): every
    #: finished span additionally feeds a sliding-window histogram and
    #: success-ratio per (name, node).  Implies ``telemetry``.  Off by
    #: default: with it off no windowed instrument is ever allocated
    #: and simulated results are byte-identical.
    windowed_metrics: bool = False
    #: The active observability layer (repro.telemetry.slo / health /
    #: recorder): declarative SLOs evaluated periodically over the
    #: windowed rollups with firing/resolved alerts, a per-node health
    #: scoreboard, and per-node flight recorders.  Implies ``telemetry``
    #: and ``windowed_metrics``.  Off by default: nothing is built and
    #: simulated results are byte-identical.  Enabled, the evaluator
    #: tick is pure observation (no shared randomness, no simulated
    #: resources), so workload results stay identical too — asserted in
    #: ``benchmarks/perf/slo_bench.py``.
    slo: bool = False
    #: Tuning knobs for windows, SLO evaluation, health, and recorders.
    slo_tuning: SloConfig = field(default_factory=SloConfig)
    #: Scale construction: instead of the sequential protocol join
    #: (O(N²) messages — minutes of wall clock past ~1k devices), the
    #: builder computes each node's Pastry-correct partial view (leaf
    #: set + routing table) directly from the sorted id list and
    #: installs it in O(N log N) total.  No protocol traffic is emitted
    #: and no simulated time elapses, so it is only valid for bringing
    #: up a *fresh* overlay (which is exactly what the scale benches
    #: do).  Off by default: the default path stays the paper-faithful
    #: protocol join.
    fast_join: bool = False
    #: Per-node route-cache entry cap (LRU).  Lower it for 10k-node
    #: runs where per-node memory dominates.
    route_cache_max: int = 4096
    #: Use the legacy full-membership-sort ring scans in the KV layer
    #: (replica targets, owner selection) instead of the ring-window
    #: query.  Identical results either way; kept for A/B measurement.
    ring_scan_reference: bool = False
    #: Durable storage backend per device (repro.storage): ``"off"``
    #: (no backend object exists — byte-identical to a build without
    #: the subsystem), ``"mem"`` (explicit volatile baseline: a crash
    #: wipes everything and the node rejoins empty), ``"wal"``
    #: (append-only journal with snapshot+compaction; every KV/bin
    #: mutation is durable instantly and replayed on revive), or
    #: ``"disk"`` (WAL plus a seeded disk cost model: interval fsync
    #: via a background flusher, un-synced appends lost on crash,
    #: replay latency charged through the event kernel).  Durable
    #: backends also enable delete tombstones and the anti-entropy
    #: rejoin round.
    storage: str = "off"
    #: Tuning knobs for the storage backends and anti-entropy.
    storage_tuning: StorageConfig = field(default_factory=StorageConfig)
