"""Exporters: JSON span dumps, Chrome traces, attribution reports.

Three consumers of one span list:

* :func:`span_dump` / :func:`merge_span_dumps` — portable JSON dicts,
  the interchange format between parallel workers and the main process.
* :func:`chrome_trace` — Google ``trace_event`` JSON ("JSON Array
  Format" with complete ``X`` events) loadable in ``chrome://tracing``
  or https://ui.perfetto.dev.  :func:`validate_chrome_trace` checks the
  schema invariants CI relies on.
* :func:`attribution_report` — a plain-text, flame-style view: where
  simulated time went per layer (self time, excluding children) plus
  the slowest trace rendered as an indented tree.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.telemetry.spans import Span, Telemetry

__all__ = [
    "span_dump",
    "merge_span_dumps",
    "spans_from_dump",
    "chrome_trace",
    "validate_chrome_trace",
    "attribution_report",
    "layer_attribution",
]

#: Simulated seconds -> trace_event microseconds.
_US = 1e6


def _spans_of(source: "Telemetry | Iterable[Span]") -> list[Span]:
    if isinstance(source, Telemetry):
        return list(source.spans)
    return list(source)


def span_dump(source: "Telemetry | Iterable[Span]") -> list[dict]:
    """The whole span list as JSON-ready dicts (emission order)."""
    return [span.as_dict() for span in _spans_of(source)]


def spans_from_dump(dump: Iterable[dict]) -> list[Span]:
    return [Span.from_dict(entry) for entry in dump]


def merge_span_dumps(dumps: Sequence[Iterable[dict]]) -> list[dict]:
    """Merge per-worker span dumps into one id-collision-free dump.

    Workers allocate span ids independently from 1, so pooled dumps can
    reuse an id for entirely different spans.  Blindly rebasing *every*
    dump (the old behaviour) destroyed the two benign shapes: dumps
    whose id spaces are already disjoint (their parent edges may
    deliberately point across dumps) and dumps that overlap (the same
    spans re-exported).  Each incoming dump is therefore compared
    against the ids already merged:

    * **disjoint ids** — the dump joins the merged id space untouched;
    * **shared ids, entries identical** — the duplicates are dropped
      and the rest join untouched (an overlap, not a collision);
    * **any shared id that disagrees** — on parentage, name, timing,
      anything — is a true collision: that whole dump is rebased past
      the merged maximum, preserving its internal parent/child edges.

    Deterministic either way: submission order in, submission order
    out, matching :func:`repro.parallel.run_jobs`.
    """
    merged: list[dict] = []
    by_id: dict[int, dict] = {}
    highest = 0
    for dump in dumps:
        entries = [dict(entry) for entry in dump]
        collision = any(
            entry["span_id"] in by_id and by_id[entry["span_id"]] != entry
            for entry in entries
        )
        if collision:
            offset = highest
            for entry in entries:
                entry["trace_id"] += offset
                entry["span_id"] += offset
                if entry.get("parent_id") is not None:
                    entry["parent_id"] += offset
        for entry in entries:
            if entry["span_id"] in by_id:
                continue  # identical duplicate (collisions were rebased away)
            by_id[entry["span_id"]] = entry
            merged.append(entry)
            if entry["span_id"] > highest:
                highest = entry["span_id"]
            if entry["trace_id"] > highest:
                highest = entry["trace_id"]
    return merged


# -- Chrome trace_event export ---------------------------------------------


def chrome_trace(source: "Telemetry | Iterable[Span]") -> dict:
    """Spans as a ``chrome://tracing`` / Perfetto-loadable payload.

    Each finished span becomes one complete ``X`` event (``ts``/``dur``
    in microseconds of *simulated* time); unfinished spans are exported
    with zero duration and ``status: "unfinished"`` so they remain
    visible rather than silently vanishing.  Nodes map to thread ids
    with ``M`` metadata records naming them, so the per-node timelines
    read like per-host swimlanes.
    """
    spans = _spans_of(source)
    nodes = sorted({span.node for span in spans})
    tids = {node: i + 1 for i, node in enumerate(nodes)}
    events: list[dict] = []
    for node, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": node or "(cluster)"},
            }
        )
    timed = []
    for span in spans:
        end = span.end if span.end is not None else span.start
        timed.append(
            {
                "name": span.name,
                "cat": span.layer,
                "ph": "X",
                "ts": span.start * _US,
                "dur": (end - span.start) * _US,
                "pid": 1,
                "tid": tids[span.node],
                "args": {
                    "trace": span.trace_id,
                    "span": span.span_id,
                    "parent": span.parent_id,
                    "status": span.status if span.finished else "unfinished",
                    **span.attrs,
                },
            }
        )
    timed.sort(key=lambda e: (e["ts"], e["args"]["span"]))
    events.extend(timed)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(payload: dict) -> int:
    """Validate the trace_event schema invariants; returns event count.

    Raises :class:`ValueError` on: a missing/ill-typed ``traceEvents``
    list, unknown phase types, ``X`` events without numeric ``ts`` or
    with negative ``dur``, non-monotonic ``ts`` ordering among timed
    events, or ``B``/``E`` begin/end events that do not pair up per
    (pid, tid).  This is the check CI runs against the ``report``
    command's ``trace.json``.
    """
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty list")
    last_ts = None
    open_stacks: dict[tuple, list[str]] = {}
    timed = 0
    for i, event in enumerate(events):
        ph = event.get("ph")
        if ph == "M":
            continue
        if ph not in ("X", "B", "E"):
            raise ValueError(f"event {i}: unsupported phase {ph!r}")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            raise ValueError(f"event {i}: ts must be numeric, got {ts!r}")
        if last_ts is not None and ts < last_ts:
            raise ValueError(
                f"event {i}: ts {ts} not monotonic (previous {last_ts})"
            )
        last_ts = ts
        timed += 1
        key = (event.get("pid"), event.get("tid"))
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"event {i}: X event needs dur >= 0, got {dur!r}")
        elif ph == "B":
            open_stacks.setdefault(key, []).append(event.get("name", ""))
        else:  # "E"
            stack = open_stacks.get(key)
            if not stack:
                raise ValueError(f"event {i}: E without matching B on {key}")
            stack.pop()
    unclosed = {k: v for k, v in open_stacks.items() if v}
    if unclosed:
        raise ValueError(f"unmatched B events left open: {unclosed}")
    if timed == 0:
        raise ValueError("trace contains no timed events")
    return timed


# -- latency attribution ----------------------------------------------------


def layer_attribution(source: "Telemetry | Iterable[Span]") -> dict[str, dict]:
    """Per-layer totals: span count, total time, and *self* time.

    Self time is a span's duration minus its direct children's
    durations (floored at zero — children may overlap their parent's
    tail under scatter-gather), summed per layer.  Self times answer
    "where did the time actually go" without double-counting the
    nesting.
    """
    spans = [s for s in _spans_of(source) if s.finished]
    children_duration: dict[int, float] = {}
    for span in spans:
        if span.parent_id is not None:
            children_duration[span.parent_id] = (
                children_duration.get(span.parent_id, 0.0) + span.duration_s
            )
    out: dict[str, dict] = {}
    for span in spans:
        entry = out.setdefault(
            span.layer, {"count": 0, "total_s": 0.0, "self_s": 0.0}
        )
        entry["count"] += 1
        entry["total_s"] += span.duration_s
        entry["self_s"] += max(
            0.0, span.duration_s - children_duration.get(span.span_id, 0.0)
        )
    return out


def _render_tree(spans: list[Span], root: Span, lines: list[str], depth: int) -> None:
    detail = ", ".join(f"{k}={v}" for k, v in sorted(root.attrs.items()))
    flags = "" if root.status == "ok" else f"  [{root.status}]"
    lines.append(
        f"  {'  ' * depth}{root.duration_s * 1000:9.2f} ms  "
        f"{root.layer}/{root.name} @{root.node}"
        + (f"  ({detail})" if detail else "")
        + flags
    )
    kids = [
        s for s in spans if s.parent_id == root.span_id and s.trace_id == root.trace_id
    ]
    for kid in sorted(kids, key=lambda s: (s.start, s.span_id)):
        _render_tree(spans, kid, lines, depth + 1)


def attribution_report(
    source: "Telemetry | Iterable[Span]", top_traces: int = 1
) -> str:
    """Flame-style plain-text report: layer table + slowest trace trees."""
    spans = _spans_of(source)
    finished = [s for s in spans if s.finished]
    lines = ["== latency attribution (simulated time) =="]
    if not finished:
        lines.append("  (no finished spans)")
        return "\n".join(lines)
    per_layer = layer_attribution(finished)
    total_self = sum(e["self_s"] for e in per_layer.values()) or 1.0
    lines.append(f"  {'layer':12s} {'spans':>6s} {'total':>10s} {'self':>10s}  share")
    for layer, entry in sorted(
        per_layer.items(), key=lambda kv: -kv[1]["self_s"]
    ):
        lines.append(
            f"  {layer:12s} {entry['count']:6d} "
            f"{entry['total_s']:9.3f}s {entry['self_s']:9.3f}s "
            f"{entry['self_s'] / total_self:6.1%}"
        )
    roots = sorted(
        (s for s in finished if s.parent_id is None),
        key=lambda s: -s.duration_s,
    )
    for root in roots[:top_traces]:
        lines.append(
            f"-- slowest trace: {root.name} @{root.node} "
            f"({root.duration_s * 1000:.2f} ms, trace {root.trace_id}) --"
        )
        _render_tree(spans, root, lines, 0)
    return "\n".join(lines)


def metrics_report(registry, limit: Optional[int] = None) -> str:
    """Plain-text summary of a :class:`MetricsRegistry` snapshot."""
    snapshot = registry.snapshot()
    lines = ["== metrics =="]
    names = list(snapshot)
    if limit is not None:
        names = names[:limit]
    for name in names:
        for node, data in sorted(snapshot[name].items()):
            where = f"@{node}" if node else ""
            if data["type"] == "counter":
                lines.append(f"  {name}{where}: {data['value']:g}")
            elif data["type"] == "gauge":
                lines.append(f"  {name}{where}: {data['value']:.6g}")
            else:
                lines.append(
                    f"  {name}{where}: n={data['count']} "
                    f"mean={data['mean'] * 1000:.2f}ms "
                    f"p50={data['p50'] * 1000:.2f}ms "
                    f"p95={data['p95'] * 1000:.2f}ms "
                    f"p99={data['p99'] * 1000:.2f}ms"
                )
    return "\n".join(lines)
