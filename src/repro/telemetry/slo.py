"""Declarative SLOs evaluated over the windowed metrics plane.

An :class:`SloSpec` states an objective over a windowed instrument —
"``kv.get`` p99 ≤ 2.0 s over 60 s windows", "``client.fetch`` success
ratio ≥ 0.99" — and the :class:`SloEngine` checks every spec each time it is
asked to ``evaluate(now)``, typically once per sub-window rotation (the
:class:`SloEvaluator` process) and at the end of an
:class:`~repro.load.OpenLoopDriver` run.

Alerts carry firing/resolved **hysteresis**: a spec must breach for
``breach_windows`` consecutive evaluations before a ``firing``
:class:`AlertEvent` is emitted, and must then pass for
``clear_windows`` consecutive evaluations before the matching
``resolved`` event — so a single noisy window neither pages nor
un-pages.  Evaluations with fewer than ``min_samples`` observations in
the window are skipped entirely (no evidence either way), which keeps
idle clusters from flapping.

Every emitted alert is appended to :attr:`SloEngine.alerts`, counted
under ``slo.alerts.firing`` / ``slo.alerts.resolved``, mirrored into
the span stream as an instant ``slo.alert`` event when a telemetry
plane is attached, and fanned out to ``on_alert`` subscribers (the
flight-recorder dump hook).  Everything is keyed by simulated time:
two runs of the same seeded scenario produce identical alert
sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.telemetry.timeseries import merge_window_histograms

__all__ = ["SloSpec", "AlertEvent", "SloEngine", "SloEvaluator", "default_slo_specs"]

#: Objectives a latency spec may target on the merged window histogram.
_QUANTILES = {"p50": 0.50, "p95": 0.95, "p99": 0.99, "p999": 0.999}
_LATENCY_OBJECTIVES = ("p50", "p95", "p99", "p999", "mean", "max")


@dataclass(frozen=True)
class SloSpec:
    """One service-level objective over a windowed instrument.

    ``metric`` names the span whose windowed rollups are judged
    (``kv.get``, ``fetch``); ``kind`` picks the instrument family:

    * ``latency`` — ``objective`` (a quantile or ``mean``/``max``) of
      the merged :class:`~repro.telemetry.timeseries.WindowedHistogram`
      must satisfy ``op threshold`` (threshold in seconds).
    * ``ratio`` — the ok/total success ratio of the merged
      :class:`~repro.telemetry.timeseries.WindowedRatio` must satisfy
      ``op threshold``.
    * ``rate`` — the merged events-per-second of the
      :class:`~repro.telemetry.timeseries.WindowedRate` must satisfy
      ``op threshold``.

    ``per_node=True`` evaluates (and alerts) each node's rollup
    separately instead of the cluster-wide merge.
    """

    id: str
    metric: str
    kind: str = "latency"  # latency | ratio | rate
    objective: str = "p99"  # for kind="latency"
    op: str = "<="  # <= | >=
    threshold: float = 1.0
    min_samples: int = 1
    breach_windows: int = 1
    clear_windows: int = 1
    per_node: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "ratio", "rate"):
            raise ValueError(f"unknown SLO kind: {self.kind!r}")
        if self.op not in ("<=", ">="):
            raise ValueError(f"unknown SLO op: {self.op!r} (use '<=' or '>=')")
        if self.kind == "latency" and self.objective not in _LATENCY_OBJECTIVES:
            raise ValueError(
                f"unknown latency objective: {self.objective!r} "
                f"(one of {_LATENCY_OBJECTIVES})"
            )
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if self.breach_windows < 1 or self.clear_windows < 1:
            raise ValueError("breach_windows and clear_windows must be >= 1")

    def satisfied(self, value: float) -> bool:
        return value <= self.threshold if self.op == "<=" else value >= self.threshold

    def describe(self) -> str:
        if self.description:
            return self.description
        what = f"{self.metric} {self.objective}" if self.kind == "latency" else (
            f"{self.metric} success ratio" if self.kind == "ratio" else f"{self.metric} rate"
        )
        return f"{what} {self.op} {self.threshold}"


@dataclass(frozen=True)
class AlertEvent:
    """One firing or resolved edge of one SLO (possibly per node)."""

    at: float
    slo_id: str
    metric: str
    node: str  # "" for cluster-wide specs
    state: str  # firing | resolved
    value: float
    threshold: float
    description: str = ""

    def as_dict(self) -> dict:
        return {
            "at": self.at,
            "slo_id": self.slo_id,
            "metric": self.metric,
            "node": self.node,
            "state": self.state,
            "value": self.value,
            "threshold": self.threshold,
            "description": self.description,
        }


class _SloState:
    """Hysteresis counters for one (spec, node) pair."""

    __slots__ = ("firing", "breach_streak", "ok_streak")

    def __init__(self) -> None:
        self.firing = False
        self.breach_streak = 0
        self.ok_streak = 0


class SloEngine:
    """Evaluates a set of :class:`SloSpec` against a metrics registry.

    The engine holds no simulated state of its own — it reads the
    windowed rollups in ``metrics`` at whatever ``now`` the caller
    passes, so it can be driven by a :class:`SloEvaluator` process, a
    load driver, or a test poking times in by hand.
    """

    def __init__(self, metrics, specs, telemetry=None, node: str = "") -> None:
        self.metrics = metrics
        self.specs = list(specs)
        seen = set()
        for spec in self.specs:
            if spec.id in seen:
                raise ValueError(f"duplicate SLO id: {spec.id!r}")
            seen.add(spec.id)
        self.telemetry = telemetry
        self.node = node
        self.alerts: list[AlertEvent] = []
        self.evaluations = 0
        self._states: dict[tuple[str, str], _SloState] = {}
        #: Callables invoked with each emitted AlertEvent (guarded).
        self._on_alert: list = []

    # -- subscriptions -----------------------------------------------------

    def on_alert(self, fn) -> None:
        """Call ``fn(alert)`` for every alert emitted from now on."""
        self._on_alert.append(fn)

    # -- queries -----------------------------------------------------------

    def firing(self) -> list[tuple[str, str]]:
        """Currently-firing (slo_id, node) pairs, sorted."""
        return sorted(key for key, st in self._states.items() if st.firing)

    def alerts_for(self, slo_id: str) -> list[AlertEvent]:
        return [a for a in self.alerts if a.slo_id == slo_id]

    # -- evaluation --------------------------------------------------------

    def evaluate(self, now: float) -> list[AlertEvent]:
        """Judge every spec at simulated time ``now``.

        Returns the alerts emitted *by this evaluation* (also appended
        to :attr:`alerts`).
        """
        self.evaluations += 1
        emitted: list[AlertEvent] = []
        for spec in self.specs:
            for node, value in self._readings(spec, now):
                event = self._judge(spec, node, value, now)
                if event is not None:
                    emitted.append(event)
        return emitted

    def _readings(self, spec: SloSpec, now: float):
        """(node, value) pairs to judge — [] when under min_samples."""
        if spec.kind == "latency":
            instruments = self.metrics.windowed_histograms_for(spec.metric)
            groups = (
                [(wh.node, [wh]) for wh in instruments]
                if spec.per_node
                else [("", instruments)]
            )
            for node, group in groups:
                merged = merge_window_histograms(group, now)
                if merged.count < spec.min_samples:
                    continue
                if spec.objective == "mean":
                    yield node, merged.mean
                elif spec.objective == "max":
                    yield node, merged.vmax
                else:
                    yield node, merged.quantile(_QUANTILES[spec.objective])
        elif spec.kind == "ratio":
            # Both sources speak window_totals(): dedicated ratio
            # instruments (fed by hand, e.g. the chaos scenario's
            # clean-fetch signal) and span-fed windowed histograms,
            # whose per-observation ok flag makes every span name a
            # success ratio for free.
            instruments = self.metrics.windowed_ratios_for(
                spec.metric
            ) + self.metrics.windowed_histograms_for(spec.metric)
            groups = (
                [(wr.node, [wr]) for wr in instruments]
                if spec.per_node
                else [("", instruments)]
            )
            for node, group in groups:
                ok = n = 0
                for wr in group:
                    part_ok, part_n = wr.window_totals(now)
                    ok += part_ok
                    n += part_n
                if n < spec.min_samples:
                    continue
                yield node, ok / n
        else:  # rate
            instruments = self.metrics.windowed_rates_for(spec.metric)
            groups = (
                [(wr.node, [wr]) for wr in instruments]
                if spec.per_node
                else [("", instruments)]
            )
            for node, group in groups:
                if not group:
                    continue
                yield node, sum(wr.rate(now) for wr in group)

    def _judge(self, spec: SloSpec, node: str, value: float, now: float):
        state = self._states.setdefault((spec.id, node), _SloState())
        if spec.satisfied(value):
            state.ok_streak += 1
            state.breach_streak = 0
            if state.firing and state.ok_streak >= spec.clear_windows:
                state.firing = False
                return self._emit(spec, node, "resolved", value, now)
        else:
            state.breach_streak += 1
            state.ok_streak = 0
            if not state.firing and state.breach_streak >= spec.breach_windows:
                state.firing = True
                return self._emit(spec, node, "firing", value, now)
        return None

    def _emit(self, spec: SloSpec, node: str, state: str, value: float, now: float) -> AlertEvent:
        alert = AlertEvent(
            at=now,
            slo_id=spec.id,
            metric=spec.metric,
            node=node,
            state=state,
            value=value,
            threshold=spec.threshold,
            description=spec.describe(),
        )
        self.alerts.append(alert)
        self.metrics.counter(f"slo.alerts.{state}", node=self.node).inc()
        if self.telemetry is not None:
            self.telemetry.event(
                "slo.alert",
                layer="slo",
                node=node or self.node,
                status=state,
                slo=spec.id,
                metric=spec.metric,
                value=value,
                threshold=spec.threshold,
            )
        for fn in list(self._on_alert):
            try:
                fn(alert)
            except Exception:
                # A broken alert hook must never break evaluation.
                self._on_alert.remove(fn)
        return alert


class SloEvaluator:
    """A simulation process ticking :meth:`SloEngine.evaluate` periodically.

    The tick is pure observation — it touches no shared randomness and
    no simulated resources, so enabling it leaves the workload's
    simulated results unchanged (asserted in
    ``benchmarks/perf/slo_bench.py``).
    """

    def __init__(self, sim, engine: SloEngine, period_s: float = 10.0) -> None:
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.sim = sim
        self.engine = engine
        self.period_s = period_s
        self._process = None

    @property
    def running(self) -> bool:
        return self._process is not None and self._process.is_alive

    def start(self) -> None:
        if not self.running:
            self._process = self.sim.process(self._run())

    def stop(self) -> None:
        if self.running:
            self._process.interrupt("slo evaluator stopped")
        self._process = None

    def _run(self):
        from repro.sim import Interrupt

        try:
            while True:
                yield self.sim.timeout(self.period_s)
                self.engine.evaluate(self.sim.now)
        except Interrupt:
            return


def default_slo_specs(
    window_s: float = 60.0,
    kv_get_p99_s: float = 2.0,
    fetch_success_ratio: float = 0.99,
) -> list[SloSpec]:
    """The stock objectives: KV latency and fetch availability.

    ``fetch-availability`` judges the ``client.fetch`` span rollups
    (every observation carries an ok flag, so the windowed histogram
    doubles as the success ratio).  The chaos scenario
    (:func:`repro.cluster.availability_chaos_scenario`) uses a
    stricter variant on its hand-fed ``fetch.clean`` signal: killing
    2 of 8 nodes drives the clean-fetch ratio under target (firing)
    until the :class:`~repro.resilience.Repairer` restores replication
    (resolved).
    """
    return [
        SloSpec(
            id="kv-get-p99",
            metric="kv.get",
            kind="latency",
            objective="p99",
            op="<=",
            threshold=kv_get_p99_s,
            min_samples=5,
            breach_windows=1,
            clear_windows=2,
            description=f"kv.get p99 <= {kv_get_p99_s}s over {window_s:.0f}s windows",
        ),
        SloSpec(
            id="fetch-availability",
            metric="client.fetch",
            kind="ratio",
            op=">=",
            threshold=fetch_success_ratio,
            min_samples=5,
            breach_windows=1,
            clear_windows=1,
            description=f"fetch success ratio >= {fetch_success_ratio} over {window_s:.0f}s windows",
        ),
    ]
