"""Per-node health scores fused from the live observability planes.

The :class:`HealthBoard` answers the question adaptive placement needs
answered: "how healthy is node X *right now*, on a single [0, 1]
scale?"  It fuses five independent signals, each normalised to [0, 1]
(1.0 = perfectly healthy, components with no evidence read 1.0):

* ``latency`` — the node's windowed p99 for a reference metric
  (default ``kv.get``) against a target; degrades smoothly as the p99
  exceeds the target.
* ``success`` — the node's windowed ok/total ratio across *all* of its
  span rollups.
* ``breakers`` — the fraction of the node's per-peer circuit breakers
  currently open (peers it cannot reach).
* ``repairs`` — recent repair actions logged by the node's
  :class:`~repro.resilience.Repairer` (re-replication pressure means
  the data the node is responsible for was found under-protected).
* ``staleness`` — age of the node's last
  :class:`~repro.monitoring.ResourceSnapshot` publication against the
  freshness TTL; a silent monitor is a suspect node.

The composite score is the weighted mean of the available components.
Consumers should depend on the narrow :class:`HealthView` surface —
``score`` / ``healthy`` / ``nodes`` — which is what the
``DecisionEngine`` integration (next PR) will take, not the full
board.

Everything is read-side only and keyed by simulated time: scoring a
node mutates nothing but lazy window rotation, so two runs of the same
scenario report identical scoreboards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["HealthView", "HealthScore", "HealthBoard"]


class HealthView:
    """The narrow read surface placement code may depend on.

    :class:`HealthBoard` implements it; tests may substitute a stub.
    """

    def score(self, node: str, now: float) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def healthy(self, node: str, now: float, threshold: float = 0.5) -> bool:
        return self.score(node, now) >= threshold

    def nodes(self) -> list[str]:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass(frozen=True)
class HealthScore:
    """One node's fused health at one simulated instant."""

    node: str
    at: float
    score: float
    components: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "node": self.node,
            "at": self.at,
            "score": self.score,
            "components": dict(self.components),
        }


#: Relative weight of each component in the composite score.
DEFAULT_WEIGHTS = {
    "latency": 2.0,
    "success": 3.0,
    "breakers": 2.0,
    "repairs": 1.0,
    "staleness": 1.0,
}


class HealthBoard(HealthView):
    """Queryable per-node health scoreboard.

    Construct with the shared :class:`~repro.telemetry.MetricsRegistry`
    (whose windowed rollups supply latency/success), then
    :meth:`attach_node` each device's breaker registry, repairer, and
    resource monitor as they exist — every source is optional, and a
    missing source simply contributes no component.
    """

    def __init__(
        self,
        metrics,
        latency_metric: str = "kv.get",
        latency_target_s: float = 2.0,
        repair_window_s: float = 60.0,
        freshness_ttl_s: float = 30.0,
        weights: Optional[dict] = None,
    ) -> None:
        if latency_target_s <= 0:
            raise ValueError("latency_target_s must be positive")
        if repair_window_s <= 0 or freshness_ttl_s <= 0:
            raise ValueError("windows and TTLs must be positive")
        self.metrics = metrics
        self.latency_metric = latency_metric
        self.latency_target_s = latency_target_s
        self.repair_window_s = repair_window_s
        self.freshness_ttl_s = freshness_ttl_s
        self.weights = dict(DEFAULT_WEIGHTS if weights is None else weights)
        self._breakers: dict[str, object] = {}
        self._repairers: dict[str, object] = {}
        self._monitors: dict[str, object] = {}
        self._known: list[str] = []

    # -- wiring ------------------------------------------------------------

    def attach_node(self, node: str, breakers=None, repairer=None, monitor=None) -> None:
        """Register a node's health sources (any subset may be None)."""
        if node not in self._known:
            self._known.append(node)
        if breakers is not None:
            self._breakers[node] = breakers
        if repairer is not None:
            self._repairers[node] = repairer
        if monitor is not None:
            self._monitors[node] = monitor

    def nodes(self) -> list[str]:
        return sorted(self._known)

    # -- components --------------------------------------------------------

    def _latency_component(self, node: str, now: float) -> Optional[float]:
        wh = self.metrics.peek_windowed_histogram(self.latency_metric, node)
        if wh is None:
            return None
        merged = wh.window(now)
        if merged.count == 0:
            return None
        p99 = merged.quantile(0.99)
        if p99 <= self.latency_target_s:
            return 1.0
        # Degrade smoothly: 2x the target scores 0.5, 4x scores 0.25.
        return self.latency_target_s / p99

    def _success_component(self, node: str, now: float) -> Optional[float]:
        ok = n = 0
        # Dedicated ratio instruments plus the span-fed windowed
        # histograms (whose per-observation ok flag tracks success).
        for wr in self.metrics.windowed_ratios_on(
            node
        ) + self.metrics.windowed_histograms_on(node):
            part_ok, part_n = wr.window_totals(now)
            ok += part_ok
            n += part_n
        if n == 0:
            return None
        return ok / n

    def _breaker_component(self, node: str, now: float) -> Optional[float]:
        breakers = self._breakers.get(node)
        if breakers is None:
            return None
        total = len(breakers.known_peers())
        if total == 0:
            return None
        return 1.0 - len(breakers.open_peers(now)) / total

    def _repair_component(self, node: str, now: float) -> Optional[float]:
        repairer = self._repairers.get(node)
        if repairer is None:
            return None
        cutoff = now - self.repair_window_s
        recent = sum(1 for action in repairer.repairs if action.at >= cutoff)
        # 0 recent repairs -> 1.0; each one halves the remaining credit.
        return 1.0 / (1.0 + recent)

    def _staleness_component(self, node: str, now: float) -> Optional[float]:
        monitor = self._monitors.get(node)
        if monitor is None:
            return None
        last = monitor.last_published_at
        if last is None:
            return None
        age = now - last
        if age <= self.freshness_ttl_s:
            return 1.0
        return self.freshness_ttl_s / age

    # -- scoring -----------------------------------------------------------

    def score_detail(self, node: str, now: float) -> HealthScore:
        """The fused score plus each contributing component."""
        components = {}
        for key, fn in (
            ("latency", self._latency_component),
            ("success", self._success_component),
            ("breakers", self._breaker_component),
            ("repairs", self._repair_component),
            ("staleness", self._staleness_component),
        ):
            value = fn(node, now)
            if value is not None:
                components[key] = value
        if not components:
            fused = 1.0  # no evidence of trouble
        else:
            weight_sum = sum(self.weights.get(k, 1.0) for k in components)
            fused = (
                sum(self.weights.get(k, 1.0) * v for k, v in components.items())
                / weight_sum
            )
        return HealthScore(node=node, at=now, score=fused, components=components)

    def score(self, node: str, now: float) -> float:
        return self.score_detail(node, now).score

    def scoreboard(self, now: float) -> dict[str, HealthScore]:
        """Every known node's :class:`HealthScore`, keyed by node."""
        return {node: self.score_detail(node, now) for node in self.nodes()}

    def report(self, now: float) -> str:
        """Plain-text scoreboard for CLI output."""
        lines = [f"health scoreboard @ t={now:.1f}s"]
        board = self.scoreboard(now)
        for node in sorted(board):
            hs = board[node]
            parts = " ".join(f"{k}={v:.2f}" for k, v in sorted(hs.components.items()))
            lines.append(f"  {node:<12} {hs.score:.3f}  {parts}")
        return "\n".join(lines)
