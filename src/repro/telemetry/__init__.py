"""End-to-end causal tracing and metrics for the VStore++ stack.

The telemetry plane has three pieces:

* :mod:`repro.telemetry.spans` — :class:`Telemetry` (attach to a
  simulator), :class:`Span`, :class:`SpanContext`: per-request causal
  span trees across client, XenSocket, overlay, kvstore, decision,
  service, and cloud layers.
* :mod:`repro.telemetry.metrics` — :class:`MetricsRegistry` with
  counters, gauges, and fixed-bucket histograms per (name, node).
* :mod:`repro.telemetry.export` — JSON span dumps, Chrome
  ``trace_event`` export (``chrome://tracing`` / Perfetto), flame-style
  latency attribution, and per-worker trace merging.

The *active* observability layer builds on those (see
docs/OBSERVABILITY.md, "Windows, SLOs, and the flight recorder"):

* :mod:`repro.telemetry.timeseries` — sliding-window instruments keyed
  by simulated time (:class:`WindowedHistogram`, :class:`WindowedRate`,
  :class:`WindowedRatio`), rolled up per (name, node) in the registry.
* :mod:`repro.telemetry.slo` — declarative :class:`SloSpec` objectives
  judged by an :class:`SloEngine` with firing/resolved hysteresis,
  emitting typed :class:`AlertEvent`\\ s.
* :mod:`repro.telemetry.health` — per-node :class:`HealthScore` fusion
  behind the narrow :class:`HealthView` read surface.
* :mod:`repro.telemetry.recorder` — bounded per-node
  :class:`FlightRecorder` rings dumped to schema-validated JSON
  artifacts on alerts and chaos failures.

Telemetry is off by default: layers guard every emit behind
``sim.telemetry is not None`` and add nothing to simulated behaviour
when disabled.  Enable per cluster with ``ClusterConfig(telemetry=True)``
or manually with ``Telemetry(sim).attach()``.
"""

from repro.telemetry.export import (
    attribution_report,
    chrome_trace,
    layer_attribution,
    merge_span_dumps,
    metrics_report,
    span_dump,
    spans_from_dump,
    validate_chrome_trace,
)
from repro.telemetry.health import HealthBoard, HealthScore, HealthView
from repro.telemetry.memprobe import memory_probe
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.recorder import (
    RECORDER_SCHEMA,
    FlightRecorder,
    RecorderHub,
    validate_recorder_dump,
)
from repro.telemetry.slo import (
    AlertEvent,
    SloEngine,
    SloEvaluator,
    SloSpec,
    default_slo_specs,
)
from repro.telemetry.spans import Span, SpanContext, Telemetry, wire_ctx
from repro.telemetry.timeseries import (
    WindowedHistogram,
    WindowedRate,
    WindowedRatio,
    WindowPolicy,
    merge_window_histograms,
)

__all__ = [
    "Telemetry",
    "Span",
    "SpanContext",
    "wire_ctx",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "WindowPolicy",
    "WindowedHistogram",
    "WindowedRate",
    "WindowedRatio",
    "merge_window_histograms",
    "SloSpec",
    "AlertEvent",
    "SloEngine",
    "SloEvaluator",
    "default_slo_specs",
    "HealthView",
    "HealthScore",
    "HealthBoard",
    "FlightRecorder",
    "RecorderHub",
    "RECORDER_SCHEMA",
    "validate_recorder_dump",
    "span_dump",
    "spans_from_dump",
    "merge_span_dumps",
    "chrome_trace",
    "validate_chrome_trace",
    "attribution_report",
    "layer_attribution",
    "metrics_report",
    "memory_probe",
]
