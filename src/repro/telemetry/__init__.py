"""End-to-end causal tracing and metrics for the VStore++ stack.

The telemetry plane has three pieces:

* :mod:`repro.telemetry.spans` — :class:`Telemetry` (attach to a
  simulator), :class:`Span`, :class:`SpanContext`: per-request causal
  span trees across client, XenSocket, overlay, kvstore, decision,
  service, and cloud layers.
* :mod:`repro.telemetry.metrics` — :class:`MetricsRegistry` with
  counters, gauges, and fixed-bucket histograms per (name, node).
* :mod:`repro.telemetry.export` — JSON span dumps, Chrome
  ``trace_event`` export (``chrome://tracing`` / Perfetto), flame-style
  latency attribution, and per-worker trace merging.

Telemetry is off by default: layers guard every emit behind
``sim.telemetry is not None`` and add nothing to simulated behaviour
when disabled.  Enable per cluster with ``ClusterConfig(telemetry=True)``
or manually with ``Telemetry(sim).attach()``.
"""

from repro.telemetry.export import (
    attribution_report,
    chrome_trace,
    layer_attribution,
    merge_span_dumps,
    metrics_report,
    span_dump,
    spans_from_dump,
    validate_chrome_trace,
)
from repro.telemetry.memprobe import memory_probe
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.spans import Span, SpanContext, Telemetry, wire_ctx

__all__ = [
    "Telemetry",
    "Span",
    "SpanContext",
    "wire_ctx",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "span_dump",
    "spans_from_dump",
    "merge_span_dumps",
    "chrome_trace",
    "validate_chrome_trace",
    "attribution_report",
    "layer_attribution",
    "metrics_report",
    "memory_probe",
]
