"""Process-memory probe for benchmarks (stdlib only, no psutil).

Reads current and peak RSS from ``/proc/self/status`` (VmRSS/VmHWM)
with a ``resource.getrusage`` fallback for platforms without procfs,
plus the live GC object count.  Every BENCH json records one of these
snapshots so memory regressions surface next to time regressions.
"""

from __future__ import annotations

import gc
import resource
import sys

__all__ = ["memory_probe"]

_KB = 1024.0


def _proc_status_kb(field: str) -> float | None:
    try:
        with open("/proc/self/status", encoding="ascii") as fh:
            for line in fh:
                if line.startswith(field + ":"):
                    return float(line.split()[1])  # value is in kB
    except OSError:
        return None
    return None


def memory_probe(count_objects: bool = True) -> dict:
    """A JSON-ready snapshot of this process's memory footprint.

    ``rss_mb`` is the current resident set, ``peak_rss_mb`` the
    process-lifetime high-water mark (``VmHWM``; note that a reused
    worker process reports the max across every job it has run).
    ``gc_objects`` is the number of live collector-tracked objects —
    the leak signal RSS alone can hide behind allocator caching.  Set
    ``count_objects=False`` to skip the object walk (it is O(heap)).
    """
    rss_kb = _proc_status_kb("VmRSS")
    peak_kb = _proc_status_kb("VmHWM")
    if peak_kb is None:
        ru = resource.getrusage(resource.RUSAGE_SELF)
        # ru_maxrss is kilobytes on Linux, bytes on macOS.
        peak_kb = ru.ru_maxrss / (1.0 if sys.platform != "darwin" else _KB)
    return {
        "rss_mb": round(rss_kb / _KB, 2) if rss_kb is not None else None,
        "peak_rss_mb": round(peak_kb / _KB, 2) if peak_kb is not None else None,
        "gc_objects": len(gc.get_objects()) if count_objects else None,
    }
