"""Sliding-window instruments keyed by simulated time.

The cumulative instruments in :mod:`repro.telemetry.metrics` answer
"what happened over the whole run"; these answer "what happened over
the last *W* seconds of simulated time" — the view an SLO engine or an
adaptive placement policy actually needs.

Each instrument is a ring of ``sub_windows`` fixed-size sub-windows of
``window_s / sub_windows`` simulated seconds each.  Sub-window edges
are aligned to the simulation epoch (t = 0.0): the sub-window covering
time ``t`` has absolute index ``int(t // sub_window_s)``, so rotation
is pure arithmetic on the simulated clock — no wall time, no ambient
state — and two runs that produce the same simulated timestamps rotate
bit-identically, fast path or reference kernel alike.

Rotation is *lazy*: nothing ticks in the background.  Each slot is
tagged with the absolute sub-window index it holds data for; expired
slots are simply excluded from reads by tag comparison and reset only
when the ring next writes into them.  Advancing the ring is therefore
O(1) regardless of how much simulated time passed since the last
touch.  Every observe / mark / read call carries an explicit ``now``
(or falls back to the newest time the instrument has seen).  A window
summary is the merge of all live sub-windows, so a reading covers at
most ``window_s`` and at least ``window_s - sub_window_s`` seconds of
history — the usual ring-buffer resolution trade.  A write stamped
before the live window (possible only if a caller passes a stale
``now``) is dropped rather than polluting a newer sub-window.

:class:`WindowedHistogram` reuses the fixed-bucket layout and
interpolated quantiles of :class:`~repro.telemetry.metrics.Histogram`
(the merge of the ring *is* a ``Histogram``), so windowed p99s are
computed by exactly the same estimator as the cumulative ones.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.telemetry.metrics import DEFAULT_BUCKETS, Histogram

__all__ = [
    "WindowPolicy",
    "WindowedHistogram",
    "WindowedRate",
    "WindowedRatio",
    "merge_window_histograms",
]


@dataclass(frozen=True)
class WindowPolicy:
    """How a telemetry plane shapes its windowed instruments.

    ``window_s`` is the sliding-window span; ``sub_windows`` the ring
    granularity (rotation happens every ``window_s / sub_windows``
    simulated seconds).  ``names`` scopes the per-span feed: ``None``
    mints a rollup for every finished span name, a frozenset restricts
    the feed to those names — spans outside the set cost one membership
    test instead of a ring write, which is what keeps ``slo=True``
    (whose engine only reads a handful of judged metrics) cheap on
    span-dense workloads.
    """

    window_s: float = 60.0
    sub_windows: int = 6
    names: Optional[frozenset] = None

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.sub_windows < 1:
            raise ValueError("sub_windows must be >= 1")
        if self.names is not None and not isinstance(self.names, frozenset):
            object.__setattr__(self, "names", frozenset(self.names))


class _WindowRing:
    """Shared epoch-aligned lazy-rotation machinery."""

    __slots__ = (
        "name",
        "node",
        "window_s",
        "sub_windows",
        "sub_window_s",
        "_head",
        "_seen",
        "_tags",
    )

    def __init__(
        self, name: str, node: str = "", window_s: float = 60.0, sub_windows: int = 6
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if sub_windows < 1:
            raise ValueError("sub_windows must be >= 1")
        self.name = name
        self.node = node
        self.window_s = float(window_s)
        self.sub_windows = int(sub_windows)
        self.sub_window_s = self.window_s / self.sub_windows
        #: Absolute index of the newest sub-window the ring has advanced
        #: to; slot ``i % sub_windows`` holds absolute sub-window ``i``.
        self._head = 0
        #: Newest simulated time this instrument has been touched with —
        #: the fallback clock for reads that pass ``now=None``.
        self._seen = 0.0
        #: Per-slot absolute sub-window index the slot's data belongs
        #: to (-1 = never written).  A slot is *live* iff its tag is
        #: within ``sub_windows`` of the head; anything older is dead
        #: weight that the next write into the slot resets.
        self._tags = [-1] * self.sub_windows

    def _slot_index(self, now: float) -> int:
        return int(now // self.sub_window_s)

    def _advance(self, now: float) -> None:
        """Rotate the ring forward to the sub-window covering ``now``.

        O(1): only the head index moves; expired slots stay untouched
        (their stale tags exclude them from reads).
        """
        if now > self._seen:
            self._seen = now
        target = self._slot_index(now)
        if target > self._head:
            self._head = target

    def _touch(self, now: float) -> Optional[int]:
        """Advance and return the writable slot for ``now``.

        Resets the slot first if it still holds an older sub-window.
        Returns None when ``now`` predates the live window entirely
        (the write would land in history the ring no longer covers).
        """
        # _advance() inlined: this runs twice per finished span.
        if now > self._seen:
            self._seen = now
        index = int(now // self.sub_window_s)
        head = self._head
        if index > head:
            self._head = index
        elif index <= head - self.sub_windows:
            return None
        slot = index % self.sub_windows
        if self._tags[slot] != index:
            self._reset_slot(slot)
            self._tags[slot] = index
        return slot

    def _live_floor(self) -> int:
        """Oldest absolute sub-window index still inside the window."""
        return self._head - self.sub_windows + 1

    def _resolve_now(self, now: Optional[float]) -> float:
        return self._seen if now is None else now

    def _window_start(self) -> float:
        """Simulated time the oldest live sub-window begins at."""
        return max(0.0, self._live_floor() * self.sub_window_s)

    # Subclasses own the slot storage.
    def _reset_slot(self, slot: int) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class WindowedHistogram(_WindowRing):
    """A ring of fixed-bucket histograms; the window merge is a Histogram.

    ``observe(value, now, ok=...)`` lands the value in the sub-window
    covering ``now``; :meth:`window` merges the live ring into a plain
    :class:`~repro.telemetry.metrics.Histogram` so quantiles use the
    exact same interpolation as the cumulative plane.

    Each observation also carries an ``ok`` flag, so the instrument
    doubles as a success-ratio window (:meth:`window_totals`) — one
    ring write per finished span covers both the latency SLO and the
    availability SLO, instead of maintaining a twin
    :class:`WindowedRatio` per (name, node).
    """

    __slots__ = (
        "bounds",
        "_width",
        "_counts",
        "_count",
        "_ok",
        "_total",
        "_vmin",
        "_vmax",
    )

    def __init__(
        self,
        name: str,
        node: str = "",
        window_s: float = 60.0,
        sub_windows: int = 6,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(name, node, window_s, sub_windows)
        if buckets is None:
            bounds = DEFAULT_BUCKETS  # known-good; skip re-validation
        else:
            bounds = tuple(buckets)
            if not bounds or list(bounds) != sorted(bounds):
                raise ValueError("bucket bounds must be non-empty and ascending")
        self.bounds = bounds
        n = self.sub_windows
        self._width = len(bounds) + 1  # +1 overflow bucket
        #: Bucket-count rows are allocated on first write to a slot —
        #: instruments are minted per (span name, node), and most of a
        #: short run's instruments never fill the whole ring.
        self._counts: list = [None] * n
        self._count = [0] * n
        self._ok = [0] * n
        self._total = [0.0] * n
        self._vmin = [float("inf")] * n
        self._vmax = [float("-inf")] * n

    def _reset_slot(self, slot: int) -> None:
        counts = self._counts[slot]
        if counts is None:
            self._counts[slot] = [0] * self._width
        else:
            for i in range(len(counts)):
                counts[i] = 0
        self._count[slot] = 0
        self._ok[slot] = 0
        self._total[slot] = 0.0
        self._vmin[slot] = float("inf")
        self._vmax[slot] = float("-inf")

    def observe(self, value: float, now: float, ok: bool = True) -> None:
        slot = self._touch(now)
        if slot is None:
            return
        self._counts[slot][bisect.bisect_left(self.bounds, value)] += 1
        self._count[slot] += 1
        if ok:
            self._ok[slot] += 1
        self._total[slot] += value
        if value < self._vmin[slot]:
            self._vmin[slot] = value
        if value > self._vmax[slot]:
            self._vmax[slot] = value

    def window_totals(self, now: Optional[float] = None) -> tuple[int, int]:
        """(ok, total) observations over the live window."""
        self._advance(self._resolve_now(now))
        floor = self._live_floor()
        ok = n = 0
        for slot in range(self.sub_windows):
            if self._tags[slot] >= floor:
                ok += self._ok[slot]
                n += self._count[slot]
        return ok, n

    def window(self, now: Optional[float] = None) -> Histogram:
        """The live window merged into one plain :class:`Histogram`."""
        self._advance(self._resolve_now(now))
        merged = Histogram(self.name, self.node, self.bounds)
        counts = merged.counts
        floor = self._live_floor()
        for slot in range(self.sub_windows):
            if self._tags[slot] < floor or not self._count[slot]:
                continue
            for i, n in enumerate(self._counts[slot]):
                counts[i] += n
            merged.count += self._count[slot]
            merged.total += self._total[slot]
            if self._vmin[slot] < merged.vmin:
                merged.vmin = self._vmin[slot]
            if self._vmax[slot] > merged.vmax:
                merged.vmax = self._vmax[slot]
        return merged

    def summary(self, now: Optional[float] = None) -> dict:
        merged = self.window(now)
        ok, n = self.window_totals(now)
        out = merged.summary()
        out["type"] = "windowed_histogram"
        out["window_s"] = self.window_s
        out["sub_windows"] = self.sub_windows
        out["ok"] = ok
        out["ratio"] = ok / n if n else 1.0
        return out

    def as_dict(self) -> dict:
        return self.summary()


class WindowedRate(_WindowRing):
    """Events per simulated second over the sliding window."""

    __slots__ = ("_events",)

    def __init__(
        self, name: str, node: str = "", window_s: float = 60.0, sub_windows: int = 6
    ) -> None:
        super().__init__(name, node, window_s, sub_windows)
        self._events = [0.0] * self.sub_windows

    def _reset_slot(self, slot: int) -> None:
        self._events[slot] = 0.0

    def inc(self, now: float, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("rates only count up within a sub-window")
        slot = self._touch(now)
        if slot is not None:
            self._events[slot] += amount

    def _live_total(self) -> float:
        floor = self._live_floor()
        return sum(
            self._events[slot]
            for slot in range(self.sub_windows)
            if self._tags[slot] >= floor
        )

    def window_total(self, now: Optional[float] = None) -> float:
        self._advance(self._resolve_now(now))
        return self._live_total()

    def rate(self, now: Optional[float] = None) -> float:
        """Events per second over the covered portion of the window.

        Early in a run the ring covers less than ``window_s`` seconds;
        the denominator is the actually-covered span so short runs do
        not under-report.
        """
        now = self._resolve_now(now)
        self._advance(now)
        covered = now - self._window_start()
        if covered <= 0.0:
            return 0.0
        return self._live_total() / covered

    def summary(self, now: Optional[float] = None) -> dict:
        now = self._resolve_now(now)
        return {
            "type": "windowed_rate",
            "window_s": self.window_s,
            "sub_windows": self.sub_windows,
            "total": self.window_total(now),
            "rate_per_s": self.rate(now),
        }

    def as_dict(self) -> dict:
        return self.summary()


class WindowedRatio(_WindowRing):
    """Success ratio (ok / total) over the sliding window.

    An empty window reads as ratio 1.0 — "no evidence of failure" —
    but exports its sample count so consumers (the SLO engine) can
    require a minimum population before judging it.
    """

    __slots__ = ("_ok", "_n")

    def __init__(
        self, name: str, node: str = "", window_s: float = 60.0, sub_windows: int = 6
    ) -> None:
        super().__init__(name, node, window_s, sub_windows)
        self._ok = [0] * self.sub_windows
        self._n = [0] * self.sub_windows

    def _reset_slot(self, slot: int) -> None:
        self._ok[slot] = 0
        self._n[slot] = 0

    def mark(self, now: float, ok: bool = True) -> None:
        slot = self._touch(now)
        if slot is None:
            return
        self._n[slot] += 1
        if ok:
            self._ok[slot] += 1

    def window_totals(self, now: Optional[float] = None) -> tuple[int, int]:
        """(ok, total) over the live window."""
        self._advance(self._resolve_now(now))
        floor = self._live_floor()
        ok = n = 0
        for slot in range(self.sub_windows):
            if self._tags[slot] >= floor:
                ok += self._ok[slot]
                n += self._n[slot]
        return ok, n

    def ratio(self, now: Optional[float] = None) -> float:
        ok, n = self.window_totals(now)
        return ok / n if n else 1.0

    def summary(self, now: Optional[float] = None) -> dict:
        ok, n = self.window_totals(self._resolve_now(now))
        return {
            "type": "windowed_ratio",
            "window_s": self.window_s,
            "sub_windows": self.sub_windows,
            "ok": ok,
            "total": n,
            "ratio": ok / n if n else 1.0,
        }

    def as_dict(self) -> dict:
        return self.summary()


def merge_window_histograms(
    instruments: Sequence[WindowedHistogram], now: Optional[float] = None
) -> Histogram:
    """Merge several nodes' windowed histograms into one Histogram.

    All instruments must share a bucket layout (they do when minted by
    one :class:`~repro.telemetry.metrics.MetricsRegistry`).  This is how
    a cluster-wide windowed p99 is computed from per-node rollups.
    """
    if not instruments:
        return Histogram("merged")
    merged = Histogram(instruments[0].name, "", instruments[0].bounds)
    for wh in instruments:
        if wh.bounds != merged.bounds:
            raise ValueError("cannot merge windowed histograms with different buckets")
        part = wh.window(now)
        for i, n in enumerate(part.counts):
            merged.counts[i] += n
        merged.count += part.count
        merged.total += part.total
        if part.vmin < merged.vmin:
            merged.vmin = part.vmin
        if part.vmax > merged.vmax:
            merged.vmax = part.vmax
    return merged
