"""Causal spans: the per-request trace tree.

A *span* is one timed piece of work in one layer on one node — a
XenSocket command push, a DHT forward hop, a service execution, an S3
download.  Spans carry a trace id (one per top-level operation), their
own span id, and their parent's span id, so a whole `StoreObject` /
`FetchObject` / `Process` request reconstructs as a tree: which layer
was on the critical path, and for how much simulated time.

Design constraints (see docs/OBSERVABILITY.md):

* **Off by default, guarded emit.**  Layers hold no telemetry state;
  they read ``sim.telemetry`` (``None`` unless a :class:`Telemetry` was
  attached) and skip all span work behind a single ``is not None``
  check.  Disabled runs execute byte-identical simulated behaviour —
  instrumentation adds *no* simulated time and adds *no* keys to RPC
  bodies when off.
* **Explicit context propagation.**  The simulator interleaves many
  generator processes, so there is no ambient "current span"; parent
  context travels as an explicit ``ctx`` argument through ``yield
  from`` chains and as a small ``{"t": trace_id, "s": span_id}`` dict
  inside RPC bodies when a request hops to another node.
* **Deterministic ids.**  Span ids come from a private counter in
  operation order; the simulation itself is deterministic, so two runs
  of the same scenario produce identical span trees (the fast path
  included).  Per-worker traces from :mod:`repro.parallel` merge with
  :func:`repro.telemetry.export.merge_span_dumps`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.telemetry.metrics import MetricsRegistry

__all__ = ["Span", "SpanContext", "Telemetry", "wire_ctx"]


def wire_ctx(ctx) -> Optional[dict]:
    """The compact RPC-body dict for any context form.

    Accepts a :class:`Span`, a :class:`SpanContext`, an already-wire
    dict, or None — the same forms :meth:`Telemetry.begin` takes as
    ``parent`` — so layers can re-propagate whatever they were handed.
    """
    if ctx is None:
        return None
    if isinstance(ctx, dict):
        return ctx
    return {"t": ctx.trace_id, "s": ctx.span_id}


@dataclass(frozen=True)
class SpanContext:
    """The (trace id, span id) pair a child span attaches under."""

    trace_id: int
    span_id: int

    def wire(self) -> dict:
        """Compact dict form carried inside RPC bodies."""
        return {"t": self.trace_id, "s": self.span_id}

    @classmethod
    def from_wire(cls, data: Optional[dict]) -> Optional["SpanContext"]:
        if data is None:
            return None
        return cls(trace_id=data["t"], span_id=data["s"])


@dataclass
class Span:
    """One timed, attributed piece of work in the span tree."""

    trace_id: int
    span_id: int
    parent_id: Optional[int]
    name: str
    layer: str
    node: str
    start: float
    end: Optional[float] = None
    status: str = "ok"
    attrs: dict = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration_s(self) -> float:
        """Simulated duration (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def ctx_wire(self) -> dict:
        """Wire form for RPC bodies (see :meth:`SpanContext.wire`)."""
        return {"t": self.trace_id, "s": self.span_id}

    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "layer": self.layer,
            "node": self.node,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(
            trace_id=data["trace_id"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            name=data["name"],
            layer=data["layer"],
            node=data.get("node", ""),
            start=data["start"],
            end=data.get("end"),
            status=data.get("status", "ok"),
            attrs=dict(data.get("attrs", {})),
        )


class Telemetry:
    """The per-simulation telemetry plane: spans plus a metrics registry.

    Attach one to a simulator (``Telemetry(sim).attach()`` or
    ``ClusterConfig(telemetry=True)``) and every instrumented layer
    starts emitting spans; leave it off and the layers' guards make the
    whole plane a no-op.

    Parameters
    ----------
    sim:
        The simulator whose clock timestamps spans.
    max_spans:
        Optional bound on retained spans; the oldest are dropped (and
        counted in ``dropped``) once exceeded.  Unbounded by default —
        report runs are short; long soak runs should bound this.
    record_span_metrics:
        When True (default), every finished span feeds a latency
        histogram named after the span under node ``span.node`` in
        :attr:`metrics` — the bridge between the trace plane and the
        metrics plane.
    windowed:
        Optional :class:`~repro.telemetry.timeseries.WindowPolicy`.
        When set, every finished span *also* feeds a per-``(name,
        node)`` sliding-window histogram (which carries latency *and*
        success counts — see ``WindowedHistogram.window_totals``) in
        :attr:`metrics` — the live view the SLO engine and health
        scoreboard read.  A policy with ``names`` set scopes the feed
        to those span names.  ``None`` (default) keeps the windowed
        plane entirely unallocated.
    """

    def __init__(
        self,
        sim,
        max_spans: Optional[int] = None,
        record_span_metrics: bool = True,
        windowed=None,
    ) -> None:
        if max_spans is not None and max_spans <= 0:
            raise ValueError("max_spans must be positive")
        self.sim = sim
        self.max_spans = max_spans
        self.record_span_metrics = record_span_metrics
        self.windowed = windowed
        self.spans: list[Span] = []
        self.dropped = 0
        self.metrics = MetricsRegistry()
        self._ids = itertools.count(1)
        #: Callables invoked with every *finished* span (ends, fails,
        #: and instant events).  Guarded: a raising subscriber is
        #: dropped, never the simulation.  Nothing in the stock stack
        #: subscribes on the hot path — the flight recorder reads the
        #: retained span list at dump time instead.
        self._subscribers: list = []
        #: (name, node) -> WindowedHistogram — skips the registry's
        #: get-or-create on the per-span hot path.
        self._windowed_cache: dict = {}

    # -- lifecycle ---------------------------------------------------------

    def attach(self) -> "Telemetry":
        """Make this the simulator's telemetry plane; returns self."""
        self.sim.telemetry = self
        return self

    def detach(self) -> None:
        if getattr(self.sim, "telemetry", None) is self:
            self.sim.telemetry = None

    # -- subscribers -------------------------------------------------------

    def subscribe(self, fn) -> None:
        """Call ``fn(span)`` for every finished span from now on."""
        self._subscribers.append(fn)

    def unsubscribe(self, fn) -> None:
        if fn in self._subscribers:
            self._subscribers.remove(fn)

    def _notify(self, span: Span) -> None:
        if not self._subscribers:
            return
        for fn in list(self._subscribers):
            try:
                fn(span)
            except Exception:
                # A broken subscriber must never take down the
                # simulation; evict it (same contract as Tracer).
                self.unsubscribe(fn)

    # -- span emission -----------------------------------------------------

    def begin(
        self,
        name: str,
        layer: str,
        node: str,
        parent: "Span | SpanContext | dict | None" = None,
        **attrs: Any,
    ) -> Span:
        """Open a span at the current simulated time.

        ``parent`` may be another :class:`Span`, a :class:`SpanContext`,
        the compact wire dict an RPC body carries, or ``None`` — in
        which case this span roots a brand-new trace.
        """
        span_id = next(self._ids)
        trace_id, parent_id = self._resolve_parent(parent, span_id)
        span = Span(
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            layer=layer,
            node=node,
            start=self.sim.now,
            attrs=attrs,
        )
        self._retain(span)
        return span

    def event(
        self,
        name: str,
        layer: str,
        node: str,
        parent: "Span | SpanContext | dict | None" = None,
        status: str = "ok",
        **attrs: Any,
    ) -> Span:
        """Emit an instant span: zero duration, already closed.

        Used for point-in-time facts (an SLO alert firing, a breaker
        tripping) that belong in the trace stream but are not timed
        work — so they do *not* feed the latency histograms or the
        windowed rollups.
        """
        span_id = next(self._ids)
        trace_id, parent_id = self._resolve_parent(parent, span_id)
        now = self.sim.now
        span = Span(
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            layer=layer,
            node=node,
            start=now,
            end=now,
            status=status,
            attrs=attrs,
        )
        self._retain(span)
        if self._subscribers:
            self._notify(span)
        return span

    @staticmethod
    def _resolve_parent(parent, span_id: int) -> tuple[int, Optional[int]]:
        if parent is None:
            return span_id, None
        if isinstance(parent, (Span, SpanContext)):
            return parent.trace_id, parent.span_id
        return parent["t"], parent["s"]  # wire dict from an RPC body

    def _retain(self, span: Span) -> None:
        if self.max_spans is not None and len(self.spans) >= self.max_spans:
            del self.spans[0]
            self.dropped += 1
        self.spans.append(span)

    def end(self, span: Span, status: str = "ok", **attrs: Any) -> Span:
        """Close a span at the current simulated time."""
        span.end = self.sim.now
        span.status = status
        if attrs:
            span.attrs.update(attrs)
        if self.record_span_metrics:
            self.metrics.histogram(span.name, node=span.node).observe(
                span.end - span.start
            )
            if status != "ok":
                self.metrics.counter(f"{span.name}.errors", node=span.node).inc()
        policy = self.windowed
        if policy is not None and (policy.names is None or span.name in policy.names):
            key = (span.name, span.node)
            rollup = self._windowed_cache.get(key)
            if rollup is None:
                rollup = self._windowed_cache[key] = self.metrics.windowed_histogram(
                    span.name,
                    node=span.node,
                    window_s=policy.window_s,
                    sub_windows=policy.sub_windows,
                )
            rollup.observe(span.end - span.start, now=span.end, ok=(status == "ok"))
        if self._subscribers:
            self._notify(span)
        return span

    def fail(self, span: Span, exc: BaseException, **attrs: Any) -> Span:
        """Close a span with an error status derived from ``exc``."""
        return self.end(span, status=f"error:{type(exc).__name__}", **attrs)

    def wrap(self, span: Span, generator):
        """Run a process generator under ``span``, ending it either way.

        Usage (inside a simulation process)::

            result = yield from tel.wrap(span, node.fetch_object(name, ctx=span))
        """
        try:
            result = yield from generator
        except BaseException as exc:
            self.fail(span, exc)
            raise
        self.end(span)
        return result

    # -- querying ----------------------------------------------------------

    def traces(self) -> dict[int, list[Span]]:
        """Spans grouped by trace id, in emission order."""
        out: dict[int, list[Span]] = {}
        for span in self.spans:
            out.setdefault(span.trace_id, []).append(span)
        return out

    def roots(self) -> list[Span]:
        """Top-level spans (one per traced operation)."""
        return [s for s in self.spans if s.parent_id is None]

    def children_of(self, span: Span) -> list[Span]:
        return [
            s
            for s in self.spans
            if s.trace_id == span.trace_id and s.parent_id == span.span_id
        ]

    def clear(self) -> None:
        self.spans.clear()
        self.dropped = 0
