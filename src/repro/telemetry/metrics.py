"""The metrics plane: named counters, gauges, and histograms.

Every instrument is registered under a ``(name, node)`` pair in one
:class:`MetricsRegistry` — ``name`` follows the ``layer.operation``
scheme the span plane uses (``kv.get``, ``xensocket.transfer``,
``cloud.fetch``), ``node`` is the device it happened on (empty for
cluster-wide instruments).  Histograms use fixed bucket boundaries and
report p50/p95/p99 by bucket interpolation, so memory stays constant no
matter how many observations arrive.

The registry also supersedes the ad-hoc per-layer stats structs:
:meth:`MetricsRegistry.ingest_kvstats` maps a
:meth:`repro.kvstore.KvStats.snapshot` export onto registry instruments
(the compatibility shim — `KvStats` keeps working unchanged for
existing callers while the metrics plane reads it uniformly).
"""

from __future__ import annotations

import bisect
from typing import Optional, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS"]

#: Default latency buckets (seconds): 100 µs .. ~40 min, roughly 3 per
#: decade, matching the simulated operation range (ms XenSocket pushes
#: up to multi-minute 100 MB cloud transfers).  The top decade
#: (500/1000/2500 s) covers the queueing tail seen when driving
#: 10k-node overlays past saturation — without it, everything past
#: 250 s lands in the overflow bucket and the p99/p999 estimates
#: degrade to the observed max.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
    2500.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "node", "value")

    def __init__(self, name: str, node: str = "") -> None:
        self.name = name
        self.node = node
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def as_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that goes up and down (queue depth, free MB, load)."""

    __slots__ = ("name", "node", "value")

    def __init__(self, name: str, node: str = "") -> None:
        self.name = name
        self.node = node
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += amount

    def as_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram with interpolated quantile summaries.

    ``bounds`` are upper bucket edges (ascending); one overflow bucket
    catches everything above the last edge.  Count, sum, min, and max
    are exact; quantiles interpolate linearly inside the containing
    bucket (the standard Prometheus-style estimate).
    """

    __slots__ = ("name", "node", "bounds", "counts", "count", "total", "vmin", "vmax")

    def __init__(
        self,
        name: str,
        node: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("bucket bounds must be non-empty and ascending")
        self.name = name
        self.node = node
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 overflow bucket
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Interpolated q-quantile (0 <= q <= 1); 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if seen + n >= rank:
                lo = self.bounds[i - 1] if i > 0 else min(self.vmin, self.bounds[0])
                hi = self.bounds[i] if i < len(self.bounds) else self.vmax
                lo = max(lo, self.vmin)
                hi = min(hi, self.vmax)
                if hi <= lo or n == 0:
                    return hi
                # Linear interpolation within the containing bucket.
                fraction = (rank - seen) / n
                return lo + fraction * (hi - lo)
            seen += n
        return self.vmax

    @property
    def overflow(self) -> int:
        """Observations above the last bucket edge.

        These are counted explicitly (and exported by :meth:`summary`)
        rather than silently clamped: a nonzero overflow count means
        the bucket layout no longer covers the observed range and the
        upper quantiles are interpolating against the raw max.
        """
        return self.counts[-1]

    def summary(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "mean": self.mean,
            "min": self.vmin if self.count else 0.0,
            "max": self.vmax if self.count else 0.0,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "p999": self.quantile(0.999),
            "overflow": self.overflow,
        }

    def as_dict(self) -> dict:
        return self.summary()


class MetricsRegistry:
    """All instruments for one deployment, keyed by (name, node)."""

    def __init__(self) -> None:
        self._counters: dict[tuple[str, str], Counter] = {}
        self._gauges: dict[tuple[str, str], Gauge] = {}
        self._histograms: dict[tuple[str, str], Histogram] = {}
        # Windowed rollups (see repro.telemetry.timeseries), keyed the
        # same way; created on demand so runs without windowed_metrics
        # pay nothing.
        self._windowed_histograms: dict = {}
        self._windowed_rates: dict = {}
        self._windowed_ratios: dict = {}

    # -- instrument accessors (get-or-create) ------------------------------

    def counter(self, name: str, node: str = "") -> Counter:
        key = (name, node)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, node)
        return instrument

    def gauge(self, name: str, node: str = "") -> Gauge:
        key = (name, node)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, node)
        return instrument

    def histogram(
        self, name: str, node: str = "", buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        key = (name, node)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(name, node, buckets)
        return instrument

    # -- windowed rollups (get-or-create) ----------------------------------

    def windowed_histogram(
        self,
        name: str,
        node: str = "",
        window_s: float = 60.0,
        sub_windows: int = 6,
        buckets: Optional[Sequence[float]] = None,
    ):
        """Get-or-create a sliding-window latency histogram rollup."""
        from repro.telemetry.timeseries import WindowedHistogram

        key = (name, node)
        instrument = self._windowed_histograms.get(key)
        if instrument is None:
            instrument = self._windowed_histograms[key] = WindowedHistogram(
                name, node, window_s=window_s, sub_windows=sub_windows, buckets=buckets
            )
        return instrument

    def windowed_rate(
        self, name: str, node: str = "", window_s: float = 60.0, sub_windows: int = 6
    ):
        """Get-or-create a sliding-window event-rate rollup."""
        from repro.telemetry.timeseries import WindowedRate

        key = (name, node)
        instrument = self._windowed_rates.get(key)
        if instrument is None:
            instrument = self._windowed_rates[key] = WindowedRate(
                name, node, window_s=window_s, sub_windows=sub_windows
            )
        return instrument

    def windowed_ratio(
        self, name: str, node: str = "", window_s: float = 60.0, sub_windows: int = 6
    ):
        """Get-or-create a sliding-window success-ratio rollup."""
        from repro.telemetry.timeseries import WindowedRatio

        key = (name, node)
        instrument = self._windowed_ratios.get(key)
        if instrument is None:
            instrument = self._windowed_ratios[key] = WindowedRatio(
                name, node, window_s=window_s, sub_windows=sub_windows
            )
        return instrument

    def windowed_histograms_for(self, name: str) -> list:
        """Every node's windowed histogram under ``name`` (sorted by node)."""
        return [
            inst
            for (n, _node), inst in sorted(self._windowed_histograms.items())
            if n == name
        ]

    def windowed_rates_for(self, name: str) -> list:
        return [
            inst for (n, _node), inst in sorted(self._windowed_rates.items()) if n == name
        ]

    def windowed_ratios_for(self, name: str) -> list:
        return [
            inst for (n, _node), inst in sorted(self._windowed_ratios.items()) if n == name
        ]

    def counter_items(self) -> list:
        """Every counter as ((name, node), Counter), sorted by key."""
        return sorted(self._counters.items())

    def peek_windowed_histogram(self, name: str, node: str = ""):
        """The windowed histogram under (name, node), or None (no create)."""
        return self._windowed_histograms.get((name, node))

    def windowed_ratios_on(self, node: str) -> list:
        """Every windowed ratio living on ``node`` (sorted by name)."""
        return [
            inst
            for (_name, inode), inst in sorted(self._windowed_ratios.items())
            if inode == node
        ]

    def windowed_histograms_on(self, node: str) -> list:
        """Every windowed histogram living on ``node`` (sorted by name)."""
        return [
            inst
            for (_name, inode), inst in sorted(self._windowed_histograms.items())
            if inode == node
        ]

    # -- KvStats compatibility shim ----------------------------------------

    def ingest_kvstats(self, node: str, stats) -> None:
        """Map one node's ``KvStats.snapshot()`` onto registry instruments.

        Counters become registry counters (set to the current running
        totals), the exact lookup mean becomes a gauge, and the windowed
        lookup quantiles become gauges under ``kv.lookup.*`` — so code
        that still mutates :class:`~repro.kvstore.DhtKeyValueStore`
        stats directly shows up in the unified metrics plane.
        """
        snapshot = stats.snapshot()
        for key, value in snapshot["counters"].items():
            counter = self.counter(f"kv.{key}", node=node)
            counter.value = float(value)
        self.gauge("kv.lookup.mean_s", node=node).set(snapshot["lookup_mean_s"])
        window = snapshot["lookup_window"]
        self.gauge("kv.lookup.window_n", node=node).set(window["n"])
        for q in ("p50", "p95", "p99", "p999"):
            if q in window:
                self.gauge(f"kv.lookup.window_{q}_s", node=node).set(window[q])

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready nested export: name -> node -> instrument dict."""
        out: dict[str, dict] = {}
        # Windowed rollups share names with their cumulative twins
        # (``kv.get`` the run-long histogram vs ``kv.get`` the last 60 s),
        # so they export under a ``.window*`` suffix.
        stores = (
            (self._counters, ""),
            (self._gauges, ""),
            (self._histograms, ""),
            (self._windowed_histograms, ".window"),
            (self._windowed_rates, ".window.rate"),
            (self._windowed_ratios, ".window.ratio"),
        )
        for store, suffix in stores:
            for (name, node), instrument in sorted(store.items()):
                out.setdefault(name + suffix, {})[node] = instrument.as_dict()
        return out

    def names(self) -> list[str]:
        keys = set()
        stores = (
            (self._counters, ""),
            (self._gauges, ""),
            (self._histograms, ""),
            (self._windowed_histograms, ".window"),
            (self._windowed_rates, ".window.rate"),
            (self._windowed_ratios, ".window.ratio"),
        )
        for store, suffix in stores:
            keys.update(name + suffix for name, _node in store)
        return sorted(keys)
