"""Bounded per-node flight recorders: the post-incident black box.

Each node's dump carries a small ring of its most recent telemetry —
finished spans (including instant events), SLO alerts, and per-dump
metric deltas — so that when something goes wrong there is a bounded
record of *what the node was doing right before*.

The span portion costs **nothing per span**: the telemetry plane
already retains every span (:attr:`Telemetry.spans`), so the hub reads
each node's tail of that list at dump time instead of subscribing to
the finished-span stream and copying spans into rings as they happen.
Dumps are rare (a firing alert, an assert-clean failure, scenario
end); the hot path is every span, so the pass-over-retained-spans cost
lands on the right side.  When ``Telemetry.max_spans`` bounds
retention, recorder coverage is bounded by the same horizon.  Alerts
and metric deltas *are* pushed into per-node rings eagerly — they are
rare and would otherwise be lost.

A :class:`RecorderHub` owns one :class:`FlightRecorder` per node and
can be wired as an :meth:`SloEngine.on_alert` hook so a firing alert
snapshots every ring to a JSON artifact automatically.  The ``chaos
--assert-clean`` CLI does the same on failure.

Dumps follow the versioned ``c4h.flightrec/1`` schema validated by
:func:`validate_recorder_dump` — the same pattern as
:func:`~repro.telemetry.export.validate_chrome_trace` — so CI can
assert artifacts stay loadable.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Optional

__all__ = [
    "FlightRecorder",
    "RecorderHub",
    "validate_recorder_dump",
    "RECORDER_SCHEMA",
]

#: Dump schema identifier; bump on breaking layout changes.
RECORDER_SCHEMA = "c4h.flightrec/1"

#: Entry kinds a ring may hold.
_KINDS = ("span", "alert", "metric")


class FlightRecorder:
    """One node's bounded ring of recent telemetry entries."""

    def __init__(self, node: str, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.node = node
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self.recorded = 0
        self.dropped = 0

    def record(self, kind: str, at: float, data) -> None:
        """Append one entry.  ``data`` is a dict, or any object with an
        ``as_dict()`` — materialized lazily at read time so the per-span
        hot path never allocates a dict for an entry that the ring may
        evict unread."""
        if kind not in _KINDS:
            raise ValueError(f"unknown recorder entry kind: {kind!r}")
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append((kind, at, data))
        self.recorded += 1

    def record_span(self, span) -> None:
        at = span.end if span.end is not None else span.start
        self.record("span", at, span)

    def record_alert(self, alert) -> None:
        self.record("alert", alert.at, alert)

    def entries(self) -> list[dict]:
        return [
            {
                "kind": kind,
                "at": at,
                "data": data if isinstance(data, dict) else data.as_dict(),
            }
            for kind, at, data in self._ring
        ]

    def as_dict(self, span_tail=(), spans_seen: int = 0) -> dict:
        """Ring snapshot, JSON-ready.

        ``span_tail`` is this node's newest-last finished spans, read
        from the telemetry plane at dump time (see the module
        docstring); they merge with the explicitly recorded entries in
        time order and the result is truncated to ``capacity``.
        ``spans_seen`` is the node's total finished-span count, feeding
        the recorded/dropped accounting the dump schema requires.
        """
        merged = [("span", span.end, span) for span in span_tail]
        merged.extend(self._ring)
        merged.sort(key=lambda entry: entry[1])
        overflow = len(merged) - self.capacity
        if overflow > 0:
            merged = merged[overflow:]
        else:
            overflow = 0
        return {
            "node": self.node,
            "capacity": self.capacity,
            "recorded": self.recorded + spans_seen,
            "dropped": self.dropped + (spans_seen - len(span_tail)) + overflow,
            "entries": [
                {
                    "kind": kind,
                    "at": at,
                    "data": data if isinstance(data, dict) else data.as_dict(),
                }
                for kind, at, data in merged
            ],
        }

    def clear(self) -> None:
        self._ring.clear()
        self.recorded = 0
        self.dropped = 0


class RecorderHub:
    """All nodes' flight recorders plus the dump machinery.

    Parameters
    ----------
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`; when given, each
        dump includes every node's tail of the plane's retained span
        list — read at dump time, never copied per span.
    metrics:
        Optional :class:`~repro.telemetry.MetricsRegistry`; when given,
        each dump embeds the counter *deltas* since the previous dump
        (what changed, not the run-long totals).
    capacity:
        Ring size per node.
    dump_dir:
        When set, a firing alert delivered via :meth:`alert_hook`
        writes a dump artifact here automatically.
    """

    def __init__(
        self,
        telemetry=None,
        metrics=None,
        capacity: int = 256,
        dump_dir: Optional[str] = None,
    ) -> None:
        self.telemetry = telemetry
        self.metrics = metrics
        self.capacity = capacity
        self.dump_dir = dump_dir
        self.dumps: list[dict] = []
        self.dump_paths: list[str] = []
        self._recorders: dict[str, FlightRecorder] = {}
        self._last_counters: dict[tuple[str, str], float] = {}

    # -- recording ---------------------------------------------------------

    def recorder(self, node: str) -> FlightRecorder:
        rec = self._recorders.get(node)
        if rec is None:
            rec = self._recorders[node] = FlightRecorder(node, self.capacity)
        return rec

    def nodes(self) -> list[str]:
        return sorted(self._recorders)

    def record_alert(self, alert) -> None:
        self.recorder(alert.node).record_alert(alert)

    def alert_hook(self, alert) -> None:
        """An :meth:`SloEngine.on_alert` hook: record, and dump on firing."""
        self.record_alert(alert)
        if alert.state == "firing" and self.dump_dir is not None:
            self.dump(
                now=alert.at,
                reason=f"alert:{alert.slo_id}",
                directory=self.dump_dir,
            )

    # -- dumping -----------------------------------------------------------

    def _span_tails(self) -> tuple[dict, dict]:
        """Per-node span tails from the telemetry plane's retained list.

        Returns ``(tails, seen)``: each node's newest ``capacity``
        finished spans (oldest first) and its total finished-span
        count.  One pass over the retained spans, paid only when a
        dump actually happens.
        """
        tails: dict[str, deque] = {}
        seen: dict[str, int] = {}
        if self.telemetry is None:
            return tails, seen
        capacity = self.capacity
        for span in self.telemetry.spans:
            if span.end is None:
                continue
            node = span.node
            tail = tails.get(node)
            if tail is None:
                tail = tails[node] = deque(maxlen=capacity)
                seen[node] = 0
            tail.append(span)
            seen[node] += 1
        return tails, seen

    def _counter_deltas(self) -> dict:
        """name -> node -> counter increase since the previous dump."""
        if self.metrics is None:
            return {}
        deltas: dict[str, dict] = {}
        for (name, node), counter in self.metrics.counter_items():
            prev = self._last_counters.get((name, node), 0.0)
            delta = counter.value - prev
            self._last_counters[(name, node)] = counter.value
            if delta:
                deltas.setdefault(name, {})[node] = delta
        return deltas

    def dump(
        self,
        now: float,
        reason: str,
        directory: Optional[str] = None,
    ) -> dict:
        """Snapshot every ring (plus metric deltas) into one dump dict.

        When ``directory`` is given (or the hub was built with
        ``dump_dir``) the dump is also written to
        ``flightrec-<seq>.json`` there and the path recorded in
        :attr:`dump_paths`.
        """
        if directory is None:
            directory = self.dump_dir
        deltas = self._counter_deltas()
        # Each node's ring gets its own slice of the deltas — the ring
        # stays self-contained when a single node's dump is inspected.
        per_node: dict[str, dict] = {}
        for name, nodes in deltas.items():
            for node, value in nodes.items():
                per_node.setdefault(node, {})[name] = value
        for node, node_deltas in sorted(per_node.items()):
            self.recorder(node).record("metric", now, {"deltas": node_deltas})
        tails, seen = self._span_tails()
        data = {
            "schema": RECORDER_SCHEMA,
            "at": now,
            "reason": reason,
            "counter_deltas": deltas,
            "nodes": {
                node: self.recorder(node).as_dict(
                    span_tail=tails.get(node, ()), spans_seen=seen.get(node, 0)
                )
                for node in sorted(set(self._recorders) | set(tails))
            },
        }
        self.dumps.append(data)
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            path = os.path.join(
                directory, f"flightrec-{len(self.dumps) - 1:03d}.json"
            )
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(data, fh, indent=1, sort_keys=True)
            self.dump_paths.append(path)
        return data


def validate_recorder_dump(data: dict) -> int:
    """Validate one flight-recorder dump; returns its total entry count.

    Raises :class:`ValueError` on any structural problem — CI runs this
    over every artifact a chaos failure or firing alert produces.
    """
    if not isinstance(data, dict):
        raise ValueError("dump must be a JSON object")
    if data.get("schema") != RECORDER_SCHEMA:
        raise ValueError(f"unknown dump schema: {data.get('schema')!r}")
    for key in ("at", "reason", "counter_deltas", "nodes"):
        if key not in data:
            raise ValueError(f"dump missing key: {key!r}")
    if not isinstance(data["nodes"], dict):
        raise ValueError("dump 'nodes' must be an object")
    total = 0
    for node, rec in data["nodes"].items():
        for key in ("node", "capacity", "recorded", "dropped", "entries"):
            if key not in rec:
                raise ValueError(f"recorder for {node!r} missing key: {key!r}")
        if rec["node"] != node:
            raise ValueError(f"recorder node mismatch: {rec['node']!r} under {node!r}")
        entries = rec["entries"]
        if len(entries) > rec["capacity"]:
            raise ValueError(f"recorder for {node!r} overflows its capacity")
        if rec["recorded"] < len(entries) or rec["dropped"] < 0:
            raise ValueError(f"recorder for {node!r} has inconsistent accounting")
        last_at = None
        for entry in entries:
            if entry.get("kind") not in _KINDS:
                raise ValueError(f"bad entry kind in {node!r}: {entry.get('kind')!r}")
            at = entry.get("at")
            if not isinstance(at, (int, float)):
                raise ValueError(f"entry in {node!r} missing numeric 'at'")
            if last_at is not None and at < last_at:
                raise ValueError(f"entries in {node!r} are not time-ordered")
            last_at = at
            if not isinstance(entry.get("data"), dict):
                raise ValueError(f"entry in {node!r} missing 'data' object")
            total += 1
    return total
