"""Exception types for the resilience layer.

Both errors deliberately subclass the network-substrate exceptions that
existing call sites already handle: a peer behind an open circuit
breaker *is* unreachable as far as the caller is concerned
(:class:`HostDownError`), and an exhausted retry deadline *is* a
timeout (:class:`RpcTimeoutError`).  Code written before the resilience
layer existed — ``except (HostDownError, RpcTimeoutError,
RemoteError)`` — therefore keeps working unchanged when the layer is
switched on.
"""

from __future__ import annotations

from repro.net import HostDownError, RpcTimeoutError

__all__ = ["CircuitOpenError", "DeadlineExceededError"]


class CircuitOpenError(HostDownError):
    """The local circuit breaker refuses calls to this peer.

    Raised *without* touching the network: the peer failed repeatedly
    in the recent past and its breaker has not cooled down yet.
    """

    def __init__(self, peer: str, retry_at: float) -> None:
        # HostDownError.__init__ sets .host and a generic message;
        # override the message with the breaker-specific one.
        super().__init__(peer)
        self.args = (
            f"circuit for peer {peer!r} is open (half-opens at "
            f"t={retry_at:g})",
        )
        self.retry_at = retry_at


class DeadlineExceededError(RpcTimeoutError):
    """The operation's total retry/deadline budget ran out."""

    def __init__(self, dst: str, msg_type: str, deadline_s: float) -> None:
        super().__init__(dst, msg_type, deadline_s)
        self.args = (
            f"rpc {msg_type!r} to {dst!r} exhausted its {deadline_s:g}s "
            "deadline budget (including retries)",
        )
