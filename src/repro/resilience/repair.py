"""Background re-replication of under-replicated object payloads.

Metadata heals itself (the KV store promotes replicas and re-pushes on
churn), but after a holder crashes an object's *payload* copies stay
one short until someone notices.  The :class:`Repairer` is that
someone: each node runs one, and on a fixed period it walks the object
metadata it *owns* (records in its KV primary map named ``object:*`` —
ownership makes the sweep naturally partitioned, each object is
repaired by exactly one live node) and for every object:

1. **probes** the recorded holders (primary + replicas) with a cheap
   ``vstore.ping``, treating breaker-open peers as down without
   touching the network;
2. **promotes** a live replica to primary when the primary is dead
   (or falls back to the object's cloud copy when no home copy
   survives);
3. **re-replicates** from a live holder to freshly chosen peers until
   the object is back to ``1 + data_replicas`` home copies (the holder
   reads the payload from disk once and pushes each copy), spilling to
   nothing — never to the cloud — because the cloud copy, when present,
   already provides the durability backstop;
4. **republishes** the updated metadata.

Every action lands in the ``repairs`` log (and on
``resilience.repair.*`` counters when metrics are attached), which the
chaos proofs assert on: after a crash schedule, the log must be
non-empty and the final metadata fully replicated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.kvstore.errors import KvError
from repro.monitoring import DecisionPolicy
from repro.net import HostDownError, NetworkError, RemoteError, RpcTimeoutError
from repro.resilience.retry import ResilientCaller
from repro.sim import Interrupt
from repro.vstore.errors import VStoreError
from repro.vstore.node import MSG_PING, MSG_REPLICATE, object_key
from repro.vstore.objects import LOCATION_REMOTE, ObjectMeta
from repro.vstore.striping import StripingPolicy, chunk_name, plan_chunk_placement

__all__ = ["Repairer", "RepairAction"]

PING_TIMEOUT_S = 10.0
REPLICATE_TIMEOUT_S = 600.0


@dataclass
class RepairAction:
    """One repair the sweeper performed (post-mortem log entry)."""

    at: float
    object: str
    #: "replicate" | "promote" | "promote-cloud" | "lost" | "rebuild"
    #: | "reattach" (a pruned holder returned with its payload intact)
    action: str
    detail: str = ""
    nodes: list[str] = field(default_factory=list)


class Repairer:
    """Periodic payload-redundancy sweeper for one node's owned objects."""

    def __init__(
        self,
        vstore,
        data_replicas: int = 2,
        period_s: float = 30.0,
        caller: Optional[ResilientCaller] = None,
        metrics=None,
        track_lost: bool = False,
    ) -> None:
        if data_replicas < 0:
            raise ValueError("data_replicas must be >= 0")
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.vstore = vstore
        self.data_replicas = data_replicas
        self.period_s = period_s
        self.caller = caller
        self.metrics = metrics
        #: Remember pruned holders in ``meta.lost_replicas`` and probe
        #: them on later sweeps — on durable-storage deployments a
        #: crashed holder can come back *with its payload*, and
        #: reattaching it costs one ping instead of a full re-copy.
        self.track_lost = track_lost
        self.repairs: list[RepairAction] = []
        self.scans = 0
        self._process = None

    # -- lifecycle (same shape as ResourceMonitor) ---------------------------

    @property
    def sim(self):
        return self.vstore.sim

    @property
    def name(self) -> str:
        return self.vstore.name

    @property
    def running(self) -> bool:
        return self._process is not None and self._process.is_alive

    def start(self) -> None:
        if not self.running:
            self._process = self.sim.process(self._run())

    def stop(self) -> None:
        if self.running:
            self._process.interrupt("repairer stopped")
        self._process = None

    def _run(self):
        try:
            while True:
                yield self.sim.timeout(self.period_s)
                try:
                    yield from self.scan_once()
                except (NetworkError, KvError, VStoreError):
                    # Transient churn mid-sweep; next period retries.
                    pass
        except Interrupt:
            return

    def _count(self, metric: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(metric, node=self.name).inc()

    def _log(self, action: str, obj: str, detail: str, nodes: list[str]) -> None:
        self.repairs.append(
            RepairAction(self.sim.now, obj, action, detail, nodes)
        )
        self._count(f"resilience.repair.{action.replace('-', '_')}")

    # -- the sweep -----------------------------------------------------------

    def scan_once(self):
        """Process: check and repair every object this node owns.

        Returns the number of repair actions performed.
        """
        self.scans += 1
        self._count("resilience.repair.scans")
        before = len(self.repairs)
        # Sorted for a deterministic sweep order regardless of how the
        # primary map was populated.
        records = sorted(
            (
                r
                for r in self.vstore.kv.primary.values()
                if r.name.startswith("object:")
            ),
            key=lambda r: r.name,
        )
        for record in records:
            try:
                meta = ObjectMeta.from_wire(dict(record.latest.value))
            except (TypeError, ValueError, AttributeError):
                continue  # not object metadata after all
            try:
                yield from self.repair_object(meta)
            except (NetworkError, KvError, VStoreError):
                continue  # this object again next sweep
        return len(self.repairs) - before

    def repair_object(self, meta: ObjectMeta):
        """Process: restore one object to full payload redundancy."""
        if meta.is_remote and not meta.replicas:
            return False  # cloud-resident: the cloud is the redundancy
        tel = self.sim.telemetry
        span = (
            tel.begin(
                "resilience.repair",
                layer="resilience",
                node=self.name,
                object=meta.name,
            )
            if tel is not None
            else None
        )
        try:
            changed = yield from self._repair(meta, span)
        except BaseException as exc:
            if span is not None:
                tel.fail(span, exc)
            raise
        if span is not None:
            tel.end(span, changed=changed)
        return changed

    def _repair(self, meta: ObjectMeta, span):
        if meta.is_striped:
            return (yield from self._repair_striped(meta, span))
        holders = []
        if not meta.is_remote and meta.location:
            holders.append(meta.location)
        holders.extend(n for n in meta.replicas if n not in holders)
        live = []
        for holder in holders:
            alive = yield from self._holds_object(holder, meta.name, span)
            if alive:
                live.append(holder)

        changed = False
        if self.track_lost and meta.lost_replicas:
            returned: list[str] = []
            for holder in list(meta.lost_replicas):
                if holder in live:
                    meta.lost_replicas.remove(holder)
                    changed = True
                    continue
                alive = yield from self._holds_object(holder, meta.name, span)
                if alive:
                    returned.append(holder)
            if returned:
                # The cheap recovery path: the holder replayed its WAL
                # and still has the payload — reattach, zero bytes moved.
                for holder in returned:
                    meta.lost_replicas.remove(holder)
                    live.append(holder)
                self._log(
                    "reattach",
                    meta.name,
                    f"{len(returned)} recovered holder(s) rejoined with data",
                    returned,
                )
                changed = True
        if not meta.is_remote and meta.location not in live:
            # The primary is gone: promote a surviving replica, or fall
            # back to the cloud copy when one exists.
            if live:
                old = meta.location
                meta.location = live[0]
                meta.bin_name = self._bin_of(live[0], meta.name)
                self._note_lost(meta, [old])
                self._log(
                    "promote", meta.name, f"{old} -> {live[0]}", [live[0]]
                )
                changed = True
            elif meta.url:
                old = meta.location
                self._note_lost(meta, [old, *meta.replicas])
                meta.location = LOCATION_REMOTE
                meta.bin_name = ""
                meta.replicas = []
                self._log("promote-cloud", meta.name, f"{old} -> cloud", [])
                yield from self._republish(meta, span)
                return True
            else:
                self._log("lost", meta.name, "no live copy anywhere", [])
                return False
        if meta.replicas != [n for n in live if n != meta.location]:
            dead = [
                n for n in meta.replicas if n not in live and n != meta.location
            ]
            self._note_lost(meta, dead)
            meta.replicas = [n for n in live if n != meta.location]
            changed = True

        missing = self.data_replicas - len(meta.replicas)
        if missing > 0 and not meta.is_remote:
            added = yield from self._replicate(meta, missing, span)
            if added:
                meta.replicas.extend(added)
                self._log(
                    "replicate",
                    meta.name,
                    f"restored {len(added)}/{missing} missing copies",
                    added,
                )
                changed = True

        if changed:
            yield from self._republish(meta, span)
        return changed

    def _repair_striped(self, meta: ObjectMeta, span):
        """Process: rebuild a stripe's missing chunks from any k survivors.

        The erasure code makes repair cheap: instead of re-copying the
        whole payload, this node pulls any ``k`` live chunks (k/n of
        the object's bytes), re-encodes the lost ones, and pushes each
        rebuilt chunk to a fresh decision-engine-chosen holder.  Chunks
        in the remote cloud count as live — the cloud is the
        durability backstop, not a failure domain we probe.  When fewer
        than ``k`` chunks survive, the full-object cloud copy (if any)
        takes over as the object's location; otherwise the stripe is
        logged lost and left for a later sweep in case holders return.
        """
        live: list[int] = []
        for index, holder in enumerate(meta.chunk_nodes):
            if holder == LOCATION_REMOTE:
                live.append(index)
                continue
            alive = yield from self._holds_object(
                holder, chunk_name(meta.name, index), span
            )
            if alive:
                live.append(index)

        n = meta.stripe_k + meta.stripe_m
        if len(live) == n:
            return False  # full stripe width; nothing to do
        if len(live) < meta.stripe_k:
            if meta.url:
                meta.location = LOCATION_REMOTE
                meta.bin_name = ""
                meta.stripe_k = 0
                meta.stripe_m = 0
                meta.chunk_nodes = []
                self._log(
                    "promote-cloud",
                    meta.name,
                    f"only {len(live)}/{n} chunks live -> cloud copy",
                    [],
                )
                yield from self._republish(meta, span)
                return True
            self._log(
                "lost",
                meta.name,
                f"only {len(live)}/{n} chunks live, need {meta.stripe_k}",
                [],
            )
            return False

        missing = [i for i in range(n) if i not in live]
        chunk_mb = meta.size_mb / meta.stripe_k
        # Pull the k fastest live chunks here and re-encode the lost
        # ones.  The stragglers' pulls keep draining in the background;
        # only k chunks' worth of bytes cross the network.
        pulls = [self.vstore._pull_chunk(meta, i, span) for i in live]
        outcomes = yield self.sim.gather(
            pulls, count=meta.stripe_k, return_exceptions=True
        )
        pulled = sum(1 for outcome in outcomes if isinstance(outcome, int))
        if pulled < meta.stripe_k:
            # A holder died between probe and pull; next sweep retries.
            return False
        policy = self.vstore.striping
        mb_s = policy.codec_mb_s if policy is not None else StripingPolicy().codec_mb_s
        yield self.sim.timeout(meta.size_mb / mb_s)

        exclude = {meta.chunk_nodes[i] for i in live}
        exclude.discard(LOCATION_REMOTE)
        try:
            candidates = yield from self.vstore.decision.decide(
                DecisionPolicy.BALANCED,
                require=lambda s: s.voluntary_free_mb >= chunk_mb,
                ctx=span,
            )
        except (HostDownError, RpcTimeoutError, RemoteError):
            candidates = []
        plan = plan_chunk_placement(
            [c.node for c in candidates], len(missing), exclude=sorted(exclude)
        )
        rebuilt: list[str] = []
        for index, target in zip(missing, plan):
            if target is None:
                # Every live home node already holds a chunk of this
                # stripe; the cloud is the one distinct holder left.
                if self.vstore.cloud is None:
                    continue  # retry next sweep (a node may revive)
                yield from self.vstore.cloud.store_remote(
                    chunk_name(meta.name, index),
                    chunk_mb * 1024 * 1024,
                    ctx=span,
                )
                meta.chunk_nodes[index] = LOCATION_REMOTE
                rebuilt.append(LOCATION_REMOTE)
                continue
            try:
                yield from self.vstore._push_chunk(
                    meta.name, index, chunk_mb, target, span
                )
            except (HostDownError, RpcTimeoutError, RemoteError, VStoreError):
                continue
            meta.chunk_nodes[index] = target
            rebuilt.append(target)
        if not rebuilt:
            return False
        self._log(
            "rebuild",
            meta.name,
            f"re-encoded {len(rebuilt)}/{len(missing)} missing chunks",
            rebuilt,
        )
        self._count("stripe.repair.rebuilt")
        yield from self._republish(meta, span)
        return True

    def _note_lost(self, meta: ObjectMeta, nodes) -> None:
        """Remember dead holders (durable deployments only) so a later
        sweep can reattach them if they return with their data."""
        if not self.track_lost:
            return
        for node in nodes:
            if node and node != LOCATION_REMOTE and node not in meta.lost_replicas:
                meta.lost_replicas.append(node)
        # Bounded memory: only the most recent departures matter.
        del meta.lost_replicas[:-8]

    def _replicate(self, meta: ObjectMeta, missing: int, span):
        """Process: pick targets and command a live holder to push copies."""
        exclude = {meta.location, *meta.replicas}
        candidates = yield from self.vstore.decision.decide(
            DecisionPolicy.BALANCED,
            require=lambda s: s.voluntary_free_mb >= meta.size_mb,
            ctx=span,
        )
        targets = [c.node for c in candidates if c.node not in exclude]
        targets = targets[:missing]
        if not targets:
            return []
        body = {"name": meta.name, "size_mb": meta.size_mb, "targets": targets}
        if span is not None:
            body["span"] = span.ctx_wire()
        try:
            if meta.location == self.name:
                reply = yield from self.vstore.replicate_local(
                    meta.name, meta.size_mb, targets, ctx=span
                )
            else:
                reply = yield from self._call(
                    meta.location,
                    MSG_REPLICATE,
                    body,
                    timeout=REPLICATE_TIMEOUT_S,
                )
        except (HostDownError, RpcTimeoutError, RemoteError):
            return []
        return list(reply.get("stored", []))

    def _holds_object(self, holder: str, name: str, span):
        """Process: does ``holder`` answer and physically hold ``name``?"""
        if holder == self.name:
            return self.vstore.holds(name)
        breakers = self.caller.breakers if self.caller is not None else None
        if breakers is not None and breakers.is_open(holder, self.sim.now):
            return False  # recently failing; don't burn a probe on it
        body = {"name": name}
        if span is not None:
            body["span"] = span.ctx_wire()
        try:
            # A deliberate bare call: failure of the probe *is* the
            # signal, so retrying it would only slow the sweep down.
            reply = yield self.vstore.endpoint.call(
                holder, MSG_PING, body, timeout=PING_TIMEOUT_S
            )
        except (HostDownError, RpcTimeoutError, RemoteError):
            if breakers is not None:
                breakers.record_failure(holder, self.sim.now)
            return False
        if breakers is not None:
            breakers.record_success(holder, self.sim.now)
        return bool(reply.get("holds"))

    def _call(self, dst, msg_type, body, timeout):
        if self.caller is not None:
            return (
                yield from self.caller.call(dst, msg_type, body, timeout=timeout)
            )
        return (
            yield self.vstore.endpoint.call(dst, msg_type, body, timeout=timeout)
        )

    def _republish(self, meta: ObjectMeta, span):
        yield from self.vstore.kv.put(object_key(meta.name), meta.wire(), ctx=span)

    def _bin_of(self, holder: str, name: str) -> str:
        if holder == self.name:
            return "mandatory" if name in self.vstore.mandatory else "voluntary"
        # Peers store received copies in voluntary space.
        return "voluntary"
