"""Retry/deadline policies wrapping :meth:`RpcEndpoint.call`.

Home devices flap: a call that fails with a connection refusal or a
timeout very often succeeds moments later, once the overlay has routed
around the hole or the device has come back.  :class:`ResilientCaller`
gives every peer call three things the bare endpoint lacks:

* **Capped exponential backoff with deterministic jitter.**  Retry
  ``n`` waits ``min(max_delay, base * multiplier**(n-1))`` seconds,
  perturbed by a seeded :class:`~repro.sim.random.RandomSource` fork so
  colliding retries de-synchronize *and* two runs of the same scenario
  produce bit-for-bit identical delays.
* **A per-operation deadline budget.**  All attempts plus all backoff
  sleeps must fit inside ``deadline_s`` of simulated time; the budget
  also caps each attempt's RPC timeout, so one slow attempt cannot eat
  the whole budget.  Exhaustion raises :class:`DeadlineExceededError`
  (a :class:`~repro.net.RpcTimeoutError`).
* **Circuit breaking.**  When a :class:`BreakerRegistry` is attached,
  calls to a peer whose breaker is open fail locally and instantly
  (:class:`CircuitOpenError`, a :class:`~repro.net.HostDownError`)
  instead of burning an attempt on the network.

Only *transport* failures (host down, timeout) are retried.  A
:class:`~repro.net.RemoteError` means the peer is alive and its handler
raised — an application error that a retry would simply repeat — so it
propagates immediately (and counts as breaker success: the peer
answered).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.net import HostDownError, RemoteError, RpcEndpoint, RpcTimeoutError
from repro.resilience.breaker import BreakerRegistry
from repro.resilience.errors import DeadlineExceededError
from repro.sim import RandomSource

__all__ = ["RetryPolicy", "ResilientCaller"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times, how long apart, and within what total budget."""

    #: Total tries (first attempt included).
    max_attempts: int = 4
    #: Backoff before retry 1, seconds.
    base_delay_s: float = 0.05
    #: Growth factor per retry.
    multiplier: float = 2.0
    #: Backoff ceiling, seconds.
    max_delay_s: float = 2.0
    #: Multiplicative jitter fraction: each delay is scaled by a
    #: uniform draw from ``[1 - jitter/2, 1 + jitter/2]``.
    jitter: float = 0.5
    #: Total simulated-time budget per operation (attempts + backoffs);
    #: None disables the deadline.
    deadline_s: Optional[float] = 120.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise ValueError("need 0 <= base_delay_s <= max_delay_s")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")

    def backoff_s(self, retry: int, rng: Optional[RandomSource] = None) -> float:
        """Delay before retry number ``retry`` (1-based), jittered.

        With the same ``rng`` state the sequence is fully deterministic.
        """
        if retry < 1:
            raise ValueError("retry is 1-based")
        delay = min(
            self.max_delay_s, self.base_delay_s * self.multiplier ** (retry - 1)
        )
        if rng is not None and self.jitter > 0 and delay > 0:
            delay *= 1.0 + self.jitter * (rng.random() - 0.5)
        return delay


class ResilientCaller:
    """A retrying, breaker-aware façade over one node's RPC endpoint."""

    def __init__(
        self,
        endpoint: RpcEndpoint,
        policy: Optional[RetryPolicy] = None,
        rng: Optional[RandomSource] = None,
        breakers: Optional[BreakerRegistry] = None,
        metrics=None,
        node: str = "",
    ) -> None:
        self.endpoint = endpoint
        self.policy = policy or RetryPolicy()
        self.rng = rng
        self.breakers = breakers
        self.metrics = metrics
        self.node = node or endpoint.name
        #: Lifetime counters (also mirrored into ``metrics`` when set).
        self.attempts = 0
        self.retries = 0
        self.giveups = 0

    @property
    def sim(self):
        return self.endpoint.sim

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name, node=self.node).inc()

    def call(
        self,
        dst: str,
        msg_type: str,
        body: Any = None,
        timeout: Optional[float] = None,
        size: int = 64,
    ):
        """Process: :meth:`RpcEndpoint.call` with retries and deadlines.

        Raises the last transport error after ``max_attempts`` tries,
        :class:`DeadlineExceededError` when the budget runs out first,
        or :class:`CircuitOpenError` when the peer's breaker refuses
        every attempt.
        """
        sim = self.sim
        policy = self.policy
        deadline = (
            sim.now + policy.deadline_s if policy.deadline_s is not None else None
        )
        base_timeout = (
            RpcEndpoint.DEFAULT_TIMEOUT if timeout is None else timeout
        )
        last_exc: Optional[Exception] = None
        for attempt in range(1, policy.max_attempts + 1):
            if self.breakers is not None:
                # Raises CircuitOpenError when the breaker is open.
                self.breakers.check(dst, sim.now)
            per_call = base_timeout
            if deadline is not None:
                remaining = deadline - sim.now
                if remaining <= 0:
                    self.giveups += 1
                    self._count("resilience.retry.deadline_exceeded")
                    raise DeadlineExceededError(dst, msg_type, policy.deadline_s)
                per_call = min(per_call, remaining)
            self.attempts += 1
            self._count("resilience.retry.attempts")
            try:
                reply = yield self.endpoint.call(
                    dst, msg_type, body, timeout=per_call, size=size
                )
            except (HostDownError, RpcTimeoutError) as exc:
                last_exc = exc
                if self.breakers is not None:
                    self.breakers.record_failure(dst, sim.now)
                self._count("resilience.retry.failures")
                if attempt == policy.max_attempts:
                    break
                delay = policy.backoff_s(attempt, self.rng)
                if deadline is not None:
                    headroom = deadline - sim.now
                    if headroom <= 0:
                        break
                    delay = min(delay, headroom)
                self.retries += 1
                self._count("resilience.retry.retries")
                if delay > 0:
                    yield sim.timeout(delay)
                continue
            except RemoteError:
                # The peer is up and its handler raised: an application
                # error, not a transport one.  Don't retry, don't trip.
                if self.breakers is not None:
                    self.breakers.record_success(dst, sim.now)
                raise
            if self.breakers is not None:
                self.breakers.record_success(dst, sim.now)
            return reply
        self.giveups += 1
        self._count("resilience.retry.giveups")
        if deadline is not None and sim.now >= deadline:
            raise DeadlineExceededError(
                dst, msg_type, policy.deadline_s
            ) from last_exc
        raise last_exc
