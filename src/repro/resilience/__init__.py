"""Resilience layer: surviving churn in the home cloud.

The paper's defining constraint is that home devices "may periodically
go off-line and become unavailable" (Section III), and its future work
asks for "mechanisms that adapt to the changing network conditions"
(Section VII).  This package supplies those mechanisms, threaded
through the store/fetch/process path and **off by default** —
``ClusterConfig(resilience=True)`` switches everything on at once:

* :class:`RetryPolicy` / :class:`ResilientCaller` — capped exponential
  backoff with deterministic seeded jitter and per-operation deadline
  budgets around every peer RPC.
* :class:`CircuitBreaker` / :class:`BreakerRegistry` — per-peer
  closed/open/half-open breakers that short-circuit calls to
  repeatedly failing peers (:class:`CircuitOpenError`) until a
  cooldown elapses.
* :class:`Repairer` — the background sweep that detects
  under-replicated object payloads after a crash and restores the
  configured ``data_replicas`` copy count, promoting surviving
  replicas (or the cloud copy) when the primary holder died.

See ``docs/RESILIENCE.md`` for the full model.
"""

from repro.resilience.breaker import (
    BreakerRegistry,
    BreakerTransition,
    CircuitBreaker,
)
from repro.resilience.errors import CircuitOpenError, DeadlineExceededError
from repro.resilience.repair import RepairAction, Repairer
from repro.resilience.retry import ResilientCaller, RetryPolicy

__all__ = [
    "BreakerRegistry",
    "BreakerTransition",
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadlineExceededError",
    "RepairAction",
    "Repairer",
    "ResilientCaller",
    "RetryPolicy",
]
