"""Per-peer circuit breakers.

A breaker watches the outcome of calls to one peer and short-circuits
further calls once the peer looks dead, so operations stop burning
their deadline budgets on a host that fails instantly-or-slowly every
time.  The state machine is the classic three-state one:

* **closed** — calls flow normally; consecutive failures are counted.
* **open** — entered after ``failure_threshold`` consecutive failures.
  Calls are refused locally (:class:`CircuitOpenError`) until
  ``cooldown_s`` of simulated time has passed.
* **half-open** — after the cooldown, the next call is allowed through
  as a probe.  Success closes the breaker; failure re-opens it (and
  restarts the cooldown).

State only ever advances when asked (``allow`` / ``record_*``) — there
are no background processes, so an idle breaker costs nothing and the
whole registry is deterministic.  Transitions are appended to
``transitions`` for post-mortems and mapped onto
``resilience.breaker.*`` counters when a metrics registry is attached.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.resilience.errors import CircuitOpenError

__all__ = ["CircuitBreaker", "BreakerRegistry", "BreakerTransition"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass
class BreakerTransition:
    """One state change, for the post-mortem log."""

    at: float
    peer: str
    old: str
    new: str


@dataclass
class CircuitBreaker:
    """Failure-tracking state for one peer."""

    peer: str
    failure_threshold: int = 3
    cooldown_s: float = 15.0
    state: str = CLOSED
    consecutive_failures: int = 0
    opened_at: float = 0.0

    def retry_at(self) -> float:
        """When an open breaker will next let a probe through."""
        return self.opened_at + self.cooldown_s

    def allow(self, now: float) -> bool:
        """May a call to this peer proceed right now?

        An open breaker whose cooldown has elapsed transitions to
        half-open and admits the call as a probe.
        """
        if self.state == OPEN:
            if now >= self.retry_at():
                self.state = HALF_OPEN
                return True
            return False
        return True

    def is_open(self, now: float) -> bool:
        """Open and still cooling down (read-only; no transition)."""
        return self.state == OPEN and now < self.retry_at()

    def record_success(self) -> bool:
        """Note a successful call; returns True if the breaker closed."""
        reopened = self.state != CLOSED
        self.state = CLOSED
        self.consecutive_failures = 0
        return reopened

    def record_failure(self, now: float) -> bool:
        """Note a failed call; returns True if the breaker opened."""
        self.consecutive_failures += 1
        tripped = (
            self.state == HALF_OPEN
            or self.consecutive_failures >= self.failure_threshold
        )
        if tripped and self.state != OPEN:
            self.state = OPEN
            self.opened_at = now
            return True
        if tripped:
            # Already open (e.g. a racing in-flight call failed late);
            # restart the cooldown.
            self.opened_at = now
        return False


class BreakerRegistry:
    """All of one node's per-peer breakers.

    ``metrics`` (a :class:`repro.telemetry.MetricsRegistry`) is optional;
    when present, transitions increment ``resilience.breaker.opened`` /
    ``resilience.breaker.closed`` and refusals increment
    ``resilience.breaker.short_circuit`` for the owning node.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 15.0,
        metrics=None,
        node: str = "",
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.metrics = metrics
        self.node = node
        self._breakers: dict[str, CircuitBreaker] = {}
        self.transitions: list[BreakerTransition] = []
        self.short_circuits = 0

    def breaker(self, peer: str) -> CircuitBreaker:
        b = self._breakers.get(peer)
        if b is None:
            b = self._breakers[peer] = CircuitBreaker(
                peer, self.failure_threshold, self.cooldown_s
            )
        return b

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name, node=self.node).inc()

    def allow(self, peer: str, now: float) -> bool:
        """May a call to ``peer`` proceed?  Counts refusals."""
        b = self.breaker(peer)
        old = b.state
        allowed = b.allow(now)
        if b.state != old:
            self.transitions.append(BreakerTransition(now, peer, old, b.state))
            self._count("resilience.breaker.half_open")
        if not allowed:
            self.short_circuits += 1
            self._count("resilience.breaker.short_circuit")
        return allowed

    def check(self, peer: str, now: float) -> None:
        """Raise :class:`CircuitOpenError` unless a call may proceed."""
        if not self.allow(peer, now):
            raise CircuitOpenError(peer, self.breaker(peer).retry_at())

    def is_open(self, peer: str, now: float) -> bool:
        """Read-only open check (used by health-aware decisions)."""
        b = self._breakers.get(peer)
        return b is not None and b.is_open(now)

    def record_success(self, peer: str, now: float) -> None:
        b = self.breaker(peer)
        old = b.state
        if b.record_success() or old != b.state:
            self.transitions.append(BreakerTransition(now, peer, old, b.state))
            self._count("resilience.breaker.closed")

    def record_failure(self, peer: str, now: float) -> None:
        b = self.breaker(peer)
        old = b.state
        opened = b.record_failure(now)
        if opened or old != b.state:
            self.transitions.append(BreakerTransition(now, peer, old, b.state))
            self._count("resilience.breaker.opened")

    def open_peers(self, now: float) -> list[str]:
        """Peers currently refused (for diagnostics)."""
        return sorted(
            peer for peer, b in self._breakers.items() if b.is_open(now)
        )

    def known_peers(self) -> list[str]:
        """Every peer this node has a breaker for (open or not)."""
        return sorted(self._breakers)
