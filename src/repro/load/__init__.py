"""Open-loop load generation against a Cloud4Home deployment.

Public surface:

* :class:`OpenLoopDriver`, :class:`LoadReport` — the driver: inject on
  a fixed arrival schedule, measure offered vs. achieved throughput
  and the latency distribution.
* :class:`ArrivalProcess`, :class:`PoissonArrivals`,
  :class:`DeterministicArrivals`, :class:`ModulatedPoissonArrivals` —
  injection schedules (all seeded via :class:`repro.sim.RandomSource`).
* :class:`KvScenario`, :class:`CameraPutScenario` — bindings from the
  :mod:`repro.workloads` models to a deployment's KV path.
* :func:`scale_point`, :func:`join_wall` — parallel-runner job
  functions used by ``benchmarks/perf/scale_bench.py``.

Methodology (open- vs. closed-loop, reproducing ``BENCH_scale.json``)
is documented in ``docs/SCALING.md``.
"""

from repro.load.arrivals import (
    ArrivalProcess,
    DeterministicArrivals,
    ModulatedPoissonArrivals,
    PoissonArrivals,
)
from repro.load.bench import DEFAULT_MAX_INFLIGHT, join_wall, scale_point
from repro.load.driver import LoadReport, OpenLoopDriver
from repro.load.scenario import CameraPutScenario, KvScenario

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "DeterministicArrivals",
    "ModulatedPoissonArrivals",
    "OpenLoopDriver",
    "LoadReport",
    "KvScenario",
    "CameraPutScenario",
    "scale_point",
    "join_wall",
    "DEFAULT_MAX_INFLIGHT",
]
