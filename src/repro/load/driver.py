"""The open-loop load driver.

Closed-loop drivers (N workers, each issuing the next request when the
previous one returns) let a slow system throttle its own load, hiding
saturation entirely — the classic coordinated-omission trap.  This
driver is *open-loop*: an arrival process fixes the injection schedule
up front, requests are injected on that schedule whether or not earlier
ones have completed, and the gap between offered and achieved
throughput (plus the latency tail) is the measurement.

Bounded memory past saturation comes from load shedding, not queueing:
at most ``max_inflight`` requests run concurrently, and arrivals that
would exceed the cap are counted as shed and dropped.  An overloaded
run therefore reports ``achieved < offered`` with a flat memory
profile instead of an ever-growing process queue.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.load.arrivals import ArrivalProcess
from repro.sim.kernel import Simulator
from repro.telemetry import MetricsRegistry

__all__ = ["OpenLoopDriver", "LoadReport"]

#: The instrument names the driver writes under the metrics registry.
LATENCY_HISTOGRAM = "load.latency"

#: A request generator: called with (request index, injection time),
#: returns a simulation process generator.
Operation = Callable[[int, float], Generator]


class LoadReport:
    """The outcome of one driver run (JSON-ready via :meth:`as_dict`)."""

    def __init__(
        self,
        *,
        duration_s: float,
        offered: int,
        injected: int,
        shed: int,
        completed: int,
        failed: int,
        inflight_at_end: int,
        max_inflight_seen: int,
        latency: dict,
        alerts: Optional[list] = None,
    ) -> None:
        self.duration_s = duration_s
        self.offered = offered
        self.injected = injected
        self.shed = shed
        self.completed = completed
        self.failed = failed
        self.inflight_at_end = inflight_at_end
        self.max_inflight_seen = max_inflight_seen
        self.latency = latency
        #: SLO alerts emitted during the run (None when no engine was
        #: attached — absent from :meth:`as_dict` too, so reports from
        #: SLO-less runs are unchanged byte for byte).
        self.alerts = alerts

    @property
    def offered_rate(self) -> float:
        return self.offered / self.duration_s if self.duration_s else 0.0

    @property
    def achieved_rate(self) -> float:
        return self.completed / self.duration_s if self.duration_s else 0.0

    def as_dict(self) -> dict:
        return {
            "duration_s": self.duration_s,
            "offered": self.offered,
            "injected": self.injected,
            "shed": self.shed,
            "completed": self.completed,
            "failed": self.failed,
            "inflight_at_end": self.inflight_at_end,
            "max_inflight_seen": self.max_inflight_seen,
            "offered_rate": self.offered_rate,
            "achieved_rate": self.achieved_rate,
            "latency": dict(self.latency),
            **({"alerts": list(self.alerts)} if self.alerts is not None else {}),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LoadReport offered={self.offered_rate:.1f}/s "
            f"achieved={self.achieved_rate:.1f}/s "
            f"p99={self.latency.get('p99', 0.0) * 1000:.1f}ms>"
        )


class OpenLoopDriver:
    """Inject requests on a fixed arrival schedule; measure the gap.

    Parameters
    ----------
    sim:
        The simulator the system under test runs on.
    arrivals:
        The injection schedule (:class:`repro.load.ArrivalProcess`).
        Seeded arrivals make the whole run bit-for-bit deterministic.
    operation:
        Factory called as ``operation(index, injected_at)`` per
        arrival; returns the process generator to run.
    metrics:
        Registry for the latency histogram and throughput counters
        (one is created when omitted).
    node:
        Instrument node label (distinguishes concurrent drivers).
    max_inflight:
        Load-shedding cap: arrivals beyond this many in-flight
        requests are dropped (and counted), keeping memory bounded
        past saturation.
    slo_engine:
        Optional :class:`repro.telemetry.SloEngine`.  When given, every
        completion additionally feeds sliding-window latency and
        success-ratio rollups under ``load.latency``, the engine is
        evaluated once more when the run ends, and the report carries
        the alerts emitted during the run.  ``None`` (default) leaves
        reports byte-identical to pre-SLO runs.
    """

    def __init__(
        self,
        sim: Simulator,
        arrivals: ArrivalProcess,
        operation: Operation,
        *,
        metrics: Optional[MetricsRegistry] = None,
        node: str = "",
        max_inflight: int = 10_000,
        slo_engine=None,
    ) -> None:
        if max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        self.sim = sim
        self.arrivals = arrivals
        self.operation = operation
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.node = node
        self.max_inflight = max_inflight
        self.slo_engine = slo_engine
        if slo_engine is not None:
            # The windowed rollup lives in the engine's registry so the
            # specs can see it even if a separate driver registry was
            # passed.  One instrument carries both the latency window
            # and (via the per-observation ok flag) the success ratio.
            self._whist = slo_engine.metrics.windowed_histogram(
                LATENCY_HISTOGRAM, node=node
            )
        self.histogram = self.metrics.histogram(LATENCY_HISTOGRAM, node=node)
        #: Injection times, in order (the determinism contract: same
        #: seed -> identical list).
        self.injections: list[float] = []
        self.offered = 0
        self.shed = 0
        self.completed = 0
        self.failed = 0
        self.inflight = 0
        self.max_inflight_seen = 0
        self._ran = False

    # -- the run -----------------------------------------------------------

    def run(self, duration_s: float, drain_s: float = 0.0) -> LoadReport:
        """Drive the simulation: inject for ``duration_s``, then allow
        ``drain_s`` more simulated seconds for stragglers, and report.

        Requests still in flight when the drain window closes are
        reported in ``inflight_at_end`` (they are *not* failures — the
        system simply had not finished them).
        """
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self._ran:
            raise RuntimeError("a driver instance runs exactly once")
        self._ran = True
        start = self.sim.now
        alerts_before = (
            len(self.slo_engine.alerts) if self.slo_engine is not None else 0
        )
        self.sim.process(self._inject(start, duration_s))
        self.sim.run(until=start + duration_s)
        if drain_s > 0:
            self.sim.run(until=start + duration_s + drain_s)
        alerts = None
        if self.slo_engine is not None:
            self.slo_engine.evaluate(self.sim.now)
            alerts = [a.as_dict() for a in self.slo_engine.alerts[alerts_before:]]
        return self._report(duration_s, alerts)

    def _inject(self, start: float, duration_s: float):
        end = start + duration_s
        sim = self.sim
        for when in self.arrivals.times(start):
            if when >= end:
                return
            delay = when - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            self.offered += 1
            self.injections.append(when)
            if self.inflight >= self.max_inflight:
                self.shed += 1
                continue
            self.inflight += 1
            if self.inflight > self.max_inflight_seen:
                self.max_inflight_seen = self.inflight
            sim.process(self._one(self.offered - 1, when))

    def _one(self, index: int, injected_at: float):
        try:
            yield from self.operation(index, injected_at)
        except Exception:
            self.failed += 1
            if self.slo_engine is not None:
                # Time-to-failure is the failed request's latency.
                self._whist.observe(
                    self.sim.now - injected_at, now=self.sim.now, ok=False
                )
        else:
            self.completed += 1
            latency = self.sim.now - injected_at
            self.histogram.observe(latency)
            if self.slo_engine is not None:
                self._whist.observe(latency, now=self.sim.now)
        finally:
            self.inflight -= 1

    def _report(self, duration_s: float, alerts: Optional[list] = None) -> LoadReport:
        for key, value in (
            ("load.offered", self.offered),
            ("load.shed", self.shed),
            ("load.completed", self.completed),
            ("load.failed", self.failed),
        ):
            self.metrics.counter(key, node=self.node).value = float(value)
        hist = self.histogram.summary()
        latency = {
            "mean": hist["mean"],
            "max": hist["max"],
            "p50": hist["p50"],
            "p99": hist["p99"],
            "p999": hist["p999"],
            "overflow": hist["overflow"],
        }
        return LoadReport(
            duration_s=duration_s,
            offered=self.offered,
            injected=self.offered - self.shed,
            shed=self.shed,
            completed=self.completed,
            failed=self.failed,
            inflight_at_end=self.inflight,
            max_inflight_seen=self.max_inflight_seen,
            latency=latency,
            alerts=alerts,
        )
