"""Scenarios: binding workload models to a deployment's KV path.

A scenario turns the abstract workload models (zipfian keys, camera
streams) into the ``operation(index, injected_at)`` factory the
:class:`repro.load.OpenLoopDriver` calls per arrival.  Origin devices,
keys, and operation mix are all drawn from forked
:class:`repro.sim.RandomSource` streams, so a scenario is as
deterministic as its seed.
"""

from __future__ import annotations

from repro.kvstore import KeyNotFoundError
from repro.sim import RandomSource
from repro.workloads.models import CameraStream, ZipfianKeys

__all__ = ["KvScenario", "CameraPutScenario"]


class KvScenario:
    """A zipfian get/put mix over the deployment's KV stores.

    Each arrival picks a uniformly random origin device, a zipfian key,
    and (with probability ``get_fraction``) issues a get, otherwise a
    put of a small value.  ``prepopulate()`` puts every key once so
    early gets do not all miss.
    """

    def __init__(
        self,
        c4h,
        rng: RandomSource,
        n_keys: int = 512,
        skew: float = 0.99,
        get_fraction: float = 0.9,
        value: str = "x" * 64,
    ) -> None:
        if not 0.0 <= get_fraction <= 1.0:
            raise ValueError("get_fraction must be in [0, 1]")
        self.devices = c4h.devices
        self.keys = ZipfianKeys(n_keys, rng.fork("keys"), skew=skew)
        self._origins = rng.fork("origins")
        self._mix = rng.fork("mix")
        self.get_fraction = get_fraction
        self.value = value
        self.misses = 0

    def prepopulate(self):
        """Process: put every key once (round-robin over devices)."""
        n = len(self.devices)
        for rank in range(self.keys.n_keys):
            device = self.devices[rank % n]
            yield from device.kv.put(self.keys.key_name(rank), self.value)

    def operation(self, index: int, injected_at: float):
        """Process factory handed to the driver (one KV op per call)."""
        device = self.devices[self._origins.randint(0, len(self.devices) - 1)]
        key = self.keys.sample()
        if self._mix.random() < self.get_fraction:
            try:
                yield from device.kv.get(key)
            except KeyNotFoundError:
                # A put raced us out, or prepopulation was skipped;
                # the op still completed from the driver's viewpoint.
                self.misses += 1
        else:
            yield from device.kv.put(key, self.value)


class CameraPutScenario:
    """Surveillance-camera PUT streams as driver operations.

    Every arrival is one captured frame from one of ``n_cameras``
    (chosen round-robin over the first devices of the deployment); the
    frame's size in MB is drawn from the camera model and stored as
    the record value, mirroring Figure 7's image-upload path at the
    metadata layer.
    """

    def __init__(
        self,
        c4h,
        rng: RandomSource,
        n_cameras: int = 4,
        period_s: float = 10.0,
    ) -> None:
        if n_cameras <= 0:
            raise ValueError("n_cameras must be positive")
        self.devices = c4h.devices[: max(1, min(n_cameras, len(c4h.devices)))]
        self._model = CameraStream(rng.fork("camera"), period_s=period_s)
        self._sizes = rng.fork("sizes")
        self.frames = 0

    def operation(self, index: int, injected_at: float):
        device = self.devices[index % len(self.devices)]
        size_mb = self._sizes.choice(self._model.sizes_mb)
        self.frames += 1
        yield from device.kv.put(
            f"frame-{device.name}-{index:08d}",
            {"size_mb": size_mb, "captured_at": injected_at},
        )
