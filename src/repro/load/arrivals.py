"""Arrival processes for open-loop load generation.

An arrival process is a deterministic function of its seed: it yields
the absolute injection times of successive requests, independent of
anything the system under test does.  That independence is the whole
point of open-loop measurement — see ``docs/SCALING.md``.

All stochastic processes draw from :class:`repro.sim.RandomSource`
(simlint's SIM107 rejects unseeded ``random.Random()`` here).
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.sim import RandomSource

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "DeterministicArrivals",
    "ModulatedPoissonArrivals",
]


class ArrivalProcess:
    """Base class: a stream of absolute arrival times."""

    def times(self, start: float = 0.0) -> Iterator[float]:
        """Yield successive absolute arrival times, forever."""
        raise NotImplementedError

    def schedule(self, duration_s: float, start: float = 0.0) -> list[float]:
        """All arrival times inside ``[start, start + duration_s)``.

        Materialized for determinism tests and offline inspection; the
        driver itself consumes :meth:`times` lazily.
        """
        out = []
        end = start + duration_s
        for t in self.times(start):
            if t >= end:
                break
            out.append(t)
        return out


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals at ``rate`` requests/second."""

    def __init__(self, rate: float, rng: RandomSource) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self._rng = rng

    def times(self, start: float = 0.0) -> Iterator[float]:
        t = start
        rate = self.rate
        rng = self._rng
        while True:
            t += rng.exponential(rate)
            yield t


class DeterministicArrivals(ArrivalProcess):
    """Evenly spaced arrivals at exactly ``rate`` requests/second."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate

    def times(self, start: float = 0.0) -> Iterator[float]:
        gap = 1.0 / self.rate
        n = 1
        while True:
            # Multiply instead of accumulating so float error stays
            # bounded over millions of arrivals.
            yield start + n * gap
            n += 1


class ModulatedPoissonArrivals(ArrivalProcess):
    """Non-homogeneous Poisson arrivals with time-varying ``rate_fn``.

    Implemented by Lewis–Shedler thinning: candidates are generated at
    ``peak_rate`` and accepted with probability ``rate_fn(t) /
    peak_rate``.  ``rate_fn`` must never exceed ``peak_rate`` (checked
    per candidate).  Pair with :class:`repro.workloads.DiurnalRate`
    for day/night load curves.
    """

    def __init__(
        self,
        rate_fn: Callable[[float], float],
        peak_rate: float,
        rng: RandomSource,
    ) -> None:
        if peak_rate <= 0:
            raise ValueError("peak_rate must be positive")
        self.rate_fn = rate_fn
        self.peak_rate = peak_rate
        self._rng = rng

    def times(self, start: float = 0.0) -> Iterator[float]:
        t = start
        rng = self._rng
        peak = self.peak_rate
        while True:
            t += rng.exponential(peak)
            rate = self.rate_fn(t)
            if rate > peak:
                raise ValueError(
                    f"rate_fn({t:.3f}) = {rate:.3f} exceeds peak_rate {peak:.3f}"
                )
            if rng.random() * peak < rate:
                yield t
