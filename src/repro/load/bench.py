"""Scale-bench job functions (importable by ``repro.parallel``).

Each function here is a self-contained job: JSON-able parameters in,
JSON-able dict out, safe to run in a forked worker.  They are the
units ``benchmarks/perf/scale_bench.py`` shards across the parallel
runner and the ``python -m repro load`` CLI calls inline.

Measurement split per job:

* **Simulated** numbers (offered/achieved rates, latency percentiles,
  shed counts) are bit-for-bit deterministic for a seed — byte-equal
  across runs, worker counts, and machines.
* **Wall-clock** numbers (build/run seconds, events/s) measure this
  machine — they are what the scale wall is made of, and what the
  fast-path-vs-reference A/B compares.
"""

from __future__ import annotations

import time

from repro.cluster import Cloud4Home
from repro.cluster.presets import scale_overlay
from repro.load.arrivals import DeterministicArrivals, PoissonArrivals
from repro.load.driver import OpenLoopDriver
from repro.load.scenario import KvScenario
from repro.sim import RandomSource
from repro.telemetry import memory_probe

__all__ = ["scale_point", "join_wall", "DEFAULT_MAX_INFLIGHT"]

#: Fixed total concurrency budget for the KV scenario: the shedding
#: cap that gives the open-loop curves their saturation knee (roughly
#: ``max_inflight / mean latency`` requests/second).
DEFAULT_MAX_INFLIGHT = 96


def scale_point(
    n_nodes: int,
    rate: float,
    duration_s: float = 5.0,
    seed: int = 0,
    n_keys: int = 512,
    get_fraction: float = 0.9,
    arrivals: str = "poisson",
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    drain_s: float = 10.0,
    fast_join: bool = True,
    ring_scan_reference: bool = False,
    probe_objects: bool = True,
) -> dict:
    """One open-loop measurement: ``n_nodes`` overlay at ``rate`` req/s.

    Returns ``{"sim": ..., "wall": ..., "memory": ...}`` where the
    ``sim`` block is deterministic for a seed and the rest measures
    this machine/run.
    """
    wall0 = time.perf_counter()
    c4h = Cloud4Home(
        scale_overlay(
            n_nodes,
            seed=seed,
            fast_join=fast_join,
            ring_scan_reference=ring_scan_reference,
        )
    )
    c4h.start(monitors=False, publish=False)
    build_wall_s = time.perf_counter() - wall0

    scenario = KvScenario(
        c4h,
        RandomSource(seed, "load-scenario"),
        n_keys=n_keys,
        get_fraction=get_fraction,
    )
    c4h.run(scenario.prepopulate())

    if arrivals == "poisson":
        process = PoissonArrivals(rate, RandomSource(seed, "load-arrivals"))
    elif arrivals == "deterministic":
        process = DeterministicArrivals(rate)
    else:
        raise ValueError(f"unknown arrival process {arrivals!r}")

    driver = OpenLoopDriver(
        c4h.sim,
        process,
        scenario.operation,
        metrics=c4h.metrics,
        node="load",
        max_inflight=max_inflight,
    )
    events_before = c4h.sim._event_seq
    wall1 = time.perf_counter()
    report = driver.run(duration_s, drain_s=drain_s)
    run_wall_s = time.perf_counter() - wall1
    events = c4h.sim._event_seq - events_before

    return {
        "n_nodes": n_nodes,
        "rate": rate,
        "seed": seed,
        "fast_join": fast_join,
        "ring_scan_reference": ring_scan_reference,
        "sim": {
            **report.as_dict(),
            "kv_misses": scenario.misses,
        },
        "wall": {
            "build_s": round(build_wall_s, 3),
            "run_s": round(run_wall_s, 3),
            "events": events,
            "events_per_s": round(events / run_wall_s) if run_wall_s else 0,
            "requests_per_wall_s": (
                round(report.completed / run_wall_s) if run_wall_s else 0
            ),
        },
        "memory": memory_probe(count_objects=probe_objects),
    }


def join_wall(n_nodes: int, seed: int = 0, fast_join: bool = True) -> dict:
    """Wall-clock cost of bringing up an ``n_nodes`` overlay.

    The A/B for the builder scale wall: ``fast_join=False`` is the
    paper-faithful sequential protocol join (O(N²) messages),
    ``fast_join=True`` the direct view construction.
    """
    wall0 = time.perf_counter()
    c4h = Cloud4Home(scale_overlay(n_nodes, seed=seed, fast_join=fast_join))
    built_wall_s = time.perf_counter() - wall0
    wall1 = time.perf_counter()
    c4h.start(monitors=False, publish=False)
    join_wall_s = time.perf_counter() - wall1
    return {
        "n_nodes": n_nodes,
        "seed": seed,
        "fast_join": fast_join,
        "device_build_s": round(built_wall_s, 3),
        "join_s": round(join_wall_s, 3),
        "total_s": round(built_wall_s + join_wall_s, 3),
        "memory": memory_probe(count_objects=False),
    }
