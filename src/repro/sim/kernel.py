"""Discrete-event simulation kernel.

The kernel follows the classic process-interaction style: simulation
*processes* are Python generators that ``yield`` :class:`Event` objects
and are resumed when those events trigger.  A central :class:`Simulator`
owns the event heap and the notion of *virtual time* (seconds, as a
float).

The kernel is intentionally small but complete: events with success and
failure, timeouts, processes (which are themselves events and therefore
composable), interrupts, and ``AnyOf`` / ``AllOf`` condition events.  It
is the substrate on which the network, virtualization, overlay, and
VStore++ layers of this reproduction are built.

Performance notes
-----------------
The event classes use ``__slots__`` (events are by far the most
allocated objects in a run), and :meth:`Simulator.run` drives a batched
inner loop that pops events straight off the heap without re-entering
:meth:`Simulator.step`'s guard logic per event.  ``step()`` is kept for
tests and debugging; both produce identical simulated behaviour.

Heap entries are compact ``(when, order, event)`` triples: ``order``
packs the same-timestamp priority and the monotonically increasing
event sequence number into one integer (``priority << ORDER_SHIFT |
seq``), so entries allocate one fewer tuple slot and same-time
comparisons settle on a single integer compare.  The ordering is
provably identical to the previous ``(when, priority, seq, event)``
form: for equal ``when``, the packed integer sorts by priority first
(its high bits) and by sequence number within a priority.

Example
-------
>>> sim = Simulator()
>>> def hello(sim):
...     yield sim.timeout(3.0)
...     return "done at %.1f" % sim.now
>>> proc = sim.process(hello(sim))
>>> sim.run()
>>> proc.value
'done at 3.0'
"""

from __future__ import annotations

import heapq
from types import GeneratorType
from typing import Any, Callable, Generator, Iterable, Optional

from repro.sim.errors import (
    EventAlreadyTriggered,
    Interrupt,
    SimulationError,
    StopSimulation,
)

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Simulator",
    "GATHER_PENDING",
]


class _GatherPending:
    """Sentinel for branches still running when a counted gather fires."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "GATHER_PENDING"


#: Placeholder in a ``gather(..., count=n)`` result for branches that had
#: not finished when the n-th success triggered the join.  The branches
#: themselves keep running in the background.
GATHER_PENDING = _GatherPending()

#: Ordering priorities for events scheduled at the same timestamp.
#: Urgent events (process resumptions caused by interrupts) run before
#: normal events so that interrupts take effect deterministically.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1

#: Bits reserved for the per-simulator event sequence number inside the
#: packed heap-order integer.  62 bits of sequence space (~4.6e18
#: events) keeps the packed value inside CPython's fast small-int
#: comparison path while leaving room for the priority in the top bits.
ORDER_SHIFT = 62


class Event:
    """A happening in simulated time that processes can wait for.

    An event starts *pending*, and is later *triggered* exactly once,
    either successfully (with a ``value``) or as a failure (with an
    exception).  Callbacks attached before the trigger run when the
    simulator pops the event from its queue.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled", "_defused")

    _PENDING = object()

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = Event._PENDING
        self._ok: Optional[bool] = None
        #: True once the event has been scheduled onto the event heap.
        self._scheduled = False
        #: A failed event nobody consumed is a programming error; the
        #: flag flips to True when the failure is delivered somewhere.
        self._defused = True

    # -- state inspection ------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has been given a value or an exception."""
        return self._value is not Event._PENDING

    @property
    def processed(self) -> bool:
        """True once the simulator has run the event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if not self.triggered:
            raise SimulationError("event has not been triggered yet")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or exception instance, if it failed)."""
        if self._value is Event._PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    # -- triggering ------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not Event._PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``.

        The exception is re-raised inside every process waiting on the
        event, unless it marked itself ``defused``.
        """
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self._value is not Event._PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self._defused = False
        self.sim._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (for chaining)."""
        if event._value is Event._PENDING:
            raise SimulationError(
                "cannot chain from an event that has not been triggered yet"
            )
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- internal --------------------------------------------------------

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after ``delay`` units of simulated time."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, delay=delay)

    @property
    def triggered(self) -> bool:
        # A Timeout carries its value from construction; it counts as
        # triggered only once its scheduled time has been reached.
        return self.processed


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process") -> None:
        super().__init__(sim)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        sim._schedule(self, priority=PRIORITY_URGENT)


class Process(Event):
    """A running simulation process wrapping a generator.

    The generator yields :class:`Event` objects; the process suspends on
    each and resumes with the event's value when it triggers.  A process
    is itself an event that succeeds with the generator's return value,
    so processes compose (a process can ``yield`` another process).
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, sim: "Simulator", generator: Generator) -> None:
        if type(generator) is not GeneratorType and (
            not hasattr(generator, "send") or not hasattr(generator, "throw")
        ):
            raise TypeError(f"process requires a generator, got {generator!r}")
        super().__init__(sim)
        self._generator = generator
        self._target: Optional[Event] = None
        Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on (if any)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process is an error; interrupting a process
        that is waiting on an event detaches it from that event.
        """
        if not self.is_alive:
            raise SimulationError("cannot interrupt a dead process")
        if self._target is self:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.sim)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._deliver_interrupt)
        self.sim._schedule(event, priority=PRIORITY_URGENT)

    def _deliver_interrupt(self, event: Event) -> None:
        """Deliver a scheduled interrupt, detaching from the current wait.

        Detaching happens at delivery time (not when the interrupt was
        requested) because the victim may not even have started running
        yet, or may have moved to a different wait target in between.
        If the victim died in the meantime the interrupt is dropped.
        """
        if self.triggered:
            return
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        self._resume(event)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        if self._value is not Event._PENDING:
            # A stale wake-up (e.g. an event we detached from when an
            # interrupt arrived, or a wake-up racing with process death).
            return
        sim = self.sim
        generator = self._generator
        sim._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = generator.send(event._value)
                else:
                    # Mark the failure as handled: it is being delivered.
                    event._defused = True
                    next_event = generator.throw(event._value)
            except StopIteration as stop:
                self._target = None
                sim._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self._target = None
                sim._active_process = None
                self.fail(exc)
                return

            if not isinstance(next_event, Event):
                # Deliver the error exactly once, through the normal
                # failed-event path: the generator may catch it and
                # continue; if it does not, the process fails with it
                # (and the failure surfaces like any unconsumed one).
                error = SimulationError(
                    f"process yielded a non-event: {next_event!r}"
                )
                event = Event(sim)
                event._ok = False
                event._value = error
                continue

            if next_event.callbacks is not None:
                # Event still pending or scheduled: wait for it.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Event already processed: loop and deliver immediately.
            event = next_event

        sim._active_process = None


class _Condition(Event):
    """Base class for ``AnyOf`` / ``AllOf`` composite events."""

    __slots__ = ("events", "_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        self._done = 0
        for event in self.events:
            if event.sim is not sim:
                raise SimulationError("cannot mix events from different simulators")
        for event in self.events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)
        if not self.events and not self.triggered:
            self.succeed({})

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._done += 1
        if self._satisfied():
            self.succeed(
                {e: e._value for e in self.events if e.triggered and e._ok}
            )


class AnyOf(_Condition):
    """Succeeds as soon as any one of ``events`` succeeds.

    The value is a dict mapping each already-succeeded event to its
    value (there may be more than one if several trigger at the same
    instant).
    """

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._done >= 1


class AllOf(_Condition):
    """Succeeds once all of ``events`` have succeeded."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._done >= len(self.events)


class Simulator:
    """The event loop: owns virtual time and the pending-event heap."""

    def __init__(self, start_time: float = 0.0, batched: bool = True) -> None:
        self._now = float(start_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._event_seq = 0
        self._active_process: Optional[Process] = None
        #: When False, :meth:`run` dispatches through :meth:`step` for
        #: every event (the legacy loop, kept as the perf baseline).
        self._batched = bool(batched)
        #: The attached :class:`repro.telemetry.Telemetry` plane, or
        #: None (the default — instrumented layers guard every span
        #: emit behind a single ``is not None`` check).
        self.telemetry = None

    # -- time ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None between events)."""
        return self._active_process

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event owned by this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process from ``generator`` and return it."""
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that succeeds when any of ``events`` succeeds."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that succeeds when every one of ``events`` succeeds."""
        return AllOf(self, events)

    def gather(
        self,
        generators: Iterable["Generator | Process"],
        count: Optional[int] = None,
        return_exceptions: bool = False,
    ) -> Event:
        """Scatter-gather: run ``generators`` concurrently, join them.

        Each element is spawned as a :class:`Process` (existing processes
        pass through) at the current instant, so their simulated costs
        overlap instead of accumulating — the total is the max of the
        branches, not the sum.  The returned event succeeds with the list
        of results *in submission order*, regardless of the order in
        which the branches finish.

        By default, if any branch fails, the gather fails with that
        exception (the first one, in trigger order).  The remaining
        branches keep running, and any further failures among them are
        defused so they do not take the whole simulation down.

        ``return_exceptions=True`` switches to per-branch outcomes: a
        failed branch contributes its exception *instance* to the result
        list instead of poisoning the join, so one dead source cannot
        sink the other pulls — the caller inspects each slot.

        ``count=n`` requests first-n-of-k early completion: the join
        triggers as soon as ``n`` branches have *succeeded* (erasure-
        decode style — any k of k+m chunks suffice), with still-running
        branches reported as :data:`GATHER_PENDING`.  Those branches keep
        running in the background and their late failures are defused.
        When fewer than ``n`` successes remain possible the join triggers
        once every branch has finished (with ``return_exceptions=False``
        the first failure still fails the join immediately), so a counted
        gather always completes.
        """
        if count is not None and count < 0:
            raise ValueError(f"count must be non-negative, got {count!r}")
        procs = [
            gen if isinstance(gen, Process) else self.process(gen)
            for gen in generators
        ]
        if count is not None or return_exceptions:
            return self._gather_partial(procs, count, return_exceptions)
        result = Event(self)
        joined = AllOf(self, procs)

        def _finish(event: Event) -> None:
            if event._ok:
                result.succeed([proc.value for proc in procs])
            else:
                event._defused = True
                result.fail(event.value)

        joined.callbacks.append(_finish)

        def _absorb_late_failure(event: Event) -> None:
            # A branch that fails after the gather already failed has
            # nobody left to consume its exception.
            if not event._ok and result.triggered:
                event._defused = True

        for proc in procs:
            if proc.callbacks is not None:
                proc.callbacks.append(_absorb_late_failure)
        return result

    def _gather_partial(
        self,
        procs: list["Process"],
        count: Optional[int],
        return_exceptions: bool,
    ) -> Event:
        """Join machinery behind gather's per-branch / counted modes.

        Kept separate from the default path so the legacy all-or-fail
        join keeps its exact event sequence (the parallel-decision
        goldens pin it).
        """
        result = Event(self)
        values: list[Any] = [GATHER_PENDING] * len(procs)
        # Mutable counters shared by the per-branch closures.
        state = {"successes": 0, "done": 0}
        needed = count if count is not None else len(procs)

        def _maybe_finish() -> None:
            if result.triggered:
                return
            if state["successes"] >= needed or state["done"] == len(procs):
                result.succeed(list(values))

        def _on_branch(index: int, proc: "Process"):
            def _cb(event: Event) -> None:
                if not event._ok:
                    # Consumed here either way: as a recorded outcome,
                    # as the join's failure, or as a late straggler.
                    event._defused = True
                if result.triggered:
                    return
                state["done"] += 1
                if event._ok:
                    state["successes"] += 1
                    values[index] = event._value
                elif return_exceptions:
                    values[index] = event._value
                else:
                    result.fail(event._value)
                    return
                _maybe_finish()

            return _cb

        for i, proc in enumerate(procs):
            if proc.callbacks is None:
                _on_branch(i, proc)(proc)
            else:
                proc.callbacks.append(_on_branch(i, proc))
        if not result.triggered and (not procs or needed == 0):
            result.succeed(list(values))
        return result

    # -- scheduling --------------------------------------------------------

    def _schedule(
        self, event: Event, delay: float = 0.0, priority: int = PRIORITY_NORMAL
    ) -> None:
        if event._scheduled:
            raise EventAlreadyTriggered(f"{event!r} already scheduled")
        event._scheduled = True
        seq = self._event_seq
        self._event_seq = seq + 1
        heapq.heappush(
            self._queue, (self._now + delay, (priority << ORDER_SHIFT) | seq, event)
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        when, _, event = heapq.heappop(self._queue)
        self._now = when
        event._run_callbacks()
        # A failed event nobody consumed is a programming error; surface
        # it instead of silently dropping the exception.
        if event._ok is False and not event._defused:
            raise event._value

    def run_batch(self, max_events: int) -> int:
        """Process up to ``max_events`` events on a batched inner loop.

        Identical simulated behaviour to calling :meth:`step` that many
        times, but pops events straight off the heap without re-entering
        the per-call guard logic.  Returns the number of events actually
        processed (less than ``max_events`` once the queue drains).
        """
        queue = self._queue
        pop = heapq.heappop
        processed = 0
        while queue and processed < max_events:
            when, _, event = pop(queue)
            self._now = when
            callbacks, event.callbacks = event.callbacks, None
            for callback in callbacks:
                callback(event)
            if event._ok is False and not event._defused:
                raise event._value
            processed += 1
        return processed

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a time
        (run until the clock reaches it), or an :class:`Event` (run until
        it triggers, returning its value).
        """
        stop_event: Optional[Event] = None
        if isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:
                if stop_event.ok:
                    return stop_event.value
                raise stop_event.value

            def _stop(event: Event) -> None:
                if event._ok:
                    raise StopSimulation(event.value)
                # Propagate the failure to the run() caller.
                event._defused = True
                raise event._value

            stop_event.callbacks.append(_stop)
        elif until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(
                    f"until={horizon!r} is in the past (now={self._now!r})"
                )
            marker = Event(self)
            marker._ok = True
            marker._value = None

            def _stop_at_horizon(event: Event) -> None:
                raise StopSimulation(None)

            marker.callbacks.append(_stop_at_horizon)
            self._schedule(marker, delay=horizon - self._now, priority=PRIORITY_URGENT)

        # Batched inner loop: equivalent to `while queue: self.step()`
        # but without the per-event method-call and guard overhead.
        queue = self._queue
        pop = heapq.heappop
        try:
            if self._batched:
                while queue:
                    when, _, event = pop(queue)
                    self._now = when
                    callbacks, event.callbacks = event.callbacks, None
                    for callback in callbacks:
                        callback(event)
                    if event._ok is False and not event._defused:
                        raise event._value
            else:
                while queue:
                    self.step()
        except StopSimulation as stop:
            return stop.value

        if stop_event is not None and not stop_event.triggered:
            raise SimulationError(
                "run(until=event) finished without the event triggering"
            )
        return None
