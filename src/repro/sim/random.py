"""Seeded randomness helpers shared by all stochastic components.

Every stochastic component in the reproduction draws from a
:class:`RandomSource` so that experiments are reproducible end to end
from a single seed, and so that independent components can be given
independent sub-streams (``source.fork(name)``).
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

T = TypeVar("T")

__all__ = ["RandomSource"]


class RandomSource:
    """A named, forkable pseudo-random stream.

    Forking derives a child stream whose seed is a stable hash of the
    parent seed and the child name, so adding a new consumer never
    perturbs the draws seen by existing consumers.
    """

    def __init__(self, seed: int = 0, name: str = "root") -> None:
        self.seed = int(seed)
        self.name = name
        self._rng = random.Random(self._derive(self.seed, name))

    @staticmethod
    def _derive(seed: int, name: str) -> int:
        h = 1469598103934665603  # FNV-1a 64-bit offset basis
        for byte in f"{seed}:{name}".encode():
            h ^= byte
            h = (h * 1099511628211) & 0xFFFFFFFFFFFFFFFF
        return h

    def fork(self, name: str) -> "RandomSource":
        """Create an independent child stream identified by ``name``."""
        return RandomSource(self._derive(self.seed, self.name), name)

    # -- draws ---------------------------------------------------------

    def uniform(self, low: float, high: float) -> float:
        return self._rng.uniform(low, high)

    def normal(self, mean: float, stddev: float) -> float:
        return self._rng.gauss(mean, stddev)

    def lognormal(self, mean: float, sigma: float) -> float:
        return self._rng.lognormvariate(mean, sigma)

    def exponential(self, rate: float) -> float:
        if rate <= 0:
            raise ValueError("exponential rate must be positive")
        return self._rng.expovariate(rate)

    def pareto(self, alpha: float, scale: float = 1.0) -> float:
        if alpha <= 0:
            raise ValueError("pareto alpha must be positive")
        return scale * self._rng.paretovariate(alpha)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high]."""
        return self._rng.randint(low, high)

    def random(self) -> float:
        return self._rng.random()

    def choice(self, items: Sequence[T]) -> T:
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return self._rng.choice(items)

    def shuffle(self, items: list) -> None:
        self._rng.shuffle(items)

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        return self._rng.sample(items, k)

    def weighted_choice(
        self, items: Sequence[T], weights: Sequence[float]
    ) -> T:
        return self._rng.choices(items, weights=weights, k=1)[0]

    def getrandbits(self, bits: int) -> int:
        return self._rng.getrandbits(bits)

    def jittered(self, base: float, fraction: float) -> float:
        """``base`` perturbed multiplicatively by up to ±``fraction``.

        Used for latency jitter; the result is never negative.
        """
        if fraction < 0:
            raise ValueError("jitter fraction must be non-negative")
        return max(0.0, base * (1.0 + self._rng.uniform(-fraction, fraction)))
