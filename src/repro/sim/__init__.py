"""Discrete-event simulation kernel underlying the Cloud4Home reproduction.

Public surface:

* :class:`Simulator` — the event loop and virtual clock.
* :class:`Event`, :class:`Timeout`, :class:`Process`, :class:`AnyOf`,
  :class:`AllOf` — the waitable primitives.
* :class:`Resource`, :class:`Container`, :class:`Store` — shared-resource
  primitives.
* :class:`RandomSource` — seeded, forkable randomness.
* :class:`Interrupt`, :class:`SimulationError` — exceptions.
"""

from repro.sim.errors import Interrupt, SimulationError
from repro.sim.kernel import (
    GATHER_PENDING,
    AllOf,
    AnyOf,
    Event,
    Process,
    Simulator,
    Timeout,
)
from repro.sim.random import RandomSource
from repro.sim.resources import Container, Request, Resource, Store
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "GATHER_PENDING",
    "Resource",
    "Request",
    "Container",
    "Store",
    "RandomSource",
    "Tracer",
    "TraceEvent",
    "Interrupt",
    "SimulationError",
]
