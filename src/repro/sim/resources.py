"""Shared-resource primitives for the simulation kernel.

Three primitives cover everything the upper layers need:

* :class:`Resource` — a counted resource (e.g. CPU cores, a link's
  transfer slots).  Processes ``yield resource.request()`` and must
  ``release()`` when done; ``resource.use(duration)`` wraps both.
* :class:`Container` — a continuous quantity (e.g. bytes of disk in a
  storage bin) with ``put`` / ``get`` amounts.
* :class:`Store` — a FIFO queue of arbitrary items (used as message
  channels between simulated nodes and domains).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Optional

from repro.sim.errors import SimulationError
from repro.sim.kernel import Event, Simulator

__all__ = ["Request", "Resource", "Container", "Store"]


class Request(Event):
    """A pending claim on a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.sim)
        self.resource = resource
        resource._do_request(self)

    def release(self) -> None:
        """Give the slot back (or withdraw a not-yet-granted claim)."""
        self.resource._do_release(self)


class Resource:
    """A resource with ``capacity`` identical slots, granted FIFO."""

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.sim = sim
        self.capacity = capacity
        self._users: list[Request] = []
        self._waiting: deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Request:
        """Claim a slot; the returned event triggers when granted."""
        return Request(self)

    def release(self, request: Request) -> None:
        """Release a previously granted slot."""
        request.release()

    def use(self, duration: float) -> Generator:
        """Process helper: hold one slot for ``duration`` seconds."""
        req = self.request()
        yield req
        try:
            yield self.sim.timeout(duration)
        finally:
            req.release()

    # -- internal ----------------------------------------------------------

    def _do_request(self, request: Request) -> None:
        if len(self._users) < self.capacity:
            self._users.append(request)
            request.succeed(request)
        else:
            self._waiting.append(request)

    def _do_release(self, request: Request) -> None:
        if request in self._users:
            self._users.remove(request)
            self._grant_next()
        else:
            try:
                self._waiting.remove(request)
            except ValueError:
                raise SimulationError(
                    "releasing a request unknown to this resource"
                ) from None

    def _grant_next(self) -> None:
        while self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.popleft()
            self._users.append(nxt)
            nxt.succeed(nxt)


class Container:
    """A continuous quantity with a maximum level.

    ``put``/``get`` are immediate bookkeeping operations (storage bins do
    not need blocking semantics in this system); attempting to exceed
    capacity or go below zero raises :class:`SimulationError`.
    """

    def __init__(
        self, sim: Simulator, capacity: float = float("inf"), init: float = 0.0
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init {init!r} outside [0, {capacity!r}]")
        self.sim = sim
        self.capacity = capacity
        self._level = float(init)

    @property
    def level(self) -> float:
        return self._level

    @property
    def free(self) -> float:
        return self.capacity - self._level

    def put(self, amount: float) -> None:
        if amount < 0:
            raise ValueError("put amount must be non-negative")
        if self._level + amount > self.capacity + 1e-9:
            raise SimulationError(
                f"container overflow: level {self._level} + {amount} "
                f"> capacity {self.capacity}"
            )
        self._level += amount

    def get(self, amount: float) -> None:
        if amount < 0:
            raise ValueError("get amount must be non-negative")
        if amount > self._level + 1e-9:
            raise SimulationError(
                f"container underflow: level {self._level} - {amount} < 0"
            )
        self._level -= amount


class Store:
    """An unbounded FIFO queue of items with blocking ``get``.

    ``put(item)`` never blocks.  ``get()`` returns an event that triggers
    with the next item (immediately if one is queued).  This is the
    message-channel primitive used between simulated domains and nodes.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._consumer: Optional[Any] = None

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Enqueue ``item``, waking the oldest waiting getter if any.

        With a consumer installed (see :meth:`set_consumer`) and no
        waiting getters, the item is handed to the consumer callback
        synchronously instead of being queued.
        """
        if self._getters:
            self._getters.popleft().succeed(item)
        elif self._consumer is not None:
            self._consumer(item)
        else:
            self._items.append(item)

    def set_consumer(self, consumer: Optional[Any]) -> None:
        """Install (or clear, with ``None``) a push-mode consumer.

        The consumer is called synchronously with each item as it is
        put; items already queued are drained into it immediately.
        This is the fast path for always-on message dispatchers — it
        saves the get-event round trip per item that the pull interface
        costs.  Getters created while a consumer is installed still
        take priority for subsequently put items.
        """
        self._consumer = consumer
        if consumer is not None:
            while self._items:
                consumer(self._items.popleft())

    def get(self) -> Event:
        """Event that triggers with the next queued item."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def cancel(self, event: Event) -> None:
        """Withdraw a pending ``get`` so no item is consumed by it.

        Needed when the process that was waiting is interrupted (e.g. a
        message dispatcher shutting down); otherwise the abandoned
        getter would silently swallow the next item.  Cancelling an
        event that is not waiting is a no-op.
        """
        try:
            self._getters.remove(event)
        except ValueError:
            pass

    def peek(self) -> Optional[Any]:
        """The next item without removing it, or None if empty."""
        return self._items[0] if self._items else None
