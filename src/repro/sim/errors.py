"""Exception types raised by the discrete-event simulation kernel."""

from __future__ import annotations

from typing import Any


class SimulationError(Exception):
    """Base class for all simulation-kernel errors."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Simulator.run` at a target event.

    The exception carries the value of the event that caused the stop so
    that ``run(until=event)`` can return it.
    """

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class EventAlreadyTriggered(SimulationError):
    """An event was triggered (succeeded or failed) more than once."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt` and typically explains why the interrupt
    happened (e.g. a node crash or a cancelled transfer).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause
