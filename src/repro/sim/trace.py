"""Structured event tracing for simulations.

A :class:`Tracer` records typed, timestamped events (operation starts
and ends, placement decisions, fault injections — whatever a component
emits).  Traces make multi-layer behaviour debuggable: after a run you
can ask "what happened between t=4 and t=6 on netbook2?" instead of
re-reading printouts.  Export to a list of dicts keeps it portable
(JSON-ready, pandas-ready).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from repro.sim.kernel import Simulator

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded happening."""

    at: float
    kind: str
    source: str
    detail: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "at": self.at,
            "kind": self.kind,
            "source": self.source,
            **self.detail,
        }


class Tracer:
    """Collects :class:`TraceEvent` records from one simulation."""

    def __init__(self, sim: Simulator, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        #: Bounded ring buffer: ``deque(maxlen=capacity)`` evicts the
        #: oldest event in O(1) (the old list-based ``pop(0)`` was O(n)
        #: per drop, quadratic over a long capped run).
        self.events: "deque[TraceEvent]" = deque(maxlen=capacity)
        self.dropped = 0
        #: Live subscribers: called with each event as it is recorded.
        #: A subscriber that raises is dropped (with a note in the
        #: trace) rather than killing the simulation.
        self.subscribers: list[Callable[[TraceEvent], None]] = []

    def emit(self, kind: str, source: str, **detail: Any) -> TraceEvent:
        """Record an event at the current simulation time."""
        event = TraceEvent(self.sim.now, kind, source, dict(detail))
        if self.capacity is not None and len(self.events) >= self.capacity:
            # The deque evicts the oldest on append; count it first so
            # ``dropped`` stays exact.
            self.dropped += 1
        self.events.append(event)
        if self.subscribers:
            bad = []
            for subscriber in self.subscribers:
                try:
                    subscriber(event)
                except Exception as exc:
                    bad.append((subscriber, exc))
            for subscriber, exc in bad:
                self.subscribers.remove(subscriber)
                self.events.append(
                    TraceEvent(
                        self.sim.now,
                        "tracer.subscriber-error",
                        "tracer",
                        {"error": f"{type(exc).__name__}: {exc}"},
                    )
                )
        return event

    def span(self, kind: str, source: str, **detail: Any):
        """Decorating generator: traces start/end/error around a process.

        Usage::

            result = yield from tracer.span("fetch", node.name,
                                            obj="x.avi")(node.fetch_object("x.avi"))
        """

        def wrap(generator):
            self.emit(f"{kind}.start", source, **detail)
            try:
                result = yield from generator
            except Exception as exc:
                self.emit(f"{kind}.error", source, error=str(exc), **detail)
                raise
            self.emit(f"{kind}.end", source, **detail)
            return result

        return wrap

    # -- querying ----------------------------------------------------------

    def select(
        self,
        kind: Optional[str] = None,
        source: Optional[str] = None,
        start: float = float("-inf"),
        end: float = float("inf"),
    ) -> Iterator[TraceEvent]:
        """Events matching the filters, in time order."""
        for event in self.events:
            if kind is not None and not event.kind.startswith(kind):
                continue
            if source is not None and event.source != source:
                continue
            if not start <= event.at <= end:
                continue
            yield event

    def counts(self) -> dict[str, int]:
        """Event counts by kind."""
        out: dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def export(self) -> list[dict]:
        """The whole trace as JSON-ready dicts."""
        return [event.as_dict() for event in self.events]

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0
