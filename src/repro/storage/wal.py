"""Append-only simulated write-ahead log with snapshot+compaction.

Every mutation of a :class:`WalTable` appends a :class:`WalEntry` to
the backend's log; when the log reaches ``snapshot_every`` entries the
*synced* prefix is folded into a compacted per-table snapshot and
truncated.  Replay rebuilds every table from snapshot + log in order.

The log is plain Python state — a *model* of a disk journal, never a
real file (SIM108 enforces this).  What makes it "durable" is the
crash contract: :meth:`WalStore.crash` wipes the tables' live dicts
but keeps snapshot and synced log entries, exactly the state a machine
finds on its platter after a power cycle.

``WalStore`` itself idealizes appends as instantly durable and free —
``synced`` always tracks the log tip — so recovery behaviour can be
studied without a latency model.  :class:`repro.storage.SimDiskStore`
subclasses this with interval fsync and real (simulated) costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.storage.interface import IStore, RecoveryReport, entry_bytes

__all__ = ["WalStore", "WalTable", "WalEntry"]


@dataclass
class WalEntry:
    """One journaled mutation."""

    op: str  # "put" | "del"
    table: str
    key: str
    value: Any  # encoded payload for puts, None for deletes
    size: int  # approximate serialized bytes


class WalTable(dict):
    """A dict that journals every mutation to its backend.

    Reads are plain dict reads (no overhead); writes go through
    ``__setitem__`` / ``__delitem__`` / ``pop`` / ``clear`` /
    ``update`` / ``setdefault``, all of which append to the WAL.
    Recovery repopulates via ``dict.__setitem__`` directly so replay
    never re-journals what it reads back.
    """

    __slots__ = ("_store", "_name")

    def __init__(self, store: "WalStore", name: str) -> None:
        super().__init__()
        self._store = store
        self._name = name

    def __setitem__(self, key, value) -> None:
        dict.__setitem__(self, key, value)
        self._store.append("put", self._name, key, value)

    def __delitem__(self, key) -> None:
        dict.__delitem__(self, key)
        self._store.append("del", self._name, key, None)

    def pop(self, key, *default):
        if key in self:
            value = dict.pop(self, key)
            self._store.append("del", self._name, key, None)
            return value
        if default:
            return default[0]
        raise KeyError(key)

    def popitem(self):
        key, value = dict.popitem(self)
        self._store.append("del", self._name, key, None)
        return key, value

    def clear(self) -> None:
        # A *logical* clear: journaled deletes.  RAM loss at crash time
        # goes through dict.clear(table) instead and journals nothing.
        for key in list(self):
            del self[key]

    def update(self, *args, **kwargs) -> None:
        for key, value in dict(*args, **kwargs).items():
            self[key] = value

    def setdefault(self, key, default=None):
        if key not in self:
            self[key] = default
        return dict.__getitem__(self, key)


class WalStore(IStore):
    """Durable backend: tables journaled to an append-only log."""

    kind = "wal"
    durable = True

    def __init__(
        self, node: str = "", metrics=None, snapshot_every: int = 256
    ) -> None:
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        super().__init__(node=node, metrics=metrics)
        self.snapshot_every = snapshot_every
        self.log: list[WalEntry] = []
        #: Compacted durable state: table -> key -> encoded payload.
        self.snapshot: dict[str, dict[str, Any]] = {}
        #: Log entries guaranteed durable (== tip for the idealized WAL).
        self.synced = 0
        self.appends = 0
        self.compactions = 0
        self._snapshot_bytes = 0.0

    def _make_table(self, name: str) -> dict:
        return WalTable(self, name)

    # -- journaling ---------------------------------------------------------

    def append(self, op: str, table: str, key: str, value: Any) -> None:
        """Journal one mutation (called by the tables)."""
        encoded = value.wire() if hasattr(value, "wire") else value
        size = entry_bytes(encoded) if op == "put" else 24
        self.log.append(WalEntry(op, table, key, encoded, size))
        self.appends += 1
        self._count("storage.wal.appends")
        self._on_append(size)
        if len(self.log) >= self.snapshot_every:
            self.compact()

    def _on_append(self, size: int) -> None:
        """Durability policy hook: the idealized WAL syncs every append."""
        self.synced = len(self.log)

    def compact(self) -> int:
        """Fold the synced log prefix into the snapshot; return entries
        folded.  Unsynced tail entries stay in the log — they are not
        durable yet, so they must not contaminate the durable snapshot.
        """
        n = self.synced
        if n == 0:
            return 0
        for entry in self.log[:n]:
            tbl = self.snapshot.setdefault(entry.table, {})
            if entry.op == "put":
                tbl[entry.key] = entry.value
            else:
                tbl.pop(entry.key, None)
        del self.log[:n]
        self.synced = 0
        self.compactions += 1
        self._snapshot_bytes = float(
            sum(
                entry_bytes(value)
                for tbl in self.snapshot.values()
                for value in tbl.values()
            )
        )
        self._count("storage.wal.compactions")
        return n

    # -- crash / recovery ---------------------------------------------------

    def crash(self) -> dict:
        dropped = len(self.log) - self.synced
        if dropped > 0:
            del self.log[self.synced :]
        report = super().crash()
        report["lost_ops"] = dropped
        if dropped:
            self._count("storage.wal.lost_ops", dropped)
        return report

    def replay(self) -> RecoveryReport:
        """Rebuild every table from snapshot + synced log, in order.

        Restored keys land in each table via ``dict.__setitem__`` (no
        re-journaling) in sorted-key order, so the rebuilt dicts have
        a deterministic iteration order regardless of write history.
        """
        report = RecoveryReport()
        staged: dict[str, dict[str, Any]] = {
            name: dict(values) for name, values in self.snapshot.items()
        }
        report.snapshot_records = sum(len(v) for v in staged.values())
        for entry in self.log[: self.synced]:
            tbl = staged.setdefault(entry.table, {})
            if entry.op == "put":
                tbl[entry.key] = entry.value
            else:
                tbl.pop(entry.key, None)
            report.ops_replayed += 1
            report.bytes_replayed += entry.size
        report.bytes_replayed += self._snapshot_bytes
        for name in sorted(staged):
            values = staged[name]
            table = self.table(name)
            dict.clear(table)
            decode = self._decoders.get(name)
            for key in sorted(values):
                value = values[key]
                dict.__setitem__(
                    table, key, decode(value) if decode is not None else value
                )
            report.tables[name] = len(values)
            report.records += len(values)
        if report.records:
            self._count("storage.replay.records", report.records)
        if report.ops_replayed:
            self._count("storage.replay.ops", report.ops_replayed)
        return report

    # -- observability ------------------------------------------------------

    def stats(self) -> dict:
        data = super().stats()
        data.update(
            {
                "appends": self.appends,
                "compactions": self.compactions,
                "log_entries": len(self.log),
                "synced": self.synced,
                "snapshot_records": sum(len(v) for v in self.snapshot.values()),
            }
        )
        return data
