"""Pluggable per-device storage backends (the durability layer).

Every KV record and object-bin manifest a device holds lives in one
:class:`IStore` backend.  Three implementations:

* :class:`MemStore` — plain dictionaries, nothing survives a crash
  (the honest model of today's RAM-only node, and the empty-rejoin
  baseline the durability bench measures against);
* :class:`WalStore` — an append-only *simulated* write-ahead log with
  snapshot+compaction; appends are idealized (durable instantly, no
  latency), so recovery semantics can be studied in isolation;
* :class:`SimDiskStore` — the WAL plus a seeded disk cost model:
  appends accumulate until a background fsync flushes them (charging
  write-bandwidth + fsync latency through the event kernel), and
  replay charges read bandwidth.  Unsynced tail entries are lost on
  crash, exactly like a real interval-fsync'd log.

The WAL is simulated state, never a real file — simlint rule SIM108
forbids real filesystem I/O in this package.  Backends are selected by
``ClusterConfig(storage=...)`` ("off" | "mem" | "wal" | "disk") and
tuned via :class:`repro.cluster.StorageConfig`.
"""

from repro.storage.interface import IStore, MemStore, RecoveryReport, entry_bytes
from repro.storage.wal import WalEntry, WalStore, WalTable
from repro.storage.disk import SimDiskStore, StorageFlusher

__all__ = [
    "IStore",
    "MemStore",
    "WalStore",
    "WalTable",
    "WalEntry",
    "SimDiskStore",
    "StorageFlusher",
    "RecoveryReport",
    "entry_bytes",
    "make_store",
]


def make_store(
    kind: str,
    node: str = "",
    metrics=None,
    snapshot_every: int = 256,
    write_mb_s: float = 40.0,
    fsync_s: float = 0.005,
    replay_mb_s: float = 80.0,
    jitter: float = 0.10,
    rng=None,
) -> IStore:
    """Build a backend by name ("mem", "wal", or "disk")."""
    if kind == "mem":
        return MemStore(node=node, metrics=metrics)
    if kind == "wal":
        return WalStore(node=node, metrics=metrics, snapshot_every=snapshot_every)
    if kind == "disk":
        return SimDiskStore(
            node=node,
            metrics=metrics,
            snapshot_every=snapshot_every,
            write_mb_s=write_mb_s,
            fsync_s=fsync_s,
            replay_mb_s=replay_mb_s,
            jitter=jitter,
            rng=rng,
        )
    raise ValueError(
        f"unknown storage backend {kind!r} (expected 'mem', 'wal', or 'disk')"
    )
