"""The IStore backend interface and the volatile MemStore.

A backend owns a set of named *tables* — dict-like key spaces the
consuming layers mutate directly (``table[key] = value``, ``del
table[key]``, ``table.pop(key)``).  The KV store binds
``kv.primary`` / ``kv.replicas`` / ``kv.tombstones``; the vstore node
binds ``bin.mandatory`` / ``bin.voluntary`` manifests.  Durable
backends intercept every mutation and journal it; :class:`MemStore`
hands out plain dictionaries, so the default deployment pays nothing.

The crash/recovery lifecycle is three calls:

* :meth:`IStore.crash` — power loss: every table's live dict is wiped
  (without journaling the wipes — this is RAM vanishing, not deletes),
  and durable backends drop any unsynced log tail;
* :meth:`IStore.replay` — rebuild every table from the durable state,
  returning a :class:`RecoveryReport`;
* :meth:`IStore.replay_cost_s` — the simulated seconds that replay
  should charge (zero except for the disk cost model).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["IStore", "MemStore", "RecoveryReport", "entry_bytes"]


def entry_bytes(value: Any, overhead: int = 32) -> int:
    """Approximate serialized size of one journal payload, bytes."""
    try:
        return len(json.dumps(value, default=str)) + overhead
    except (TypeError, ValueError):
        return overhead + 256


@dataclass
class RecoveryReport:
    """What :meth:`IStore.replay` restored."""

    #: Live records restored across all tables.
    records: int = 0
    #: Records that came straight from the compacted snapshot.
    snapshot_records: int = 0
    #: Log entries applied on top of the snapshot.
    ops_replayed: int = 0
    #: Serialized bytes read back (snapshot + log), for the cost model.
    bytes_replayed: float = 0.0
    #: Per-table restored record counts.
    tables: dict = field(default_factory=dict)


class IStore:
    """Base backend: named tables plus the crash/recovery lifecycle."""

    #: Backend name as selected by ``ClusterConfig.storage``.
    kind = "abstract"
    #: True when state survives :meth:`crash` (WAL-backed stores).
    durable = False

    def __init__(self, node: str = "", metrics=None) -> None:
        self.node = node
        self.metrics = metrics
        self._tables: dict[str, dict] = {}
        self._decoders: dict[str, Callable[[Any], Any]] = {}
        #: Lifetime crash count (observability).
        self.crashes = 0

    def table(self, name: str, decode: Optional[Callable[[Any], Any]] = None) -> dict:
        """Get-or-create the named table.

        ``decode`` maps a journaled wire payload back to the live
        object on replay (e.g. ``Record.from_wire``); values that are
        already JSON-shaped need none.
        """
        tbl = self._tables.get(name)
        if tbl is None:
            tbl = self._tables[name] = self._make_table(name)
        if decode is not None:
            self._decoders[name] = decode
        return tbl

    def _make_table(self, name: str) -> dict:
        return {}

    # -- crash / recovery lifecycle ----------------------------------------

    def crash(self) -> dict:
        """Power loss: drop every volatile structure.

        Returns ``{"lost_records": n, "lost_ops": m}`` — live entries
        wiped from the tables and journal appends that never reached
        durable state (always zero for non-durable backends, which
        have no journal to lose a tail from).
        """
        lost = sum(len(tbl) for tbl in self._tables.values())
        for tbl in self._tables.values():
            dict.clear(tbl)
        self.crashes += 1
        self._count("storage.crashes")
        return {"lost_records": lost, "lost_ops": 0}

    def replay(self) -> RecoveryReport:
        """Rebuild the tables from durable state (nothing, here)."""
        return RecoveryReport()

    def replay_cost_s(self, report: RecoveryReport) -> float:
        """Simulated seconds a replay of ``report`` should charge."""
        return 0.0

    # -- observability ------------------------------------------------------

    def stats(self) -> dict:
        """JSON-ready backend summary."""
        return {
            "kind": self.kind,
            "durable": self.durable,
            "tables": {name: len(tbl) for name, tbl in sorted(self._tables.items())},
            "crashes": self.crashes,
        }

    def _count(self, metric: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.counter(metric, node=self.node).inc(amount)


class MemStore(IStore):
    """Today's behaviour as an explicit backend: plain dictionaries.

    Nothing survives :meth:`crash` — a revived node rejoins empty and
    the resilience layer must re-replicate its payloads.  This is the
    baseline the durability bench contrasts :class:`~repro.storage.WalStore`
    against.
    """

    kind = "mem"
    durable = False
