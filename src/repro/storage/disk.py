"""The WAL with a seeded simulated-disk cost model.

:class:`SimDiskStore` keeps :class:`~repro.storage.WalStore`'s journal
semantics but makes durability cost something: appends land in an OS
buffer (``pending_bytes``) and only become durable when a flush charges
``pending / write_mb_s + fsync_s`` simulated seconds through the event
kernel.  The :class:`StorageFlusher` is that background fsync process —
one per device, started/stopped with the monitors, interrupted by a
crash mid-flush exactly like a real box losing power with dirty pages.

Consequences the durability tests pin down:

* entries appended since the last completed flush are **lost** on
  crash (``crash()`` reports them as ``lost_ops``);
* replay charges ``bytes_replayed / replay_mb_s + fsync_s``;
* all latencies take seeded multiplicative jitter from a forked
  :class:`repro.sim.RandomSource`, so runs stay bit-for-bit
  repeatable.
"""

from __future__ import annotations

from typing import Optional

from repro.sim import Interrupt
from repro.storage.interface import RecoveryReport
from repro.storage.wal import WalStore

__all__ = ["SimDiskStore", "StorageFlusher"]

MB = 1024 * 1024


class SimDiskStore(WalStore):
    """WAL whose durability is charged by a disk cost model."""

    kind = "disk"

    def __init__(
        self,
        node: str = "",
        metrics=None,
        snapshot_every: int = 256,
        write_mb_s: float = 40.0,
        fsync_s: float = 0.005,
        replay_mb_s: float = 80.0,
        jitter: float = 0.10,
        rng=None,
    ) -> None:
        if write_mb_s <= 0 or replay_mb_s <= 0:
            raise ValueError("disk bandwidths must be positive")
        if fsync_s < 0:
            raise ValueError("fsync_s must be non-negative")
        super().__init__(node=node, metrics=metrics, snapshot_every=snapshot_every)
        self.write_mb_s = write_mb_s
        self.fsync_s = fsync_s
        self.replay_mb_s = replay_mb_s
        self.jitter = jitter
        self.rng = rng
        #: Appended-but-unsynced bytes (the dirty OS buffer).
        self.pending_bytes = 0.0
        self.fsyncs = 0

    def _on_append(self, size: int) -> None:
        # Unlike the idealized WAL, an append is only buffered; the
        # flusher advances ``synced`` once the charged flush completes.
        self.pending_bytes += size

    # -- flush protocol (driven by StorageFlusher) --------------------------

    def begin_flush(self) -> tuple[int, float]:
        """Capture what this flush covers: (log mark, dirty bytes).

        Entries appended while the flush is in flight stay pending and
        are picked up by the next one.
        """
        return len(self.log), self.pending_bytes

    def flush_cost_s(self, nbytes: float) -> float:
        """Simulated seconds to write ``nbytes`` and fsync."""
        base = nbytes / (self.write_mb_s * MB) + self.fsync_s
        return self._jittered(base)

    def commit_flush(self, mark: int, nbytes: float) -> None:
        """Mark the captured prefix durable (flush completed)."""
        self.synced = max(self.synced, mark)
        self.pending_bytes = max(0.0, self.pending_bytes - nbytes)
        self.fsyncs += 1
        self._count("storage.disk.fsyncs")

    # -- crash / recovery ---------------------------------------------------

    def crash(self) -> dict:
        report = super().crash()
        self.pending_bytes = 0.0
        return report

    def replay_cost_s(self, report: RecoveryReport) -> float:
        base = report.bytes_replayed / (self.replay_mb_s * MB) + self.fsync_s
        return self._jittered(base)

    def _jittered(self, base: float) -> float:
        if self.rng is None or self.jitter <= 0:
            return base
        return self.rng.jittered(base, self.jitter)

    def stats(self) -> dict:
        data = super().stats()
        data.update(
            {"fsyncs": self.fsyncs, "pending_bytes": round(self.pending_bytes, 1)}
        )
        return data


class StorageFlusher:
    """Per-device background fsync process for a :class:`SimDiskStore`.

    Same lifecycle shape as the monitors and the Repairer: ``start()``
    spawns the loop, ``stop()`` interrupts it.  A crash stops the
    flusher *before* the store's ``crash()`` runs, so a flush that was
    mid-charge never commits — its entries are part of the lost tail.
    """

    def __init__(self, sim, store: SimDiskStore, period_s: float = 0.25) -> None:
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.sim = sim
        self.store = store
        self.period_s = period_s
        self.flushes = 0
        self._process = None

    @property
    def running(self) -> bool:
        return self._process is not None and self._process.is_alive

    def start(self) -> None:
        if not self.running:
            self._process = self.sim.process(self._run())

    def stop(self) -> None:
        if self.running:
            self._process.interrupt("flusher stopped")
        self._process = None

    def _run(self):
        try:
            while True:
                yield self.sim.timeout(self.period_s)
                mark, nbytes = self.store.begin_flush()
                if mark <= self.store.synced and nbytes <= 0:
                    continue
                cost = self.store.flush_cost_s(nbytes)
                if cost > 0:
                    yield self.sim.timeout(cost)
                self.store.commit_flush(mark, nbytes)
                self.flushes += 1
        except Interrupt:
            return
