"""Hosts, routes, and the Network façade.

The topology layer turns the raw link model into something the overlay
and VStore++ layers can use:

* :class:`Host` — a named endpoint with an inbox for control messages
  and an online/offline switch (for churn experiments).
* :class:`Route` — how traffic between a pair of hosts behaves: a
  bottleneck :class:`~repro.net.link.Link` for bulk data, a base latency
  with jitter for control messages, an optional
  :class:`~repro.net.tcp.TcpProfile`, and an optional per-transfer
  bandwidth sampler (modelling wireless variability).
* :class:`Network` — resolves routes (exact host pair first, then
  location-group pair), delivers control messages into host inboxes,
  and runs bulk transfers through the fluid link model.

Routes are resolved directionally, so asymmetric up/down bandwidth to
the remote cloud (the paper's 4.5 Mbps up / 6.5 Mbps down wireless
uplink) is expressed as two group routes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.sim import Event, RandomSource, Simulator, Store
from repro.net.errors import HostDownError, NoRouteError, TransferAborted
from repro.net.link import Link
from repro.net.tcp import TcpProfile, UNCAPPED

__all__ = ["Host", "Message", "Route", "TransferReport", "Network"]

#: Approximate control-message rate; small command packets (<50 bytes in
#: the paper) are latency-dominated, so precision here is irrelevant.
_CONTROL_BYTES_PER_SEC = 10e6


@dataclass(slots=True)
class Message:
    """A control-plane message delivered into a host inbox."""

    src: str
    dst: str
    payload: Any
    size: int = 64
    sent_at: float = 0.0
    delivered_at: float = 0.0


@dataclass
class Route:
    """Behaviour of traffic in one direction between two endpoints."""

    link: Link
    base_latency: float = 0.001
    jitter: float = 0.0
    tcp: Optional[TcpProfile] = None
    #: Optional sampler for a per-transfer bandwidth ceiling (bytes/s);
    #: models e.g. fluctuating wireless throughput to the remote cloud.
    cap_sampler: Optional[Callable[[RandomSource], float]] = None

    def sample_latency(self, rng: RandomSource) -> float:
        if self.jitter <= 0:
            return self.base_latency
        return rng.jittered(self.base_latency, self.jitter)

    def sample_cap(self, rng: RandomSource) -> float:
        if self.cap_sampler is None:
            return UNCAPPED
        cap = self.cap_sampler(rng)
        if cap <= 0:
            raise ValueError("cap_sampler returned a non-positive rate")
        return cap


@dataclass
class TransferReport:
    """Outcome of a completed bulk transfer."""

    src: str
    dst: str
    nbytes: float
    started_at: float
    finished_at: float

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def throughput(self) -> float:
        """Average throughput in bytes/second (0 for empty transfers)."""
        return self.nbytes / self.duration if self.duration > 0 else 0.0


class Host:
    """A named network endpoint."""

    def __init__(self, network: "Network", name: str, group: str) -> None:
        self.network = network
        self.name = name
        self.group = group
        self.inbox: Store = Store(network.sim)
        self.online = True

    def receive(self) -> Event:
        """Event yielding the next inbound :class:`Message`."""
        return self.inbox.get()

    def set_online(self, online: bool) -> None:
        self.online = online

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.online else "down"
        return f"<Host {self.name!r} group={self.group!r} {state}>"


class Network:
    """The network fabric connecting home devices and the remote cloud."""

    def __init__(
        self,
        sim: Simulator,
        rng: Optional[RandomSource] = None,
        coalesce_delivery: bool = True,
    ) -> None:
        self.sim = sim
        self.rng = (rng or RandomSource(0)).fork("network")
        self.hosts: dict[str, Host] = {}
        self._host_routes: dict[tuple[str, str], Route] = {}
        self._group_routes: dict[tuple[str, str], Route] = {}
        #: Fast path: each in-flight control message is a single
        #: scheduled callback event.  The legacy path spawns a delivery
        #: process per message (Initialize + Timeout events plus the
        #: generator machinery) and is kept as the reference
        #: implementation for the perf harness baseline.
        self.coalesce_delivery = coalesce_delivery
        #: Delivered control messages, for diagnostics/tests.
        self.messages_delivered = 0
        #: Active network partitions: pairs of host-name sets that
        #: cannot reach each other (chaos injection).
        self._partitions: list[tuple[frozenset, frozenset]] = []
        #: Probability that a control message is silently lost in
        #: flight (chaos injection).  Loss draws come from a dedicated
        #: RNG fork so toggling loss never perturbs the latency-jitter
        #: stream — a loss-free run is bit-identical with the feature
        #: compiled in or out.
        self.loss_rate = 0.0
        self._loss_rng = self.rng.fork("loss")
        #: Messages dropped by loss injection, for diagnostics.
        self.messages_lost = 0

    # -- construction ------------------------------------------------------

    def add_host(self, name: str, group: str = "home") -> Host:
        if name in self.hosts:
            raise ValueError(f"duplicate host name {name!r}")
        host = Host(self, name, group)
        self.hosts[name] = host
        return host

    def connect_hosts(self, src: str, dst: str, route: Route) -> None:
        """Register a directional route for one exact host pair."""
        self._require_host(src)
        self._require_host(dst)
        self._host_routes[(src, dst)] = route

    def connect_groups(self, src_group: str, dst_group: str, route: Route) -> None:
        """Register a directional route between two location groups."""
        self._group_routes[(src_group, dst_group)] = route

    # -- lookup --------------------------------------------------------------

    def _require_host(self, name: str) -> Host:
        try:
            return self.hosts[name]
        except KeyError:
            raise NoRouteError(name, name) from None

    def route(self, src: str, dst: str) -> Route:
        """Resolve the route from ``src`` to ``dst`` (host pair wins)."""
        exact = self._host_routes.get((src, dst))
        if exact is not None:
            return exact
        src_host = self._require_host(src)
        dst_host = self._require_host(dst)
        group = self._group_routes.get((src_host.group, dst_host.group))
        if group is not None:
            return group
        raise NoRouteError(src, dst)

    # -- partitions (chaos) ------------------------------------------------

    def partition(self, side_a, side_b) -> None:
        """Split the fabric: hosts in ``side_a`` and ``side_b`` can no
        longer exchange messages or transfers (in either direction).
        Connectivity within each side is untouched."""
        self._partitions.append((frozenset(side_a), frozenset(side_b)))

    def heal_partition(self, side_a=None, side_b=None) -> None:
        """Remove one partition (both orientations), or every partition
        when called with no arguments."""
        if side_a is None and side_b is None:
            self._partitions.clear()
            return
        pair = (frozenset(side_a or ()), frozenset(side_b or ()))
        flipped = (pair[1], pair[0])
        self._partitions = [
            p for p in self._partitions if p != pair and p != flipped
        ]

    def partitioned(self, src: str, dst: str) -> bool:
        """Does an active partition separate these two hosts?"""
        for a, b in self._partitions:
            if (src in a and dst in b) or (src in b and dst in a):
                return True
        return False

    # -- control plane ---------------------------------------------------

    def send(self, src: str, dst: str, payload: Any, size: int = 64) -> Event:
        """Deliver a control message into ``dst``'s inbox.

        Returns an event that triggers with the delivered
        :class:`Message`.  Raises :class:`HostDownError` immediately if
        either endpoint is offline — modelling the fast "connection
        refused" a LAN gives, which is what lets the overlay detect
        departed neighbours.
        """
        src_host = self._require_host(src)
        dst_host = self._require_host(dst)
        if not src_host.online:
            raise HostDownError(src)
        if not dst_host.online:
            raise HostDownError(dst)
        if self.partitioned(src, dst):
            # Same failure mode as a dead host: the connection attempt
            # is refused at once, which is what lets callers (and the
            # overlay) react instead of hanging.
            raise HostDownError(dst)
        if self.loss_rate > 0 and self._loss_rng.random() < self.loss_rate:
            # Silent in-flight loss: the returned event never fires, so
            # a waiting RPC caller surfaces this as a timeout — unlike
            # a partition, the sender cannot tell loss from slowness.
            self.messages_lost += 1
            return self.sim.event()
        route = self.route(src, dst)
        delay = route.sample_latency(self.rng) + size / _CONTROL_BYTES_PER_SEC
        message = Message(src, dst, payload, size, sent_at=self.sim.now)
        done = self.sim.event()
        if self.coalesce_delivery:
            arrival = Event(self.sim)
            arrival._ok = True
            arrival._value = None
            arrival.callbacks.append(
                lambda _event: self._deliver(message, dst_host, done)
            )
            self.sim._schedule(arrival, delay=delay)
        else:

            def deliver():
                yield self.sim.timeout(delay)
                self._deliver(message, dst_host, done)

            self.sim.process(deliver())
        return done

    def _deliver(self, message: Message, dst_host: Host, done: Event) -> None:
        message.delivered_at = self.sim.now
        if dst_host.online:
            dst_host.inbox.put(message)
            self.messages_delivered += 1
            done.succeed(message)
        else:
            # The destination died while the message was in flight.
            # Waiters (if any) see the failure; fire-and-forget
            # senders legitimately never look, so the failure is
            # pre-defused — a lost message to a dead host is normal
            # network behaviour, not a programming error.
            done.fail(HostDownError(message.dst))
            done._defused = True

    # -- data plane --------------------------------------------------------

    def transfer(self, src: str, dst: str, nbytes: float) -> Event:
        """Run a bulk transfer; the event yields a :class:`TransferReport`.

        The transfer pays the route's (jittered) latency once, then
        moves through the route's bottleneck link under the fluid
        fair-share model, bounded by the route's TCP profile and the
        sampled per-transfer cap.
        """
        src_host = self._require_host(src)
        dst_host = self._require_host(dst)
        if not src_host.online:
            raise HostDownError(src)
        if not dst_host.online:
            raise HostDownError(dst)
        if self.partitioned(src, dst):
            raise HostDownError(dst)
        route = self.route(src, dst)
        latency = route.sample_latency(self.rng)
        cap = route.sample_cap(self.rng)
        started = self.sim.now

        def run():
            yield self.sim.timeout(latency)
            flow = route.link.open_flow(
                nbytes,
                profile=route.tcp,
                extra_cap=cap,
                label=f"{src}->{dst}",
            )
            try:
                yield flow.done
            except TransferAborted:
                raise
            return TransferReport(
                src=src,
                dst=dst,
                nbytes=float(nbytes),
                started_at=started,
                finished_at=self.sim.now,
            )

        return self.sim.process(run())

    def take_offline(self, name: str) -> None:
        """Mark a host offline (future sends/transfers to it fail)."""
        self._require_host(name).set_online(False)

    def bring_online(self, name: str) -> None:
        self._require_host(name).set_online(True)
