"""Request/response messaging on top of the network control plane.

The paper's VStore++ uses a *command-based interface* — small (<50 byte)
command packets over TCP sockets and IPC — between guest VMs, the
VStore++ control domain, the Chimera overlay, and remote nodes.  This
module provides the equivalent: an :class:`RpcEndpoint` bound to a
:class:`~repro.net.topology.Host` that dispatches typed requests to
registered handlers and correlates responses, with timeouts and remote
error propagation.

Handlers may be plain functions (fast, synchronous with respect to
simulated time) or generator functions (full simulation processes that
can themselves wait on transfers, other RPCs, etc.).
"""

from __future__ import annotations

import inspect
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.sim import Event, Simulator
from repro.net.errors import HostDownError, NetworkError
from repro.net.topology import Host, Network

__all__ = [
    "RpcError",
    "RpcTimeoutError",
    "RemoteError",
    "RpcEndpoint",
    "Request",
]


class RpcError(NetworkError):
    """Base class for RPC-layer errors."""


class RpcTimeoutError(RpcError):
    """No response arrived within the caller's deadline."""

    def __init__(self, dst: str, msg_type: str, timeout: float) -> None:
        super().__init__(
            f"rpc {msg_type!r} to {dst!r} timed out after {timeout:g}s"
        )
        self.dst = dst
        self.msg_type = msg_type
        self.timeout = timeout


class RemoteError(RpcError):
    """The remote handler raised; carries the remote exception text."""

    def __init__(self, dst: str, msg_type: str, detail: str) -> None:
        super().__init__(f"rpc {msg_type!r} failed on {dst!r}: {detail}")
        self.dst = dst
        self.msg_type = msg_type
        self.detail = detail


@dataclass
class Request:
    """An inbound request as seen by a handler."""

    src: str
    msg_type: str
    body: Any
    req_id: int


@dataclass
class _Envelope:
    kind: str  # "request" | "response" | "notify"
    msg_type: str
    body: Any
    req_id: int = 0
    error: Optional[str] = None


class RpcEndpoint:
    """Typed request/response messaging for one host.

    Usage::

        ep = RpcEndpoint(network, host)
        ep.register("ping", lambda req: "pong")
        ep.start()
        ...
        reply = yield ep.call("other-host", "ping", None)
    """

    #: Default per-call deadline, seconds.  Generous relative to home
    #: LAN latencies; callers on slow paths pass their own.
    DEFAULT_TIMEOUT = 30.0

    def __init__(self, network: Network, host: Host, push: bool = True) -> None:
        self.network = network
        self.host = host
        #: The host's name; hosts are never renamed, so snapshot it
        #: (this is read twice per message on the send path).
        self.name = host.name
        self.sim: Simulator = network.sim
        self._handlers: dict[str, Callable[[Request], Any]] = {}
        #: msg_type -> True when the handler is a generator function
        #: (precomputed so dispatch can pick the synchronous fast path).
        self._genfunc: dict[str, bool] = {}
        self._pending: dict[int, Event] = {}
        self._req_ids = itertools.count(1)
        #: Fast path: messages are handled synchronously at delivery
        #: time via the inbox consumer hook.  The legacy pull-mode
        #: dispatcher process is kept as the reference implementation.
        self.push = push
        self._running = False
        self._dispatcher = None
        #: Count of requests served, for tests/diagnostics.
        self.requests_served = 0

    def register(self, msg_type: str, handler: Callable[[Request], Any]) -> None:
        """Register ``handler`` for ``msg_type`` requests.

        A generator-function handler runs as a simulation process; its
        return value becomes the response body.  Re-registering a type
        replaces the previous handler.
        """
        self._handlers[msg_type] = handler
        # inspect.isgeneratorfunction without the inspect overhead —
        # endpoints register a dozen handlers per device, at cluster
        # construction time.  CO_GENERATOR == 0x20.
        func = getattr(handler, "__func__", handler)
        code = getattr(func, "__code__", None)
        if code is not None:
            self._genfunc[msg_type] = bool(code.co_flags & 0x20)
        else:
            self._genfunc[msg_type] = inspect.isgeneratorfunction(handler)

    def start(self) -> None:
        """Start dispatching inbound messages (idempotent)."""
        if self.push:
            if not self._running:
                self._running = True
                self.host.inbox.set_consumer(self._on_message)
        elif self._dispatcher is None or not self._dispatcher.is_alive:
            self._dispatcher = self.sim.process(self._dispatch_loop())

    def stop(self) -> None:
        """Stop dispatching (e.g. when the node leaves the overlay)."""
        if self._running:
            self.host.inbox.set_consumer(None)
            self._running = False
        if self._dispatcher is not None and self._dispatcher.is_alive:
            self._dispatcher.interrupt("endpoint stopped")
        self._dispatcher = None

    # -- client side -------------------------------------------------------

    def call(
        self,
        dst: str,
        msg_type: str,
        body: Any = None,
        timeout: Optional[float] = None,
        size: int = 64,
    ) -> Event:
        """Send a request; the returned event yields the response body.

        Fails with :class:`HostDownError` (destination offline at send
        time), :class:`RpcTimeoutError`, or :class:`RemoteError`.
        """
        deadline = self.DEFAULT_TIMEOUT if timeout is None else timeout
        result = self.sim.event()
        req_id = next(self._req_ids)
        envelope = _Envelope("request", msg_type, body, req_id)
        try:
            self.network.send(self.name, dst, envelope, size=size)
        except HostDownError as exc:
            result.fail(exc)
            return result

        reply = self.sim.event()
        self._pending[req_id] = reply
        timer = self.sim.timeout(deadline)

        # First of {reply, deadline} settles the call.  Plain callbacks
        # instead of a waiter process + AnyOf: an RPC in flight costs a
        # single extra timer event, nothing else.
        settled = False

        def on_reply(event: Event) -> None:
            nonlocal settled
            if settled:
                return
            settled = True
            self._pending.pop(req_id, None)
            response: _Envelope = event._value
            if response.error is not None:
                result.fail(RemoteError(dst, msg_type, response.error))
            else:
                result.succeed(response.body)

        def on_deadline(event: Event) -> None:
            nonlocal settled
            if settled:
                return
            settled = True
            self._pending.pop(req_id, None)
            result.fail(RpcTimeoutError(dst, msg_type, deadline))

        reply.callbacks.append(on_reply)
        timer.callbacks.append(on_deadline)
        return result

    def notify(self, dst: str, msg_type: str, body: Any = None, size: int = 64) -> None:
        """Fire-and-forget one-way message; errors at send time propagate."""
        envelope = _Envelope("notify", msg_type, body)
        self.network.send(self.name, dst, envelope, size=size)

    # -- server side -------------------------------------------------------

    def _on_message(self, message) -> None:
        """Push-mode dispatch: runs synchronously at message delivery.

        Responses settle the pending call directly; requests with a
        plain-function handler are served inline — no dispatcher resume
        and no per-request process, which is the bulk of the control-
        plane event traffic.  Generator handlers (and sync handlers
        that return a generator) still get a process.
        """
        envelope = message.payload
        if not isinstance(envelope, _Envelope):
            return  # stray traffic from another protocol
        if envelope.kind == "response":
            pending = self._pending.pop(envelope.req_id, None)
            if pending is not None:
                pending.succeed(envelope)
            return
        handler = self._handlers.get(envelope.msg_type)
        if handler is None or self._genfunc.get(envelope.msg_type, False):
            self.sim.process(self._serve(message.src, envelope))
            return
        request = Request(message.src, envelope.msg_type, envelope.body, envelope.req_id)
        error: Optional[str] = None
        value: Any = None
        try:
            value = handler(request)
        except Exception as exc:  # noqa: BLE001 - forwarded to caller
            error = f"{type(exc).__name__}: {exc}"
        if error is None and inspect.isgenerator(value):
            self.sim.process(self._finish_async(message.src, envelope, value))
            return
        self._respond(message.src, envelope, value, error)

    def _finish_async(self, src: str, envelope: _Envelope, gen):
        """Await a generator returned by a nominally-sync handler."""
        error: Optional[str] = None
        value: Any = None
        try:
            value = yield self.sim.process(gen)
        except Exception as exc:  # noqa: BLE001 - forwarded to caller
            error = f"{type(exc).__name__}: {exc}"
        self._respond(src, envelope, value, error)

    def _respond(
        self, src: str, envelope: _Envelope, value: Any, error: Optional[str]
    ) -> None:
        self.requests_served += 1
        if envelope.kind == "notify":
            return
        response = _Envelope("response", envelope.msg_type, value, envelope.req_id, error)
        try:
            self.network.send(self.name, src, response, size=64)
        except HostDownError:
            pass  # caller vanished; its timeout handles it

    def _dispatch_loop(self):
        from repro.sim import Interrupt

        while True:
            get_event = self.host.receive()
            try:
                message = yield get_event
            except Interrupt:
                # Withdraw the abandoned get so a later dispatcher
                # instance sees the next message.
                self.host.inbox.cancel(get_event)
                return
            envelope = message.payload
            if not isinstance(envelope, _Envelope):
                continue  # stray traffic from another protocol
            if envelope.kind == "response":
                pending = self._pending.pop(envelope.req_id, None)
                if pending is not None:
                    pending.succeed(envelope)
            else:
                self.sim.process(self._serve(message.src, envelope))

    def _serve(self, src: str, envelope: _Envelope):
        request = Request(src, envelope.msg_type, envelope.body, envelope.req_id)
        handler = self._handlers.get(envelope.msg_type)
        error: Optional[str] = None
        value: Any = None
        if handler is None:
            error = f"no handler for {envelope.msg_type!r}"
        else:
            try:
                outcome = handler(request)
                if inspect.isgenerator(outcome):
                    value = yield self.sim.process(outcome)
                else:
                    value = outcome
            except Exception as exc:  # noqa: BLE001 - forwarded to caller
                error = f"{type(exc).__name__}: {exc}"
        self._respond(src, envelope, value, error)
