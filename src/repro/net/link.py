"""Fluid fair-share link model with per-flow rate caps.

A :class:`Link` carries *flows* (bulk transfers).  At any instant the
link's bandwidth is divided among active flows by progressive filling
(max-min fair sharing): flows whose own rate cap is below their fair
share get their cap, and the leftover bandwidth is redistributed among
the rest.  Per-flow caps come from two sources:

* the flow's :class:`~repro.net.tcp.TcpProfile` phase schedule (slow
  start, provider window cap, ISP shaping), and
* an optional constant ``extra_cap`` (e.g. a sampled wireless-bandwidth
  ceiling for this particular transfer, which produces the
  transfer-to-transfer variability of the paper's Figure 4).

Rates only change at *boundaries*: a flow arriving, finishing, or moving
to its next TCP phase.  The link advances all flows' progress lazily at
each boundary, so the model is exact for piecewise-constant rates.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional

from repro.sim import Event, Interrupt, Simulator
from repro.sim.kernel import Process
from repro.net.tcp import RatePhase, TcpProfile, UNCAPPED

__all__ = ["Flow", "Link"]

#: Remaining-byte threshold below which a flow counts as finished.
_EPS_BYTES = 1e-6
#: Time threshold below which a phase boundary counts as "now".
_EPS_TIME = 1e-12


class Flow:
    """One bulk transfer in progress on a :class:`Link`.

    The ``done`` event triggers with the flow itself once all bytes have
    been delivered.  ``abort()`` cancels the flow and fails ``done``.
    """

    __slots__ = (
        "link",
        "nbytes",
        "remaining",
        "extra_cap",
        "label",
        "started_at",
        "finished_at",
        "done",
        "rate",
        "_phases",
        "_phase_cap",
        "_phase_end",
    )

    def __init__(
        self,
        link: "Link",
        nbytes: float,
        profile: Optional[TcpProfile],
        extra_cap: float,
        label: str,
    ) -> None:
        self.link = link
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.extra_cap = extra_cap
        self.label = label
        self.started_at = link.sim.now
        self.finished_at: Optional[float] = None
        self.done: Event = link.sim.event()
        #: Rate currently assigned by the link's fair-share computation.
        self.rate = 0.0
        self._phases: Optional[Iterator[RatePhase]] = (
            profile.phases() if profile is not None else None
        )
        self._phase_cap = UNCAPPED
        self._phase_end: Optional[float] = None
        self._enter_next_phase()

    @property
    def cap(self) -> float:
        """The flow's current overall rate cap, bytes/second."""
        return min(self._phase_cap, self.extra_cap)

    @property
    def elapsed(self) -> float:
        """Seconds since the flow started (to completion if finished)."""
        end = self.finished_at if self.finished_at is not None else self.link.sim.now
        return end - self.started_at

    def throughput(self) -> float:
        """Average delivered throughput so far, bytes/second."""
        elapsed = self.elapsed
        delivered = self.nbytes - self.remaining
        return delivered / elapsed if elapsed > 0 else 0.0

    def abort(self, reason: Exception) -> None:
        """Cancel the transfer; ``done`` fails with ``reason``."""
        self.link._abort_flow(self, reason)

    # -- internal ----------------------------------------------------------

    def _enter_next_phase(self) -> None:
        """Advance to the next TCP phase (or stay uncapped)."""
        if self._phases is None:
            self._phase_cap = UNCAPPED
            self._phase_end = None
            return
        phase = next(self._phases)
        self._phase_cap = phase.cap
        if phase.duration is None:
            self._phase_end = None
        else:
            self._phase_end = self.link.sim.now + phase.duration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Flow {self.label!r} {self.nbytes - self.remaining:.0f}"
            f"/{self.nbytes:.0f}B rate={self.rate:.0f}B/s>"
        )


class Link:
    """A directional link carrying concurrent flows with fair sharing."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        name: str = "link",
        coalesce_timer: bool = True,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth!r}")
        self.sim = sim
        self.bandwidth = float(bandwidth)
        self.name = name
        self._flows: list[Flow] = []
        self._labels = itertools.count()
        self._last_update = sim.now
        #: Fast path: boundaries fire through a single scheduled callback
        #: event (one heap entry per boundary).  The legacy path spawns a
        #: full timer process per boundary (Initialize + Timeout +
        #: interrupt events) and is kept as the reference implementation
        #: for equivalence tests and the perf harness baseline.
        self.coalesce_timer = coalesce_timer
        self._timer: Optional[Process] = None
        #: Generation counter invalidating stale coalesced timer events.
        self._timer_gen = 0
        #: Total payload bytes this link has delivered (for utilization stats).
        self.bytes_delivered = 0.0

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def set_bandwidth(self, bandwidth: float) -> None:
        """Change the link's capacity at runtime.

        In-flight flows are re-shared immediately (their progress up to
        now is accounted at the old rates).  This is the hook the fault
        injector uses to model degrading network conditions.
        """
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth!r}")
        self._advance()
        self.bandwidth = float(bandwidth)
        self._recompute_rates()
        self._reschedule()

    def open_flow(
        self,
        nbytes: float,
        profile: Optional[TcpProfile] = None,
        extra_cap: float = UNCAPPED,
        label: Optional[str] = None,
    ) -> Flow:
        """Start transferring ``nbytes`` over this link.

        Returns the new :class:`Flow`; wait on ``flow.done`` for
        completion.  ``extra_cap`` additionally bounds the flow's rate
        (bytes/second) for its whole lifetime.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if extra_cap <= 0:
            raise ValueError("extra_cap must be positive")
        flow = Flow(
            self,
            nbytes,
            profile,
            extra_cap,
            label or f"{self.name}#{next(self._labels)}",
        )
        if flow.remaining <= _EPS_BYTES:
            flow.finished_at = self.sim.now
            flow.done.succeed(flow)
            return flow
        self._advance()
        self._flows.append(flow)
        self._recompute_rates()
        self._reschedule()
        return flow

    # -- fluid machinery ---------------------------------------------------

    def _advance(self) -> None:
        """Account all flows' progress since the last boundary."""
        dt = self.sim.now - self._last_update
        if dt > 0:
            for flow in self._flows:
                delivered = flow.rate * dt
                flow.remaining -= delivered
                self.bytes_delivered += delivered
        self._last_update = self.sim.now

    def _recompute_rates(self) -> None:
        """Max-min fair allocation of bandwidth under per-flow caps."""
        if not self._flows:
            return
        pending = sorted(self._flows, key=lambda f: f.cap)
        budget = self.bandwidth
        count = len(pending)
        for flow in pending:
            share = budget / count
            rate = min(flow.cap, share)
            flow.rate = rate
            budget -= rate
            count -= 1

    def _next_boundary(self) -> float:
        """Seconds until the next completion or phase change (inf if none)."""
        horizon = float("inf")
        now = self.sim.now
        for flow in self._flows:
            if flow.rate > 0:
                horizon = min(horizon, flow.remaining / flow.rate)
            if flow._phase_end is not None:
                horizon = min(horizon, flow._phase_end - now)
        return max(horizon, 0.0)

    def _reschedule(self) -> None:
        self._timer_gen += 1
        if self._timer is not None and self._timer.is_alive:
            self._timer.interrupt()
        self._timer = None
        if not self._flows:
            return
        delay = self._next_boundary()
        if delay == float("inf"):
            raise RuntimeError(
                f"link {self.name!r}: active flows but no progress possible "
                "(all rates zero with no future phase change)"
            )
        if self.coalesce_timer:
            # One pre-succeeded event on the heap; superseded timers are
            # ignored via the generation counter instead of interrupted.
            gen = self._timer_gen
            timer = Event(self.sim)
            timer._ok = True
            timer._value = None
            timer.callbacks.append(lambda _event: self._on_timer(gen))
            self.sim._schedule(timer, delay=delay)
        else:
            self._timer = self.sim.process(self._timer_proc(delay))

    def _on_timer(self, gen: int) -> None:
        if gen != self._timer_gen:
            return  # superseded by a newer boundary computation
        self._on_boundary()

    def _timer_proc(self, delay: float):
        try:
            yield self.sim.timeout(delay)
        except Interrupt:
            return
        self._timer = None
        self._on_boundary()

    def _on_boundary(self) -> None:
        self._advance()
        now = self.sim.now
        finished = [f for f in self._flows if f.remaining <= _EPS_BYTES]
        for flow in finished:
            self._flows.remove(flow)
            flow.remaining = 0.0
            flow.finished_at = now
        for flow in self._flows:
            while (
                flow._phase_end is not None
                and flow._phase_end - now <= _EPS_TIME
            ):
                flow._enter_next_phase()
        self._recompute_rates()
        self._reschedule()
        # Trigger completions after rates are consistent again.
        for flow in finished:
            flow.done.succeed(flow)

    def _abort_flow(self, flow: Flow, reason: Exception) -> None:
        if flow not in self._flows:
            return
        self._advance()
        self._flows.remove(flow)
        flow.finished_at = self.sim.now
        self._recompute_rates()
        self._reschedule()
        flow.done.fail(reason)
