"""Exception types for the network substrate."""

from __future__ import annotations


class NetworkError(Exception):
    """Base class for network-substrate errors."""


class HostDownError(NetworkError):
    """A message or transfer was addressed to an offline host."""

    def __init__(self, host: str) -> None:
        super().__init__(f"host {host!r} is offline")
        self.host = host


class NoRouteError(NetworkError):
    """No path is configured between the two endpoints."""

    def __init__(self, src: str, dst: str) -> None:
        super().__init__(f"no route from {src!r} to {dst!r}")
        self.src = src
        self.dst = dst


class TransferAborted(NetworkError):
    """A bulk transfer was cancelled (e.g. endpoint went offline)."""
