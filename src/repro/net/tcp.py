"""TCP behaviour model for bulk transfers.

The paper's Figure 5 shows that remote-cloud throughput is a
*non-monotone* function of object size: it rises with size (slow start
amortization plus the provider growing the TCP window up to ~1.6 MB for
S3) and then collapses for very large transfers because ISP traffic
shaping kicks in for long, bandwidth-hogging flows.

We capture that with a *rate-cap schedule*: a transfer progresses
through phases, each with a maximum sending rate.

* **Slow start** — the congestion window starts at ``init_window`` and
  doubles every RTT; the instantaneous rate cap is ``cwnd / rtt``.
* **Steady state** — once the window reaches the provider's cap
  (``max_window``) the rate cap is ``max_window / rtt`` (congestion
  avoidance growth beyond that point is negligible at these scales).
* **Shaping** — after the flow has been active for
  ``shaping_after_s`` seconds, the ISP throttles it to ``shaped_rate``
  bytes/s for the remainder.

The schedule is consumed by :class:`repro.net.link.Link`, whose fluid
fair-share model additionally bounds every flow by its share of the
link bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, Optional

__all__ = ["TcpProfile", "RatePhase", "UNCAPPED"]

#: Sentinel cap meaning "limited only by the link share".
UNCAPPED = float("inf")


@dataclass(frozen=True)
class RatePhase:
    """One phase of a flow's rate-cap schedule.

    ``duration`` is in seconds of flow-active time (``None`` means
    "until the transfer finishes"); ``cap`` is a rate in bytes/second.
    """

    duration: Optional[float]
    cap: float


@dataclass(frozen=True)
class TcpProfile:
    """Parameters describing TCP behaviour on a path.

    Attributes
    ----------
    rtt:
        Round-trip time of the path, seconds.
    init_window:
        Initial congestion window, bytes (RFC 3390-era: ~4 KB).
    max_window:
        Maximum window the provider/receiver allows, bytes.  The paper
        measures ~1.6 MB for Amazon S3.
    shaping_after_s:
        Flow-active seconds after which the ISP throttles the flow;
        ``None`` disables shaping.
    shaped_rate:
        Post-shaping rate cap, bytes/second.
    """

    rtt: float = 0.05
    init_window: int = 4 * 1024
    max_window: int = int(1.6 * 1024 * 1024)
    shaping_after_s: Optional[float] = None
    shaped_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.rtt <= 0:
            raise ValueError(f"rtt must be positive, got {self.rtt!r}")
        if self.init_window <= 0 or self.max_window < self.init_window:
            raise ValueError(
                "window sizes must satisfy 0 < init_window <= max_window"
            )
        if self.shaping_after_s is not None:
            if self.shaping_after_s < 0:
                raise ValueError("shaping_after_s must be non-negative")
            if self.shaped_rate <= 0:
                raise ValueError("shaped_rate must be positive when shaping")

    def phases(self) -> Iterator[RatePhase]:
        """Yield the flow's rate-cap schedule, in order.

        Slow-start phases last one RTT each; the steady phase runs until
        the shaping deadline (if any); the shaped phase is final.  The
        schedule depends only on the (frozen) profile, so it is computed
        once per distinct profile and cached — every flow on a route
        shares the same profile object.
        """
        return iter(_phase_schedule(self))

    def _compute_phases(self) -> Iterator[RatePhase]:
        elapsed = 0.0
        cwnd = float(self.init_window)
        deadline = self.shaping_after_s

        while cwnd < self.max_window:
            duration = self.rtt
            if deadline is not None and elapsed + duration >= deadline:
                # Shaping interrupts slow start.
                remaining = max(0.0, deadline - elapsed)
                if remaining > 0:
                    yield RatePhase(remaining, cwnd / self.rtt)
                yield RatePhase(None, self.shaped_rate)
                return
            yield RatePhase(duration, cwnd / self.rtt)
            elapsed += duration
            cwnd = min(cwnd * 2.0, float(self.max_window))

        steady_cap = self.max_window / self.rtt
        if deadline is None:
            yield RatePhase(None, steady_cap)
            return
        remaining = max(0.0, deadline - elapsed)
        if remaining > 0:
            yield RatePhase(remaining, steady_cap)
        yield RatePhase(None, self.shaped_rate)

    def ideal_transfer_time(self, nbytes: float, link_rate: float) -> float:
        """Transfer time for ``nbytes`` on an otherwise idle link.

        Walks the phase schedule applying ``min(cap, link_rate)`` in each
        phase.  Used by unit tests and analytical sanity checks; the
        fluid link model reproduces this exactly for a single flow.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        remaining = float(nbytes)
        elapsed = 0.0
        for phase in self.phases():
            rate = min(phase.cap, link_rate)
            if phase.duration is None:
                if rate <= 0:
                    raise ValueError("final phase has zero rate; transfer stalls")
                return elapsed + remaining / rate
            sendable = rate * phase.duration
            if sendable >= remaining:
                return elapsed + (remaining / rate if rate > 0 else float("inf"))
            remaining -= sendable
            elapsed += phase.duration
        raise AssertionError("phase schedule ended without a final phase")


@lru_cache(maxsize=1024)
def _phase_schedule(profile: TcpProfile) -> tuple[RatePhase, ...]:
    """The full (finite) phase schedule for a profile, cached.

    Safe to cache because :class:`TcpProfile` is frozen and hashes by
    field values; the tuple is shared across every flow using an equal
    profile.
    """
    return tuple(profile._compute_phases())
