"""Network substrate: fluid fair-share links, TCP behaviour, topology.

Public surface:

* :class:`Link`, :class:`Flow` — the fluid fair-share bottleneck model.
* :class:`TcpProfile` — slow start / window cap / ISP shaping schedule.
* :class:`Network`, :class:`Host`, :class:`Route`, :class:`Message`,
  :class:`TransferReport` — the topology façade.
* Errors: :class:`NetworkError`, :class:`HostDownError`,
  :class:`NoRouteError`, :class:`TransferAborted`.
"""

from repro.net.errors import (
    HostDownError,
    NetworkError,
    NoRouteError,
    TransferAborted,
)
from repro.net.link import Flow, Link
from repro.net.rpc import RemoteError, Request, RpcEndpoint, RpcError, RpcTimeoutError
from repro.net.tcp import RatePhase, TcpProfile, UNCAPPED
from repro.net.topology import Host, Message, Network, Route, TransferReport

__all__ = [
    "Link",
    "Flow",
    "TcpProfile",
    "RatePhase",
    "UNCAPPED",
    "Network",
    "Host",
    "Route",
    "Message",
    "TransferReport",
    "RpcEndpoint",
    "Request",
    "RpcError",
    "RpcTimeoutError",
    "RemoteError",
    "NetworkError",
    "HostDownError",
    "NoRouteError",
    "TransferAborted",
]
