"""The modified eDonkey trace used by the paper's evaluation.

"We use the eDonkey peer to peer dataset to demonstrate these
tradeoffs ...  The original dataset represents a large number of
clients performing only a few repetitive file accesses.  We modify it
by combining clients into smaller sets (emulating 6 clients) that each
access a large number of files (1300 in total), performing repeated
accesses across these files.  The percentage of store vs. fetch
operations is set to 60% and 40%, respectively." (Section V-A.)

The original dataset is not redistributable, but the paper only ever
uses its *modified* form — so this generator produces that form
directly: 6 clients, 1300 files with sizes spanning the paper's four
buckets (small 1-10 MB, medium 10-20 MB, large 20-50 MB, super-large
50-100 MB), a realistic extension mix (the .mp3 share matters for the
privacy-policy experiment), and repeated accesses with the 60/40
store/fetch split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim import RandomSource

__all__ = ["SIZE_BUCKETS", "FileSpec", "Access", "EDonkeyTraceGenerator"]

#: The paper's object-size buckets, MB (lower inclusive, upper exclusive).
SIZE_BUCKETS: dict[str, tuple[float, float]] = {
    "small": (1.0, 10.0),
    "medium": (10.0, 20.0),
    "large": (20.0, 50.0),
    "superlarge": (50.0, 100.0),
}

#: File-extension mix (eDonkey carried mostly media).
DEFAULT_TYPE_WEIGHTS: dict[str, float] = {
    "mp3": 0.30,
    "avi": 0.30,
    "mpg": 0.15,
    "jpg": 0.10,
    "zip": 0.10,
    "doc": 0.05,
}


@dataclass(frozen=True)
class FileSpec:
    """One file in the trace."""

    name: str
    size_mb: float
    ftype: str

    @property
    def bucket(self) -> str:
        return bucket_of(self.size_mb)


@dataclass(frozen=True)
class Access:
    """One operation in the trace."""

    seq: int
    client: int
    op: str  # "store" | "fetch"
    file: FileSpec


def bucket_of(size_mb: float) -> str:
    """The paper's bucket label for a size (clamping outliers)."""
    for label, (low, high) in SIZE_BUCKETS.items():
        if low <= size_mb < high:
            return label
    return "small" if size_mb < SIZE_BUCKETS["small"][0] else "superlarge"


class EDonkeyTraceGenerator:
    """Generates the modified trace: files, owners, and access streams."""

    def __init__(
        self,
        rng: Optional[RandomSource] = None,
        n_clients: int = 6,
        n_files: int = 1300,
        store_fraction: float = 0.6,
        type_weights: Optional[dict[str, float]] = None,
        size_range: Optional[tuple[float, float]] = None,
    ) -> None:
        if n_clients <= 0 or n_files <= 0:
            raise ValueError("n_clients and n_files must be positive")
        if not 0.0 <= store_fraction <= 1.0:
            raise ValueError("store_fraction must be in [0, 1]")
        self.rng = (rng or RandomSource(0)).fork("edonkey")
        self.n_clients = n_clients
        self.n_files = n_files
        self.store_fraction = store_fraction
        self.type_weights = dict(type_weights or DEFAULT_TYPE_WEIGHTS)
        self.size_range = size_range
        self._files: Optional[list[FileSpec]] = None

    # -- files ----------------------------------------------------------------

    def files(self) -> list[FileSpec]:
        """The file population (stable across calls)."""
        if self._files is None:
            self._files = [self._make_file(i) for i in range(self.n_files)]
        return self._files

    def _make_file(self, index: int) -> FileSpec:
        types = list(self.type_weights)
        weights = [self.type_weights[t] for t in types]
        ftype = self.rng.weighted_choice(types, weights)
        if self.size_range is not None:
            low, high = self.size_range
            size = self.rng.uniform(low, high)
        else:
            # P2P file sizes are heavy-tailed: Pareto clipped to the
            # paper's 1-100 MB span.
            size = min(self.rng.pareto(alpha=1.1, scale=1.5), 100.0)
            size = max(size, 1.0)
        return FileSpec(name=f"file-{index:05d}.{ftype}", size_mb=size, ftype=ftype)

    def files_in_bucket(self, bucket: str) -> list[FileSpec]:
        if bucket not in SIZE_BUCKETS:
            raise ValueError(f"unknown bucket {bucket!r}")
        return [f for f in self.files() if f.bucket == bucket]

    def owner_of(self, file: FileSpec) -> int:
        """Stable assignment of each file to the client that stores it.

        Uses CRC32 rather than ``hash`` so the mapping survives
        Python's per-process string-hash randomization.
        """
        import zlib

        return zlib.crc32(file.name.encode()) % self.n_clients

    # -- accesses ---------------------------------------------------------------

    def accesses(
        self,
        n_accesses: int,
        files: Optional[list[FileSpec]] = None,
        clients: Optional[list[int]] = None,
    ) -> list[Access]:
        """A stream of repeated accesses with the 60/40 store/fetch mix.

        ``files`` restricts the population (e.g. one bucket, or the
        Figure 6 "optimal size" subset); ``clients`` restricts who
        issues requests (Figure 6 uses 3 of the 6 devices).
        """
        population = files if files is not None else self.files()
        if not population:
            raise ValueError("no files to access")
        issuers = clients if clients is not None else list(range(self.n_clients))
        out = []
        for seq in range(n_accesses):
            op = "store" if self.rng.random() < self.store_fraction else "fetch"
            out.append(
                Access(
                    seq=seq,
                    client=self.rng.choice(issuers),
                    op=op,
                    file=self.rng.choice(population),
                )
            )
        return out

    def total_bytes(self, files: Optional[list[FileSpec]] = None) -> float:
        population = files if files is not None else self.files()
        return sum(f.size_mb for f in population) * 1024 * 1024

    def constant_bytes_sample(self, bucket: str, total_mb: float) -> list[FileSpec]:
        """Method 1 of Figure 5: a bucket sample holding ~total_mb."""
        pool = self.files_in_bucket(bucket)
        if not pool:
            raise ValueError(f"bucket {bucket!r} is empty")
        out: list[FileSpec] = []
        acc = 0.0
        i = 0
        while acc < total_mb:
            f = pool[i % len(pool)]
            out.append(f)
            acc += f.size_mb
            i += 1
        return out

    def constant_files_sample(self, bucket: str, n_files: int) -> list[FileSpec]:
        """Method 2 of Figure 5: a bucket sample of exactly n_files."""
        pool = self.files_in_bucket(bucket)
        if not pool:
            raise ValueError(f"bucket {bucket!r} is empty")
        return [pool[i % len(pool)] for i in range(n_files)]
