"""Media-library workload for the conversion use case.

A home media library of ``.avi`` videos owned by a low-end device,
accessed by mobile devices that need the mobile-compatible ``.mp4``
downgrade (Section V-B / Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim import RandomSource

__all__ = ["Video", "MediaLibrary"]


@dataclass(frozen=True)
class Video:
    """One video file in the library."""

    name: str
    size_mb: float

    @property
    def converted_name(self) -> str:
        stem = self.name.rsplit(".", 1)[0]
        return f"{stem}.mp4"


class MediaLibrary:
    """Generates video collections with realistic size spread."""

    def __init__(
        self,
        rng: Optional[RandomSource] = None,
        min_size_mb: float = 20.0,
        max_size_mb: float = 120.0,
    ) -> None:
        if not 0 < min_size_mb < max_size_mb:
            raise ValueError("need 0 < min_size_mb < max_size_mb")
        self.rng = (rng or RandomSource(0)).fork("media")
        self.min_size_mb = min_size_mb
        self.max_size_mb = max_size_mb

    def videos(self, count: int) -> list[Video]:
        """A library of ``count`` videos, sizes uniform in the range."""
        return [
            Video(
                name=f"video-{i:04d}.avi",
                size_mb=self.rng.uniform(self.min_size_mb, self.max_size_mb),
            )
            for i in range(count)
        ]

    @staticmethod
    def size_sweep(sizes_mb: list[float]) -> list[Video]:
        """One video at each requested size (for Figure 8's sweep)."""
        return [Video(name=f"sweep-{s:g}mb.avi", size_mb=s) for s in sizes_mb]
