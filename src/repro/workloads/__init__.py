"""Workload generators for the paper's evaluation scenarios.

Public surface:

* :class:`EDonkeyTraceGenerator`, :class:`FileSpec`, :class:`Access`,
  ``SIZE_BUCKETS`` — the modified eDonkey trace (Figures 5 and 6).
* :class:`SurveillanceWorkload`, :class:`CapturedImage`,
  ``PAPER_IMAGE_SIZES_MB`` — the home-security image stream (Figure 7).
* :class:`MediaLibrary`, :class:`Video` — the media-conversion library
  (Figure 8).
* :class:`ZipfianKeys`, :class:`DiurnalRate`, :class:`DeviceChurn`,
  :class:`CameraStream` — composable synthetic workload models for the
  open-loop load driver (:mod:`repro.load`).
"""

from repro.workloads.edonkey import (
    SIZE_BUCKETS,
    Access,
    EDonkeyTraceGenerator,
    FileSpec,
    bucket_of,
)
from repro.workloads.media import MediaLibrary, Video
from repro.workloads.models import (
    CameraStream,
    ChurnEvent,
    DeviceChurn,
    DiurnalRate,
    ZipfianKeys,
)
from repro.workloads.stats import TraceStats, summarize_accesses, summarize_files
from repro.workloads.surveillance import (
    PAPER_IMAGE_SIZES_MB,
    CapturedImage,
    SurveillanceWorkload,
)

__all__ = [
    "EDonkeyTraceGenerator",
    "FileSpec",
    "Access",
    "SIZE_BUCKETS",
    "bucket_of",
    "SurveillanceWorkload",
    "CapturedImage",
    "PAPER_IMAGE_SIZES_MB",
    "MediaLibrary",
    "Video",
    "TraceStats",
    "summarize_files",
    "summarize_accesses",
    "ZipfianKeys",
    "DiurnalRate",
    "DeviceChurn",
    "ChurnEvent",
    "CameraStream",
]
