"""Descriptive statistics over generated workloads.

Benchmarks and examples need to characterize the traces they replay —
bucket composition, per-client load, operation mix — both to report
alongside results and to verify the generator matches the paper's
stated parameters (6 clients, 1300 files, 60/40 store/fetch).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.workloads.edonkey import Access, FileSpec

__all__ = ["TraceStats", "summarize_files", "summarize_accesses"]


@dataclass
class TraceStats:
    """Summary of a file population and (optionally) an access stream."""

    n_files: int
    total_mb: float
    mean_mb: float
    median_mb: float
    by_bucket: dict[str, int]
    by_type: dict[str, int]
    n_accesses: int = 0
    store_fraction: float = 0.0
    by_client: dict[int, int] = None  # type: ignore[assignment]

    def describe(self) -> str:
        lines = [
            f"files: {self.n_files} ({self.total_mb:.0f} MB total, "
            f"mean {self.mean_mb:.1f} MB, median {self.median_mb:.1f} MB)",
            f"buckets: {dict(sorted(self.by_bucket.items()))}",
            f"types: {dict(sorted(self.by_type.items()))}",
        ]
        if self.n_accesses:
            lines.append(
                f"accesses: {self.n_accesses} "
                f"({self.store_fraction:.0%} store)"
            )
            lines.append(f"per client: {dict(sorted(self.by_client.items()))}")
        return "\n".join(lines)


def summarize_files(files: list[FileSpec]) -> TraceStats:
    """Statistics over a file population."""
    if not files:
        raise ValueError("no files to summarize")
    sizes = sorted(f.size_mb for f in files)
    return TraceStats(
        n_files=len(files),
        total_mb=sum(sizes),
        mean_mb=sum(sizes) / len(sizes),
        median_mb=sizes[len(sizes) // 2],
        by_bucket=dict(Counter(f.bucket for f in files)),
        by_type=dict(Counter(f.ftype for f in files)),
        by_client={},
    )


def summarize_accesses(
    files: list[FileSpec], accesses: list[Access]
) -> TraceStats:
    """Statistics over a file population plus its access stream."""
    stats = summarize_files(files)
    if not accesses:
        return stats
    stats.n_accesses = len(accesses)
    stats.store_fraction = sum(
        1 for a in accesses if a.op == "store"
    ) / len(accesses)
    stats.by_client = dict(Counter(a.client for a in accesses))
    return stats
