"""Surveillance workload: sequences of captured camera images.

"We use images of size 0.25, 0.5, 1 and 2 MB.  For each size, we use
different resolution of the same image. ...  care is taken to select
images and videos of similar complexities" (Sections IV-V) — so the
generator produces constant-complexity frames at the paper's four
sizes, optionally interleaved as a capture stream with motion-triggered
bursts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim import RandomSource

__all__ = ["CapturedImage", "SurveillanceWorkload", "PAPER_IMAGE_SIZES_MB"]

#: The image sizes the paper's Figure 7 sweeps.
PAPER_IMAGE_SIZES_MB: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0)


@dataclass(frozen=True)
class CapturedImage:
    """One frame captured by the home security camera."""

    name: str
    size_mb: float
    captured_at: float


class SurveillanceWorkload:
    """Generates capture sequences for the home security use case."""

    def __init__(
        self,
        rng: Optional[RandomSource] = None,
        image_size_mb: float = 0.5,
        period_s: float = 2.0,
        burst_probability: float = 0.1,
        burst_length: int = 5,
    ) -> None:
        if image_size_mb <= 0:
            raise ValueError("image_size_mb must be positive")
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.rng = (rng or RandomSource(0)).fork("surveillance")
        self.image_size_mb = image_size_mb
        self.period_s = period_s
        self.burst_probability = burst_probability
        self.burst_length = burst_length

    def sequence(self, n_images: int, start_at: float = 0.0) -> list[CapturedImage]:
        """A fixed-size capture sequence at the configured cadence."""
        return [
            CapturedImage(
                name=f"frame-{i:06d}.jpg",
                size_mb=self.image_size_mb,
                captured_at=start_at + i * self.period_s,
            )
            for i in range(n_images)
        ]

    def motion_stream(self, duration_s: float) -> list[CapturedImage]:
        """A capture stream with motion-triggered bursts.

        Idle periods produce one frame per period; with probability
        ``burst_probability`` a motion event produces ``burst_length``
        back-to-back frames (the situation where response time matters
        for "detecting potentially critical events").
        """
        frames: list[CapturedImage] = []
        t = 0.0
        index = 0
        while t < duration_s:
            count = 1
            if self.rng.random() < self.burst_probability:
                count = self.burst_length
            for j in range(count):
                frames.append(
                    CapturedImage(
                        name=f"frame-{index:06d}.jpg",
                        size_mb=self.image_size_mb,
                        captured_at=t + j * 0.2,
                    )
                )
                index += 1
            t += self.period_s
        return frames

    @staticmethod
    def size_sweep(n_per_size: int = 1) -> list[CapturedImage]:
        """One image (or several) at each of the paper's four sizes."""
        frames = []
        for size in PAPER_IMAGE_SIZES_MB:
            for i in range(n_per_size):
                frames.append(
                    CapturedImage(
                        name=f"sweep-{size:g}mb-{i}.jpg",
                        size_mb=size,
                        captured_at=0.0,
                    )
                )
        return frames
