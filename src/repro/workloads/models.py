"""Composable workload models for the open-loop load driver.

The trace generators in this package replay specific figures from the
paper; these models are the building blocks for *synthetic* traffic at
neighbourhood scale (the ``repro.load`` driver composes them):

* :class:`ZipfianKeys` — skewed key popularity (the access pattern DHT
  caches live or die by).
* :class:`DiurnalRate` — a smooth day/night arrival-rate curve, usable
  as the rate function of a non-homogeneous Poisson arrival process.
* :class:`DeviceChurn` — per-home device availability as alternating
  exponential up/down periods.
* :class:`CameraStream` — a surveillance camera's periodic image PUTs
  (sizes drawn from the paper's Figure 7 sweep).

Every model draws exclusively from a :class:`repro.sim.RandomSource`,
so a fixed seed reproduces the exact event sequence (simlint's SIM107
rejects unseeded ``random.Random()`` in this package).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.sim import RandomSource
from repro.workloads.surveillance import PAPER_IMAGE_SIZES_MB

__all__ = [
    "ZipfianKeys",
    "DiurnalRate",
    "DeviceChurn",
    "ChurnEvent",
    "CameraStream",
]


class ZipfianKeys:
    """Zipf-distributed popularity over a fixed key universe.

    Key ``rank`` (0-based) is drawn with probability proportional to
    ``1 / (rank + 1) ** skew``; ``skew=0`` degrades to uniform.  The
    CDF is precomputed once, so a draw is one uniform variate plus a
    bisect — O(log n) regardless of universe size.
    """

    def __init__(
        self,
        n_keys: int,
        rng: RandomSource,
        skew: float = 0.99,
        prefix: str = "key",
    ) -> None:
        if n_keys <= 0:
            raise ValueError("n_keys must be positive")
        if skew < 0:
            raise ValueError("skew must be non-negative")
        self.n_keys = n_keys
        self.skew = skew
        self.prefix = prefix
        self._rng = rng
        cdf = []
        total = 0.0
        for rank in range(n_keys):
            total += 1.0 / (rank + 1) ** skew
            cdf.append(total)
        self._cdf = cdf
        self._total = total

    def key_name(self, rank: int) -> str:
        return f"{self.prefix}-{rank:06d}"

    def sample_rank(self) -> int:
        u = self._rng.random() * self._total
        return min(bisect_left(self._cdf, u), self.n_keys - 1)

    def sample(self) -> str:
        """One key name, drawn by popularity."""
        return self.key_name(self.sample_rank())

    def probability(self, rank: int) -> float:
        """The exact draw probability of the given rank."""
        return (1.0 / (rank + 1) ** self.skew) / self._total


class DiurnalRate:
    """A smooth day/night arrival-rate curve, ``rate(t)`` in req/s.

    A raised cosine between ``base_rate`` (trough) and ``peak_rate``,
    peaking at ``peak_at_s`` within each ``period_s`` cycle — the
    classic residential traffic shape (quiet overnight, busy evening).
    Instances are callables so they plug directly into
    :class:`repro.load.ModulatedPoissonArrivals` as its rate function.
    """

    def __init__(
        self,
        base_rate: float,
        peak_rate: float,
        period_s: float = 86_400.0,
        peak_at_s: float = 72_000.0,  # 20:00 on a midnight-based clock
    ) -> None:
        if base_rate < 0 or peak_rate < base_rate:
            raise ValueError("need 0 <= base_rate <= peak_rate")
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.base_rate = base_rate
        self.peak_rate = peak_rate
        self.period_s = period_s
        self.peak_at_s = peak_at_s

    def __call__(self, t: float) -> float:
        phase = 2.0 * math.pi * (t - self.peak_at_s) / self.period_s
        weight = 0.5 * (1.0 + math.cos(phase))  # 1 at the peak, 0 at trough
        return self.base_rate + (self.peak_rate - self.base_rate) * weight


@dataclass(frozen=True)
class ChurnEvent:
    """One availability transition for one device."""

    at_s: float
    node: str
    online: bool


class DeviceChurn:
    """Per-home device availability: alternating exponential periods.

    Each device stays up for Exp(1/mean_up_s) seconds, down for
    Exp(1/mean_down_s), repeating — the renewal model behind the
    paper's observation that home devices come and go (Section III-A).
    Each device gets its own forked stream, so adding a device never
    perturbs the schedules of the others.
    """

    def __init__(
        self,
        rng: RandomSource,
        mean_up_s: float = 3_600.0,
        mean_down_s: float = 300.0,
    ) -> None:
        if mean_up_s <= 0 or mean_down_s <= 0:
            raise ValueError("mean up/down times must be positive")
        self._rng = rng
        self.mean_up_s = mean_up_s
        self.mean_down_s = mean_down_s

    def schedule(self, nodes: Sequence[str], horizon_s: float) -> list[ChurnEvent]:
        """All transitions for ``nodes`` up to ``horizon_s``, time-sorted.

        Every device starts online at t=0; the first event for a device
        is therefore always a departure.
        """
        events: list[ChurnEvent] = []
        for node in nodes:
            stream = self._rng.fork(f"churn:{node}")
            t = 0.0
            online = True
            while True:
                mean = self.mean_up_s if online else self.mean_down_s
                t += stream.exponential(1.0 / mean)
                if t >= horizon_s:
                    break
                online = not online
                events.append(ChurnEvent(at_s=t, node=node, online=online))
        events.sort(key=lambda e: (e.at_s, e.node))
        return events


class CameraStream:
    """A surveillance camera's PUT stream: periodic captures with
    jitter, image sizes drawn from the paper's Figure 7 sweep.

    ``events(horizon_s)`` yields ``(at_s, size_mb)`` pairs — the shape
    the load driver's camera scenario injects as KV puts.
    """

    def __init__(
        self,
        rng: RandomSource,
        period_s: float = 10.0,
        jitter: float = 0.2,
        sizes_mb: Optional[Sequence[float]] = None,
    ) -> None:
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self._rng = rng
        self.period_s = period_s
        self.jitter = jitter
        self.sizes_mb = tuple(sizes_mb) if sizes_mb else PAPER_IMAGE_SIZES_MB

    def events(self, horizon_s: float):
        """Yield ``(at_s, size_mb)`` capture events up to ``horizon_s``."""
        t = 0.0
        while True:
            t += self._rng.jittered(self.period_s, self.jitter)
            if t >= horizon_s:
                return
            yield t, self._rng.choice(self.sizes_mb)
