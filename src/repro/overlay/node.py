"""The Chimera-like structured overlay node.

Implements the peer-to-peer layer the paper builds its metadata
key-value store on: prefix routing (Tapestry/Pastry-style), node join
with state transfer from the join path, graceful leave with
left/right-neighbour notification, failure-driven state repair, and the
red-black-tree "logical tree view" of known nodes that
``chimeraGetDecision`` reads (Figure 2).

A node owns the keys for which it is the numerically closest live
identifier.  Upper layers (the key-value store) subscribe to
``on_node_joined`` / ``on_node_left`` to redistribute keys when
membership changes — "a departing node's keys are always redistributed
among the available set of nodes" (Section III-A).
"""

from __future__ import annotations

import bisect
from collections import OrderedDict
from typing import Callable, Iterable, Optional

from repro.net import (
    HostDownError,
    Network,
    RemoteError,
    Request,
    RpcEndpoint,
    RpcTimeoutError,
)
from repro.net.topology import Host
from repro.overlay.errors import NotJoinedError, RoutingFailure
from repro.overlay.ids import NodeId
from repro.overlay.rbtree import RedBlackTree
from repro.overlay.state import LeafSet, RoutingTable

__all__ = ["ChimeraNode", "PeerInfo"]

#: Message types (namespaced to keep VStore++ traffic distinct).
MSG_JOIN = "chimera.join"
MSG_ROUTE = "chimera.route"
MSG_NODE_JOINED = "chimera.node-joined"
MSG_NODE_LEFT = "chimera.node-left"
MSG_PING = "chimera.ping"

#: Sentinel distinguishing "not cached" from a cached ``None`` (we are
#: the root for the key).
_ROUTE_MISS = object()


class PeerInfo:
    """(name, id) pair for a known overlay member."""

    __slots__ = ("name", "id")

    def __init__(self, name: str, node_id: NodeId) -> None:
        self.name = name
        self.id = node_id

    def wire(self) -> dict:
        return {"name": self.name, "id": self.id.hex}

    @classmethod
    def from_wire(cls, data: dict) -> "PeerInfo":
        return cls(data["name"], NodeId.from_hex(data["id"]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PeerInfo({self.name!r}, {self.id})"


class ChimeraNode:
    """One overlay participant, bound to a network host and endpoint.

    Parameters
    ----------
    network, host:
        Where the node lives.
    endpoint:
        Shared :class:`RpcEndpoint`; created (and started) if omitted.
        Sharing lets VStore++ and Chimera traffic ride one transport,
        mirroring the paper's single control-domain process.
    leaf_size:
        Leaf-set entries per side.
    hop_processing_s:
        Per-hop processing cost added by each node when forwarding a
        route (user-level Chimera work plus the VStore++↔Chimera IPC the
        paper describes).  This is what makes the DHT-lookup column of
        Table I a few milliseconds rather than pure wire time.
    route_cache:
        Enable the destination → next-hop cache.  Routing decisions are
        pure functions of the node's membership view, so results are
        cached per key and the whole cache is invalidated on any
        join/leave/stabilizer-driven view change.  Disable to measure
        the uncached baseline (perf harness) or to debug routing.
    route_cache_max:
        Entry cap for the route cache.  The cache is a bounded LRU: the
        least recently used key is evicted when the cap is reached
        (previously the whole cache was dropped wholesale, which both
        let memory spike to the cap on every node and caused recompute
        storms right after the flush).  Caching only affects wall-clock
        time, never simulated results.
    """

    #: Default route-cache entry cap (LRU eviction past this size).
    ROUTE_CACHE_MAX = 4096

    def __init__(
        self,
        network: Network,
        host: Host,
        endpoint: Optional[RpcEndpoint] = None,
        leaf_size: int = 4,
        hop_processing_s: float = 0.002,
        route_cache: bool = True,
        rpc_push: bool = True,
        route_cache_max: Optional[int] = None,
    ) -> None:
        self.network = network
        self.host = host
        self.endpoint = endpoint or RpcEndpoint(network, host, push=rpc_push)
        self.id = NodeId.from_name(host.name)
        self.leaf = LeafSet(self.id, per_side=leaf_size)
        self.table = RoutingTable(self.id)
        #: Red-black tree: id -> peer name ("logical tree view", Fig. 2).
        self.known = RedBlackTree()
        self.hop_processing_s = hop_processing_s
        self.joined = False
        self.on_node_joined: list[Callable[[PeerInfo], None]] = []
        self.on_node_left: list[Callable[[PeerInfo], None]] = []
        #: Diagnostics: total hops taken by route requests we initiated.
        self.routes_resolved = 0
        self.route_cache_enabled = route_cache
        self.route_cache_max = (
            route_cache_max if route_cache_max is not None else self.ROUTE_CACHE_MAX
        )
        #: key -> next hop (PeerInfo, or None when we are the root),
        #: in LRU order (oldest first).
        self._route_cache: OrderedDict[NodeId, Optional[PeerInfo]] = OrderedDict()
        self.route_cache_hits = 0
        #: Bumped on every membership-view change; consumers (sorted-id
        #: snapshot below, the stabilizer's probe cursor) use it to
        #: detect staleness without rescanning the view.
        self.view_version = 0
        self._ids_cache: tuple[NodeId, ...] = ()
        self._ids_cache_version = -1
        self._register_handlers()

    @property
    def name(self) -> str:
        return self.host.name

    @property
    def sim(self):
        return self.network.sim

    # -- membership views ---------------------------------------------------

    def peers(self) -> list[PeerInfo]:
        """All known peers in id order (from the red-black tree)."""
        return [PeerInfo(name, nid) for nid, name in self.known.items()]

    def name_of(self, node_id: NodeId) -> Optional[str]:
        """The host name for a known overlay id (None if unknown)."""
        if node_id == self.id:
            return self.name
        return self.known.get(node_id)

    def sorted_ids(self) -> tuple[NodeId, ...]:
        """Known peer ids in ascending order, cached per view version.

        The tuple is rebuilt lazily after a membership change, so steady
        -state callers (ring-window queries, the stabilizer's probe
        cursor) pay O(1) instead of re-traversing the red-black tree.
        """
        if self._ids_cache_version != self.view_version:
            self._ids_cache = tuple(self.known.keys())
            self._ids_cache_version = self.view_version
        return self._ids_cache

    def nearest_peers(
        self, key: NodeId, count: int, reference: bool = False
    ) -> list[PeerInfo]:
        """The ``count`` known peers closest to ``key``.

        Ordered by ``(circular distance, id value)`` — the same total
        order the key-value layer's replica selection has always used.

        The default path exploits the fact that the ``k`` nearest ids
        form a contiguous arc around ``key`` on the ring: it bisects the
        sorted-id snapshot and ranks only the ``2*count`` ids flanking
        the insertion point — O(k log k + log N) instead of the
        reference full sort's O(N log N).  ``reference=True`` selects
        the full-sort path; both return identical results (pinned by
        the A/B equality tests).
        """
        if count <= 0 or not self.known:
            return []
        if reference:
            ranked = sorted(
                ((nid.distance(key), nid.value, nid) for nid in self.known.keys())
            )[:count]
        else:
            ids = self.sorted_ids()
            n = len(ids)
            if n <= 2 * count:
                window = ids
            else:
                i = bisect.bisect_left(ids, key)
                window = [ids[(i + j) % n] for j in range(-count, count)]
            ranked = sorted((nid.distance(key), nid.value, nid) for nid in window)[
                :count
            ]
        return [PeerInfo(self._peer_name(nid), nid) for _d, _v, nid in ranked]

    def closest_known(self, key: NodeId, reference: bool = False) -> PeerInfo:
        """The member of our view (including ourselves) closest to ``key``.

        Used by the key-value layer to decide which records must move
        when membership changes.  Ties break toward the smaller id, the
        same rule the leaf set uses, so all nodes agree.
        """
        if reference:
            best_id = self.id
            best = (self.id.distance(key), self.id.value)
            for nid, _name in self.known.items():
                candidate = (nid.distance(key), nid.value)
                if candidate < best:
                    best = candidate
                    best_id = nid
            if best_id == self.id:
                return PeerInfo(self.name, self.id)
            return PeerInfo(self._peer_name(best_id), best_id)
        nearest = self.nearest_peers(key, 1)
        if nearest:
            peer = nearest[0]
            if (peer.id.distance(key), peer.id.value) < (
                self.id.distance(key),
                self.id.value,
            ):
                return peer
        return PeerInfo(self.name, self.id)

    def successors(self, count: int) -> list[PeerInfo]:
        """Up to ``count`` clockwise neighbours (replica targets)."""
        out = []
        for nid in self.leaf.rights()[:count]:
            out.append(PeerInfo(self._peer_name(nid), nid))
        return out

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Start serving overlay traffic as a single-node overlay."""
        self.endpoint.start()
        self.joined = True

    def join(self, bootstrap: Optional[str] = None):
        """Process: join via ``bootstrap`` (or start a new overlay).

        The join request is routed toward our own identifier; every node
        on the path contributes the routing-table row matching its
        shared prefix with us, and the root contributes its leaf set and
        full known view.  We then announce ourselves so existing members
        (and their key-value stores) can react.
        """
        self.start()
        if bootstrap is None:
            return
            yield  # pragma: no cover - makes this a generator
        reply = yield self.endpoint.call(
            bootstrap, MSG_JOIN, {"joiner": PeerInfo(self.name, self.id).wire()}
        )
        for wire in reply["peers"]:
            self._add_peer(PeerInfo.from_wire(wire))
        self._announce()

    def leave(self):
        """Process: gracefully leave the overlay.

        Notifies known peers (the paper's left/right neighbours plus the
        rest of our view — cheap at home scale) so they drop us and
        redistribute; the key-value layer transfers its keys *before*
        calling this.
        """
        me = PeerInfo(self.name, self.id).wire()
        for peer in self.peers():
            try:
                self.endpoint.notify(peer.name, MSG_NODE_LEFT, {"peer": me})
            except HostDownError:
                continue
        self.joined = False
        self.endpoint.stop()
        return
        yield  # pragma: no cover - makes this a generator

    def fail_abruptly(self) -> None:
        """Crash without notifying anyone (for churn experiments)."""
        self.joined = False
        self.endpoint.stop()
        self.host.set_online(False)

    # -- routing ---------------------------------------------------------------

    def next_hop(self, key: NodeId) -> Optional[PeerInfo]:
        """The peer to forward ``key`` to, or None if we are the root.

        Pastry rules: leaf set if it covers the key; otherwise the
        routing-table entry for the key's next digit; otherwise any
        known node strictly closer to the key with at least as long a
        shared prefix (the rare-case fallback that guarantees progress).

        Results are memoized per key while the membership view is
        stable; any view change (join, leave, failure eviction,
        stabilizer merge) flushes the cache.
        """
        if not self.joined:
            raise NotJoinedError(f"{self.name} has not joined the overlay")
        if self.route_cache_enabled:
            cache = self._route_cache
            hit = cache.get(key, _ROUTE_MISS)
            if hit is not _ROUTE_MISS:
                self.route_cache_hits += 1
                cache.move_to_end(key)
                return hit
            result = self._next_hop_uncached(key)
            if len(cache) >= self.route_cache_max:
                cache.popitem(last=False)
            cache[key] = result
            return result
        return self._next_hop_uncached(key)

    def _next_hop_uncached(self, key: NodeId) -> Optional[PeerInfo]:
        if key == self.id or not self.known:
            return None
        if self.leaf.covers(key):
            closest = self.leaf.closest(key)
            if closest == self.id:
                return None
            return PeerInfo(self._peer_name(closest), closest)
        entry = self.table.lookup(key)
        if entry is not None:
            return PeerInfo(self._peer_name(entry), entry)
        # Fallback: strictly closer node with >= shared prefix length.
        own_prefix = self.id.shared_prefix_len(key)
        own_distance = self.id.distance(key)
        best: Optional[NodeId] = None
        for nid, _name in self.known.items():
            if nid.shared_prefix_len(key) < own_prefix:
                continue
            if nid.distance(key) >= own_distance:
                continue
            if best is None or nid.distance(key) < best.distance(key):
                best = nid
        if best is None:
            return None
        return PeerInfo(self._peer_name(best), best)

    def resolve(self, key: NodeId, ctx=None):
        """Process: find the overlay root for ``key``.

        Returns a :class:`PeerInfo` for the owner.  Failed next hops are
        forgotten and routing retries alternatives; if every candidate
        fails, :class:`RoutingFailure` is raised.
        """
        hop = self.next_hop(key)
        if hop is None:
            self.routes_resolved += 1
            return PeerInfo(self.name, self.id)
        tel = self.sim.telemetry
        span = (
            tel.begin(
                "overlay.resolve",
                layer="overlay",
                node=self.name,
                parent=ctx,
                key=key.hex,
            )
            if tel is not None
            else None
        )
        yield self.sim.timeout(self.hop_processing_s)
        while True:
            body = {"key": key.hex, "hops": 1}
            if span is not None:
                body["span"] = span.ctx_wire()
            try:
                reply = yield self.endpoint.call(hop.name, MSG_ROUTE, body)
                self.routes_resolved += 1
                if span is not None:
                    tel.end(span, owner=reply["owner"]["name"])
                return PeerInfo.from_wire(reply["owner"])
            except (HostDownError, RpcTimeoutError, RemoteError):
                self._forget(hop.id)
                hop = self.next_hop(key)
                if hop is None:
                    self.routes_resolved += 1
                    if span is not None:
                        tel.end(span, owner=self.name)
                    return PeerInfo(self.name, self.id)

    # -- handlers -----------------------------------------------------------------

    def _register_handlers(self) -> None:
        self.endpoint.register(MSG_JOIN, self._handle_join)
        self.endpoint.register(MSG_ROUTE, self._handle_route)
        self.endpoint.register(MSG_NODE_JOINED, self._handle_node_joined)
        self.endpoint.register(MSG_NODE_LEFT, self._handle_node_left)
        self.endpoint.register(MSG_PING, lambda req: "pong")

    def _handle_join(self, request: Request):
        joiner = PeerInfo.from_wire(request.body["joiner"])
        yield self.sim.timeout(self.hop_processing_s)
        contribution = self._state_for(joiner)
        hop = self.next_hop(joiner.id)
        self._add_peer(joiner)
        if hop is None or hop.id == joiner.id:
            return {"peers": contribution}
        reply = yield self.endpoint.call(hop.name, MSG_JOIN, request.body)
        merged = {entry["id"]: entry for entry in reply["peers"]}
        for entry in contribution:
            merged.setdefault(entry["id"], entry)
        return {"peers": list(merged.values())}

    def _handle_route(self, request: Request):
        key = NodeId.from_hex(request.body["key"])
        hops = request.body["hops"]
        tel = self.sim.telemetry
        span = (
            tel.begin(
                "overlay.hop",
                layer="overlay",
                node=self.name,
                parent=request.body.get("span"),
                hops=hops,
            )
            if tel is not None
            else None
        )
        yield self.sim.timeout(self.hop_processing_s)
        hop = self.next_hop(key)
        while hop is not None:
            body = {"key": key.hex, "hops": hops + 1}
            if span is not None:
                body["span"] = span.ctx_wire()
            try:
                reply = yield self.endpoint.call(hop.name, MSG_ROUTE, body)
                if span is not None:
                    tel.end(span)
                return reply
            except (HostDownError, RpcTimeoutError):
                self._forget(hop.id)
                hop = self.next_hop(key)
        if span is not None:
            tel.end(span, root=True)
        return {"owner": PeerInfo(self.name, self.id).wire(), "hops": hops}

    def _handle_node_joined(self, request: Request) -> None:
        self._add_peer(PeerInfo.from_wire(request.body["peer"]))

    def _handle_node_left(self, request: Request) -> None:
        peer = PeerInfo.from_wire(request.body["peer"])
        self._forget(peer.id, notify=True)

    # -- state maintenance ----------------------------------------------------------

    def _state_for(self, joiner: PeerInfo) -> list[dict]:
        """Our contribution to a joiner's state: ourselves, the routing
        row for our shared prefix with it, and our leaf set."""
        row_index = self.id.shared_prefix_len(joiner.id)
        entries = {self.id}
        if row_index < len(self.table._rows):
            entries.update(e for e in self.table.row(row_index) if e is not None)
        entries.update(self.leaf.members())
        out = []
        for nid in entries:
            name = self._peer_name(nid) if nid != self.id else self.name
            out.append(PeerInfo(name, nid).wire())
        return out

    def seed_view(self, peers: "Iterable[PeerInfo]") -> None:
        """Bulk-install a pre-computed membership view.

        Used by the cluster builder's ``fast_join`` path: inserts every
        peer into the known view, leaf set, and routing table without
        firing per-peer join callbacks or announcements — the caller is
        constructing the whole overlay at once, so there is no stored
        data to redistribute and no protocol traffic to emit.
        """
        for peer in peers:
            if peer.id == self.id or peer.id in self.known:
                continue
            self.known.insert(peer.id, peer.name)
            self.leaf.add(peer.id)
            self.table.add(peer.id)
        self._route_cache.clear()
        self.view_version += 1

    def _add_peer(self, peer: PeerInfo) -> None:
        if peer.id == self.id:
            return
        is_new = peer.id not in self.known
        self.known.insert(peer.id, peer.name)
        self.leaf.add(peer.id)
        self.table.add(peer.id)
        if is_new:
            self._route_cache.clear()
            self.view_version += 1
            for callback in self.on_node_joined:
                callback(peer)

    def _forget(self, node_id: NodeId, notify: bool = True) -> None:
        name = self.known.get(node_id)
        if name is None:
            return
        self.known.delete(node_id)
        self.leaf.remove(node_id)
        self.table.remove(node_id)
        # Backfill the leaf set from the remaining known view so the
        # ring stays connected after departures.
        self.leaf.update(nid for nid, _ in self.known.items())
        self._route_cache.clear()
        self.view_version += 1
        if notify:
            peer = PeerInfo(name, node_id)
            for callback in self.on_node_left:
                callback(peer)

    def _announce(self) -> None:
        me = PeerInfo(self.name, self.id).wire()
        for peer in self.peers():
            try:
                self.endpoint.notify(peer.name, MSG_NODE_JOINED, {"peer": me})
            except HostDownError:
                self._forget(peer.id)

    def _peer_name(self, node_id: NodeId) -> str:
        name = self.known.get(node_id)
        if name is None:
            raise RoutingFailure(f"{self.name}: no name known for {node_id}")
        return name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ChimeraNode {self.name!r} id={self.id} peers={len(self.known)}>"
