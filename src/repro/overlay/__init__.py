"""Chimera-like structured peer-to-peer overlay (prefix routing).

Public surface:

* :class:`NodeId` — 40-bit identifiers for nodes, objects, services.
* :class:`ChimeraNode`, :class:`PeerInfo` — the overlay participant.
* :class:`RoutingTable`, :class:`LeafSet` — per-node routing state.
* :class:`RedBlackTree` — the ordered "logical tree view" structure.
* Errors: :class:`OverlayError`, :class:`NotJoinedError`,
  :class:`RoutingFailure`.
"""

from repro.overlay.errors import NotJoinedError, OverlayError, RoutingFailure
from repro.overlay.ids import ID_BITS, ID_DIGITS, ID_SPACE, NodeId
from repro.overlay.inspect import ownership_map, ring_diagram, routing_summary
from repro.overlay.node import ChimeraNode, PeerInfo
from repro.overlay.rbtree import RedBlackTree
from repro.overlay.stabilizer import Stabilizer
from repro.overlay.state import LeafSet, RoutingTable

__all__ = [
    "NodeId",
    "ID_BITS",
    "ID_DIGITS",
    "ID_SPACE",
    "ChimeraNode",
    "PeerInfo",
    "RoutingTable",
    "LeafSet",
    "RedBlackTree",
    "Stabilizer",
    "ring_diagram",
    "routing_summary",
    "ownership_map",
    "OverlayError",
    "NotJoinedError",
    "RoutingFailure",
]
