"""Per-node routing state: prefix routing table and leaf set.

Chimera provides "functionality to that of prefix routing protocols like
Tapestry and Pastry" (Section III-A).  Each node therefore keeps:

* a :class:`RoutingTable` — rows indexed by shared-prefix length, 16
  columns per row (one per hex digit); the entry at (r, c) is a node
  whose ID shares an r-digit prefix with ours and whose next digit is c;
* a :class:`LeafSet` — the ``per_side`` numerically closest nodes on
  each side of our ID on the ring, used for the final hop(s) and as the
  "left and right nodes" that join/leave notifications target.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.overlay.ids import ID_DIGITS, NodeId

__all__ = ["RoutingTable", "LeafSet"]


class RoutingTable:
    """Pastry-style prefix routing table (first-writer-wins slots)."""

    COLUMNS = 16

    def __init__(self, owner: NodeId) -> None:
        self.owner = owner
        self._rows: list[list[Optional[NodeId]]] = [
            [None] * self.COLUMNS for _ in range(ID_DIGITS)
        ]

    def add(self, node: NodeId) -> bool:
        """Record ``node``; returns True if it filled an empty slot.

        The physical-proximity refinement of real Pastry is out of scope
        (the home LAN is flat), so an occupied slot is kept as-is.
        """
        if node == self.owner:
            return False
        row = self.owner.shared_prefix_len(node)
        col = node.digit(row)
        if self._rows[row][col] is None:
            self._rows[row][col] = node
            return True
        return False

    def remove(self, node: NodeId) -> bool:
        """Forget ``node`` (e.g. it failed); returns True if present."""
        if node == self.owner:
            return False
        row = self.owner.shared_prefix_len(node)
        col = node.digit(row)
        if self._rows[row][col] == node:
            self._rows[row][col] = None
            return True
        return False

    def lookup(self, key: NodeId) -> Optional[NodeId]:
        """The next-hop entry for ``key``, or None if the slot is empty."""
        row = self.owner.shared_prefix_len(key)
        if row >= ID_DIGITS:
            return None  # key equals our own id
        return self._rows[row][key.digit(row)]

    def row(self, index: int) -> list[Optional[NodeId]]:
        """A copy of row ``index`` (used to seed joining nodes)."""
        return list(self._rows[index])

    def entries(self) -> Iterable[NodeId]:
        """All populated entries."""
        for row in self._rows:
            for entry in row:
                if entry is not None:
                    yield entry

    def __contains__(self, node: NodeId) -> bool:
        row = self.owner.shared_prefix_len(node)
        if row >= ID_DIGITS:
            return False
        return self._rows[row][node.digit(row)] == node


class LeafSet:
    """The numerically closest neighbours on each side of the owner."""

    def __init__(self, owner: NodeId, per_side: int = 4) -> None:
        if per_side <= 0:
            raise ValueError("per_side must be positive")
        self.owner = owner
        self.per_side = per_side
        self._members: set[NodeId] = set()

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._members

    def members(self) -> set[NodeId]:
        return set(self._members)

    def add(self, node: NodeId) -> None:
        if node == self.owner:
            return
        self._members.add(node)
        self._prune()

    def update(self, nodes: Iterable[NodeId]) -> None:
        for node in nodes:
            if node != self.owner:
                self._members.add(node)
        self._prune()

    def remove(self, node: NodeId) -> bool:
        if node in self._members:
            self._members.remove(node)
            return True
        return False

    # -- ring-ordered views --------------------------------------------------

    def rights(self) -> list[NodeId]:
        """Members ordered clockwise from the owner (closest first)."""
        ordered = sorted(self._members, key=self.owner.clockwise_distance)
        return ordered[: self.per_side]

    def lefts(self) -> list[NodeId]:
        """Members ordered counter-clockwise from the owner."""
        ordered = sorted(
            self._members, key=lambda n: n.clockwise_distance(self.owner)
        )
        return ordered[: self.per_side]

    def neighbours(self) -> list[NodeId]:
        """Immediate left and right neighbours (0, 1, or 2 nodes)."""
        out = []
        rights = self.rights()
        lefts = self.lefts()
        if rights:
            out.append(rights[0])
        if lefts and (not out or lefts[0] != out[0]):
            out.append(lefts[0])
        return out

    def covers(self, key: NodeId) -> bool:
        """True if ``key`` falls within the leaf-set arc.

        When the set is not full the node effectively knows its whole
        vicinity, so the leaf set covers every key.
        """
        if len(self._members) < 2 * self.per_side:
            return True
        leftmost = self.lefts()[-1]
        rightmost = self.rights()[-1]
        return key.between(leftmost, rightmost)

    def closest(self, key: NodeId) -> NodeId:
        """Member (or the owner) numerically closest to ``key``.

        Ties break toward the smaller identifier so every node resolves
        ownership identically.
        """
        candidates = [self.owner, *self._members]
        return min(candidates, key=lambda n: (n.distance(key), n.value))

    # -- internal ------------------------------------------------------------

    def _prune(self) -> None:
        """Keep only the per-side closest members in each direction."""
        # lefts() is rights() in reverse (clockwise distances are
        # distinct), so with <= 2*per_side members the two windows
        # cover everything and pruning is a no-op — skip the sorts.
        if len(self._members) <= 2 * self.per_side:
            return
        keep = set(self.rights()) | set(self.lefts())
        self._members = keep
