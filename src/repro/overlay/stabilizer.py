"""Periodic overlay stabilization.

The paper's overlay layer supports "dynamic overlay reconfiguration"
(Section III-A); join/leave notifications and failure-driven repair
handle most of it, but silent failures (a crashed node nobody has
talked to since) leave stale entries until some request stumbles over
them.  The :class:`Stabilizer` closes that gap the way Pastry-family
systems do: each node periodically pings its leaf-set neighbours and
exchanges membership views with one of them, evicting dead entries and
merging fresh ones.
"""

from __future__ import annotations

import bisect
from typing import Optional

from repro.net import HostDownError, RemoteError, Request, RpcTimeoutError
from repro.overlay.ids import NodeId
from repro.overlay.node import ChimeraNode, PeerInfo
from repro.sim import Interrupt

__all__ = ["Stabilizer"]

MSG_EXCHANGE = "chimera.stabilize"


class Stabilizer:
    """Periodic liveness checking and view exchange for one node."""

    def __init__(
        self,
        node: ChimeraNode,
        period_s: float = 10.0,
        ping_timeout_s: float = 2.0,
        scan_reference: bool = False,
    ) -> None:
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.node = node
        self.period_s = period_s
        self.ping_timeout_s = ping_timeout_s
        #: When True, the round-robin probe target is picked by the
        #: legacy O(N)-per-round filtered scan of the known view; the
        #: default picks the identical element by index arithmetic over
        #: the cached sorted-id snapshot (pinned by equality tests).
        self.scan_reference = scan_reference
        self.rounds = 0
        self.evictions = 0
        self.discoveries = 0
        #: Recently evicted ids -> (expiry, buried_at).  View exchanges
        #: must not resurrect a node we just found dead.
        self._tombstones: dict[NodeId, tuple[float, float]] = {}
        #: Last time we had direct evidence a peer was alive (ping
        #: success, exchange from it, or its join announcement) — what
        #: lets a *revived* node beat stale gossiped tombstones.
        self._last_alive: dict[NodeId, float] = {}
        self._process = None
        node.endpoint.register(MSG_EXCHANGE, self._handle_exchange)
        node.on_node_joined.append(self._on_peer_joined)

    def _on_peer_joined(self, peer: PeerInfo) -> None:
        """A join announcement is authoritative evidence of life."""
        self._last_alive[peer.id] = self.sim.now
        self._tombstones.pop(peer.id, None)

    @property
    def tombstone_ttl_s(self) -> float:
        return 3.0 * self.period_s

    def _bury(self, node_id: NodeId, buried_at: float | None = None) -> None:
        when = self.sim.now if buried_at is None else buried_at
        self._tombstones[node_id] = (self.sim.now + self.tombstone_ttl_s, when)

    def _is_buried(self, node_id: NodeId) -> bool:
        entry = self._tombstones.get(node_id)
        if entry is None:
            return False
        expiry, _ = entry
        if expiry <= self.sim.now:
            del self._tombstones[node_id]
            return False
        return True

    def _mark_alive(self, node_id: NodeId) -> None:
        self._last_alive[node_id] = self.sim.now
        self._tombstones.pop(node_id, None)

    def _live_tombstones(self) -> list[dict]:
        """Unexpired tombstones (id + burial time), for gossiping."""
        return [
            {"id": nid.hex, "at": self._tombstones[nid][1]}
            for nid in list(self._tombstones)
            if self._is_buried(nid)
        ]

    def _absorb_tombstones(self, items: list[dict]) -> None:
        """Adopt a peer's tombstones: forget and bury those nodes too.

        This is what propagates a silent failure beyond the dead node's
        immediate ring neighbours.  A tombstone is ignored when we have
        direct evidence the node was alive *after* it was buried — that
        is what lets a crashed-and-revived node rejoin cleanly while
        stale death gossip is still circulating.
        """
        for item in items:
            nid = NodeId.from_hex(item["id"])
            buried_at = float(item.get("at", self.sim.now))
            if nid == self.node.id:
                continue
            if self._last_alive.get(nid, float("-inf")) >= buried_at:
                continue
            if nid in self.node.known:
                self.node._forget(nid)
                self.evictions += 1
            self._bury(nid, buried_at=buried_at)

    @property
    def sim(self):
        return self.node.sim

    @property
    def running(self) -> bool:
        return self._process is not None and self._process.is_alive

    def start(self) -> None:
        if not self.running:
            self._process = self.sim.process(self._run())

    def stop(self) -> None:
        if self.running:
            self._process.interrupt("stabilizer stopped")
        self._process = None

    def stabilize_once(self):
        """Process: one stabilization round.

        Pings the immediate leaf neighbours (evicting the dead), then
        swaps views with the closest live neighbour (merging anything
        new).  Returns (evicted, discovered) counts for this round.
        """
        evicted = 0
        discovered = 0
        neighbours = list(self.node.leaf.neighbours())
        # SWIM-style sweep: besides the ring neighbours, probe one
        # further known peer per round (round-robin), so stale entries
        # about distant nodes are eventually caught too.
        probe = self._round_robin_probe(neighbours)
        if probe is not None:
            neighbours.append(probe)
        live: list[NodeId] = []
        for nid in neighbours:
            name = self.node.name_of(nid)
            if name is None:
                continue
            try:
                yield self.node.endpoint.call(
                    name, "chimera.ping", timeout=self.ping_timeout_s
                )
                live.append(nid)
                self._mark_alive(nid)
            except (HostDownError, RpcTimeoutError, RemoteError):
                self.node._forget(nid)
                self._bury(nid)
                evicted += 1
        if live:
            partner = self.node.name_of(live[0])
            my_view = [p.wire() for p in self.node.peers()]
            my_view.append(PeerInfo(self.node.name, self.node.id).wire())
            try:
                reply = yield self.node.endpoint.call(
                    partner,
                    MSG_EXCHANGE,
                    {"view": my_view, "tombstones": self._live_tombstones()},
                    timeout=self.ping_timeout_s,
                )
            except (HostDownError, RpcTimeoutError, RemoteError):
                self.node._forget(live[0])
                self._bury(live[0])
                evicted += 1
            else:
                self._mark_alive(live[0])
                self._absorb_tombstones(reply.get("tombstones", []))
                for wire in reply["view"]:
                    peer = PeerInfo.from_wire(wire)
                    if (
                        peer.id != self.node.id
                        and peer.id not in self.node.known
                        and not self._is_buried(peer.id)
                    ):
                        self.node._add_peer(peer)
                        discovered += 1
        self.rounds += 1
        self.evictions += evicted
        self.discoveries += discovered
        return evicted, discovered

    def _round_robin_probe(self, neighbours: list[NodeId]) -> Optional[NodeId]:
        """This round's extra probe target.

        Semantics (both paths): the in-order known view minus the leaf
        neighbours, indexed at ``rounds % len``.  The reference path
        materializes that filtered list — O(N) per round.  The default
        path picks the identical element from the node's cached
        sorted-id snapshot with index arithmetic: bisect the (at most
        two) neighbour positions out, then shift the round-robin index
        past them.
        """
        if self.scan_reference:
            others = [
                nid for nid, _ in self.node.known.items() if nid not in neighbours
            ]
            if not others:
                return None
            return others[self.rounds % len(others)]
        ids = self.node.sorted_ids()
        if not ids:
            return None
        skip: set[int] = set()
        for nb in neighbours:
            pos = bisect.bisect_left(ids, nb)
            if pos < len(ids) and ids[pos] == nb:
                skip.add(pos)
        remaining = len(ids) - len(skip)
        if remaining <= 0:
            return None
        j = self.rounds % remaining
        for pos in sorted(skip):
            if pos <= j:
                j += 1
        return ids[j]

    def _run(self):
        try:
            while True:
                yield self.sim.timeout(self.period_s)
                yield from self.stabilize_once()
        except Interrupt:
            return

    def _handle_exchange(self, request: Request) -> dict:
        # The sender itself is demonstrably alive right now.
        for wire in request.body["view"]:
            peer = PeerInfo.from_wire(wire)
            if peer.name == request.src:
                self._mark_alive(peer.id)
        self._absorb_tombstones(request.body.get("tombstones", []))
        for wire in request.body["view"]:
            peer = PeerInfo.from_wire(wire)
            if (
                peer.id != self.node.id
                and peer.id not in self.node.known
                and not self._is_buried(peer.id)
            ):
                self.node._add_peer(peer)
        view = [p.wire() for p in self.node.peers()]
        view.append(PeerInfo(self.node.name, self.node.id).wire())
        return {"view": view, "tombstones": self._live_tombstones()}
