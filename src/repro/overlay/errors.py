"""Exception types for the overlay layer."""

from __future__ import annotations


class OverlayError(Exception):
    """Base class for overlay errors."""


class NotJoinedError(OverlayError):
    """An operation requires the node to have joined the overlay."""


class RoutingFailure(OverlayError):
    """A key could not be routed (all candidate next hops failed)."""
