"""Introspection helpers for overlay state.

Text renderings of the identifier ring, one node's routing state, and
key-ownership maps — for the CLI, examples, and debugging sessions.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.overlay.ids import ID_DIGITS, NodeId
from repro.overlay.node import ChimeraNode

__all__ = ["ring_diagram", "routing_summary", "ownership_map"]


def ring_diagram(
    nodes: Iterable[ChimeraNode], keys: Optional[dict[str, NodeId]] = None
) -> str:
    """The overlay ring in id order, with optional key markers.

    ``keys`` maps display labels to key ids; each key is drawn under
    the node that owns it.
    """
    members = sorted(nodes, key=lambda n: n.id.value)
    if not members:
        return "(empty overlay)"
    lines = ["ring (clockwise by id):"]
    for node in members:
        marker = f"  {node.id}  {node.name}"
        if not node.joined:
            marker += "  [down]"
        lines.append(marker)
        if keys:
            owned = [
                label
                for label, key in keys.items()
                if _owner(members, key) is node
            ]
            for label in sorted(owned):
                lines.append(f"      `- {label}")
    return "\n".join(lines)


def _owner(members: list[ChimeraNode], key: NodeId) -> ChimeraNode:
    return min(members, key=lambda n: (n.id.distance(key), n.id.value))


def routing_summary(node: ChimeraNode) -> str:
    """One node's routing state: leaf set and populated table rows."""
    lines = [f"node {node.name} ({node.id})"]
    lefts = ", ".join(str(n) for n in node.leaf.lefts()) or "-"
    rights = ", ".join(str(n) for n in node.leaf.rights()) or "-"
    lines.append(f"  leaf set:  left [{lefts}]  right [{rights}]")
    populated = 0
    for row_index in range(ID_DIGITS):
        row = node.table.row(row_index)
        entries = [
            f"{col:x}:{entry}" for col, entry in enumerate(row) if entry
        ]
        if entries:
            populated += len(entries)
            lines.append(f"  row {row_index}: " + "  ".join(entries))
    lines.append(
        f"  known peers: {len(node.known)}, table entries: {populated}"
    )
    return "\n".join(lines)


def ownership_map(
    nodes: Iterable[ChimeraNode], names: Iterable[str]
) -> dict[str, str]:
    """Which live node owns each (hashed) name."""
    members = [n for n in nodes if n.joined]
    if not members:
        raise ValueError("no live nodes")
    out = {}
    for name in names:
        key = NodeId.from_name(name)
        out[name] = _owner(members, key).name
    return out
