"""Red-black tree.

The paper (Section III-A / Figure 2): "On each node, Chimera provides a
logical tree view of other nodes in the overlay, implemented as a
red-black tree."  Each overlay node keeps the identifiers of the peers
it knows about in one of these trees; neighbour queries (successor /
predecessor on the ring) and ordered traversal are served from it.

This is a textbook CLRS red-black tree with a nil sentinel, supporting
insert, delete, search, min/max, successor/predecessor, floor/ceiling,
and in-order iteration.  Keys must be mutually orderable; an optional
value is stored alongside each key.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple

__all__ = ["RedBlackTree"]

_RED = True
_BLACK = False


class _Node:
    __slots__ = ("key", "value", "color", "left", "right", "parent")

    def __init__(self, key: Any, value: Any, color: bool, nil: "_Node") -> None:
        self.key = key
        self.value = value
        self.color = color
        self.left = nil
        self.right = nil
        self.parent = nil


class RedBlackTree:
    """A mutable ordered map with O(log n) operations."""

    def __init__(self) -> None:
        self._nil = _Node(None, None, _BLACK, None)  # type: ignore[arg-type]
        self._nil.left = self._nil.right = self._nil.parent = self._nil
        self._root = self._nil
        self._size = 0

    # -- basics ---------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, key: Any) -> bool:
        return self._find(key) is not self._nil

    def get(self, key: Any, default: Any = None) -> Any:
        node = self._find(key)
        return default if node is self._nil else node.value

    def __iter__(self) -> Iterator[Any]:
        yield from (k for k, _ in self.items())

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """In-order (sorted) iteration of (key, value) pairs."""
        stack = []
        node = self._root
        while stack or node is not self._nil:
            while node is not self._nil:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    def keys(self) -> list:
        return [k for k, _ in self.items()]

    # -- queries ----------------------------------------------------------------

    def min(self) -> Any:
        """The smallest key; raises KeyError when empty."""
        if self._root is self._nil:
            raise KeyError("min() of an empty tree")
        return self._minimum(self._root).key

    def max(self) -> Any:
        """The largest key; raises KeyError when empty."""
        if self._root is self._nil:
            raise KeyError("max() of an empty tree")
        return self._maximum(self._root).key

    def successor(self, key: Any) -> Optional[Any]:
        """The smallest key strictly greater than ``key`` (or None)."""
        candidate = None
        node = self._root
        while node is not self._nil:
            if node.key > key:
                candidate = node.key
                node = node.left
            else:
                node = node.right
        return candidate

    def predecessor(self, key: Any) -> Optional[Any]:
        """The largest key strictly smaller than ``key`` (or None)."""
        candidate = None
        node = self._root
        while node is not self._nil:
            if node.key < key:
                candidate = node.key
                node = node.right
            else:
                node = node.left
        return candidate

    def floor(self, key: Any) -> Optional[Any]:
        """The largest key <= ``key`` (or None)."""
        candidate = None
        node = self._root
        while node is not self._nil:
            if node.key == key:
                return key
            if node.key < key:
                candidate = node.key
                node = node.right
            else:
                node = node.left
        return candidate

    def ceiling(self, key: Any) -> Optional[Any]:
        """The smallest key >= ``key`` (or None)."""
        candidate = None
        node = self._root
        while node is not self._nil:
            if node.key == key:
                return key
            if node.key > key:
                candidate = node.key
                node = node.left
            else:
                node = node.right
        return candidate

    # -- mutation ------------------------------------------------------------

    def insert(self, key: Any, value: Any = None) -> None:
        """Insert ``key`` (replacing the value if it already exists)."""
        parent = self._nil
        node = self._root
        while node is not self._nil:
            parent = node
            if key == node.key:
                node.value = value
                return
            node = node.left if key < node.key else node.right
        fresh = _Node(key, value, _RED, self._nil)
        fresh.parent = parent
        if parent is self._nil:
            self._root = fresh
        elif key < parent.key:
            parent.left = fresh
        else:
            parent.right = fresh
        self._size += 1
        self._insert_fixup(fresh)

    def delete(self, key: Any) -> bool:
        """Remove ``key``; returns False if it was not present."""
        node = self._find(key)
        if node is self._nil:
            return False
        self._delete_node(node)
        self._size -= 1
        return True

    # -- internal: search helpers -------------------------------------------

    def _find(self, key: Any) -> _Node:
        node = self._root
        while node is not self._nil:
            if key == node.key:
                return node
            node = node.left if key < node.key else node.right
        return self._nil

    def _minimum(self, node: _Node) -> _Node:
        while node.left is not self._nil:
            node = node.left
        return node

    def _maximum(self, node: _Node) -> _Node:
        while node.right is not self._nil:
            node = node.right
        return node

    # -- internal: rotations and fixups ---------------------------------------

    def _rotate_left(self, x: _Node) -> None:
        y = x.right
        x.right = y.left
        if y.left is not self._nil:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is self._nil:
            self._root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y

    def _rotate_right(self, x: _Node) -> None:
        y = x.left
        x.left = y.right
        if y.right is not self._nil:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is self._nil:
            self._root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y

    def _insert_fixup(self, z: _Node) -> None:
        while z.parent.color is _RED:
            if z.parent is z.parent.parent.left:
                uncle = z.parent.parent.right
                if uncle.color is _RED:
                    z.parent.color = _BLACK
                    uncle.color = _BLACK
                    z.parent.parent.color = _RED
                    z = z.parent.parent
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._rotate_left(z)
                    z.parent.color = _BLACK
                    z.parent.parent.color = _RED
                    self._rotate_right(z.parent.parent)
            else:
                uncle = z.parent.parent.left
                if uncle.color is _RED:
                    z.parent.color = _BLACK
                    uncle.color = _BLACK
                    z.parent.parent.color = _RED
                    z = z.parent.parent
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._rotate_right(z)
                    z.parent.color = _BLACK
                    z.parent.parent.color = _RED
                    self._rotate_left(z.parent.parent)
        self._root.color = _BLACK

    def _transplant(self, u: _Node, v: _Node) -> None:
        if u.parent is self._nil:
            self._root = v
        elif u is u.parent.left:
            u.parent.left = v
        else:
            u.parent.right = v
        v.parent = u.parent

    def _delete_node(self, z: _Node) -> None:
        y = z
        y_original_color = y.color
        if z.left is self._nil:
            x = z.right
            self._transplant(z, z.right)
        elif z.right is self._nil:
            x = z.left
            self._transplant(z, z.left)
        else:
            y = self._minimum(z.right)
            y_original_color = y.color
            x = y.right
            if y.parent is z:
                x.parent = y
            else:
                self._transplant(y, y.right)
                y.right = z.right
                y.right.parent = y
            self._transplant(z, y)
            y.left = z.left
            y.left.parent = y
            y.color = z.color
        if y_original_color is _BLACK:
            self._delete_fixup(x)

    def _delete_fixup(self, x: _Node) -> None:
        while x is not self._root and x.color is _BLACK:
            if x is x.parent.left:
                sibling = x.parent.right
                if sibling.color is _RED:
                    sibling.color = _BLACK
                    x.parent.color = _RED
                    self._rotate_left(x.parent)
                    sibling = x.parent.right
                if sibling.left.color is _BLACK and sibling.right.color is _BLACK:
                    sibling.color = _RED
                    x = x.parent
                else:
                    if sibling.right.color is _BLACK:
                        sibling.left.color = _BLACK
                        sibling.color = _RED
                        self._rotate_right(sibling)
                        sibling = x.parent.right
                    sibling.color = x.parent.color
                    x.parent.color = _BLACK
                    sibling.right.color = _BLACK
                    self._rotate_left(x.parent)
                    x = self._root
            else:
                sibling = x.parent.left
                if sibling.color is _RED:
                    sibling.color = _BLACK
                    x.parent.color = _RED
                    self._rotate_right(x.parent)
                    sibling = x.parent.left
                if sibling.right.color is _BLACK and sibling.left.color is _BLACK:
                    sibling.color = _RED
                    x = x.parent
                else:
                    if sibling.left.color is _BLACK:
                        sibling.right.color = _BLACK
                        sibling.color = _RED
                        self._rotate_left(sibling)
                        sibling = x.parent.left
                    sibling.color = x.parent.color
                    x.parent.color = _BLACK
                    sibling.left.color = _BLACK
                    self._rotate_right(x.parent)
                    x = self._root
        x.color = _BLACK

    # -- invariant checking (used by the test suite) --------------------------

    def check_invariants(self) -> None:
        """Assert the red-black invariants; raises AssertionError if violated.

        1. The root is black.
        2. No red node has a red child.
        3. Every root-to-leaf path has the same number of black nodes.
        4. In-order traversal yields strictly increasing keys.
        """
        assert self._root.color is _BLACK, "root must be black"
        self._check_subtree(self._root)
        keys = self.keys()
        assert all(a < b for a, b in zip(keys, keys[1:])), "keys out of order"
        assert len(keys) == self._size, "size counter out of sync"

    def _check_subtree(self, node: _Node) -> int:
        if node is self._nil:
            return 1
        if node.color is _RED:
            assert node.left.color is _BLACK and node.right.color is _BLACK, (
                "red node with red child"
            )
        left_black = self._check_subtree(node.left)
        right_black = self._check_subtree(node.right)
        assert left_black == right_black, "black-height mismatch"
        return left_black + (1 if node.color is _BLACK else 0)
