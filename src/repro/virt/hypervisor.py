"""Hypervisor and domain model: CPU scheduling and memory accounting.

Applications using VStore++ "reside in guest virtual machines (VMs)
running on nodes in the home environment, which is virtualized with the
hypervisor"; the VStore++ component itself runs "in the control domain
(i.e., dom0 in Xen)" (Section III).  This module models that split:

* a :class:`Hypervisor` per physical device, multiplexing the device's
  cores across domains;
* :class:`Domain` instances (``dom0`` plus guests), each with a VCPU
  count and a memory allocation;
* ``execute(cycles)`` — a simulation process that charges compute work
  against both the domain's VCPUs and the physical cores, inflated by
  the virtualization overhead;
* memory-pressure accounting: work whose resident set exceeds the
  domain's memory runs slower (the effect that delays face recognition
  in S2's 128 MB VM in Figure 7).
"""

from __future__ import annotations

from typing import Optional

from repro.sim import AllOf, Resource, Simulator
from repro.virt.device import DeviceProfile

__all__ = ["Hypervisor", "Domain"]


class Domain:
    """One VM (or the control domain) on a hypervisor."""

    def __init__(
        self,
        hypervisor: "Hypervisor",
        name: str,
        vcpus: int,
        mem_mb: float,
        is_control: bool = False,
    ) -> None:
        if vcpus <= 0:
            raise ValueError("vcpus must be positive")
        if mem_mb <= 0:
            raise ValueError("mem_mb must be positive")
        self.hypervisor = hypervisor
        self.name = name
        self.vcpus = vcpus
        self.mem_mb = mem_mb
        self.is_control = is_control
        self._vcpu = Resource(hypervisor.sim, capacity=vcpus)
        #: Cumulative busy VCPU-seconds, for utilization reporting.
        self.busy_cpu_seconds = 0.0

    @property
    def sim(self) -> Simulator:
        return self.hypervisor.sim

    @property
    def profile(self) -> DeviceProfile:
        return self.hypervisor.profile

    # -- compute -------------------------------------------------------------

    def execute(self, cycles: float, parallelism: int = 1, working_set_mb: float = 0.0):
        """Process: run ``cycles`` of work in this domain.

        ``parallelism`` splits the work across up to that many VCPUs
        (bounded by the domain's allocation and, transitively, by the
        physical cores).  ``working_set_mb`` triggers the thrashing
        penalty when it exceeds the domain's memory.  Returns the
        elapsed time.
        """
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        started = self.sim.now
        effective = cycles * (1.0 + self.profile.virt_overhead)
        effective *= self.memory_slowdown(working_set_mb)
        workers = max(1, min(parallelism, self.vcpus))
        per_worker = effective / workers
        procs = [
            self.sim.process(self._worker(per_worker)) for _ in range(workers)
        ]
        yield AllOf(self.sim, procs)
        return self.sim.now - started

    def memory_slowdown(self, working_set_mb: float) -> float:
        """Thrashing multiplier for a given resident-set size.

        1.0 while the working set fits; beyond that the domain pages,
        and the slowdown grows with the overcommit ratio.  The linear
        coefficient is calibrated so a 2× overcommit roughly quadruples
        runtime — coarse, but it reproduces the S2-vs-S3 crossover for
        large images in Figure 7.
        """
        if working_set_mb <= self.mem_mb:
            return 1.0
        overcommit = working_set_mb / self.mem_mb - 1.0
        return 1.0 + 3.0 * overcommit

    def _worker(self, cycles: float):
        vcpu_req = self._vcpu.request()
        yield vcpu_req
        core_req = self.hypervisor.cpu.request()
        yield core_req
        try:
            duration = cycles / self.profile.cycles_per_second
            yield self.sim.timeout(duration)
            self.busy_cpu_seconds += duration
            self.hypervisor.busy_core_seconds += duration
        finally:
            core_req.release()
            vcpu_req.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "dom0" if self.is_control else "guest"
        return f"<Domain {self.name!r} {kind} vcpus={self.vcpus} mem={self.mem_mb}MB>"


class Hypervisor:
    """The per-device virtualization layer (Xen in the prototype)."""

    def __init__(self, sim: Simulator, profile: DeviceProfile) -> None:
        self.sim = sim
        self.profile = profile
        self.cpu = Resource(sim, capacity=profile.cpu_cores)
        self.domains: dict[str, Domain] = {}
        self.busy_core_seconds = 0.0
        self._started_at = sim.now

    def create_domain(
        self,
        name: str,
        vcpus: Optional[int] = None,
        mem_mb: Optional[float] = None,
        is_control: bool = False,
    ) -> Domain:
        """Create a domain; defaults claim the whole device."""
        if name in self.domains:
            raise ValueError(f"duplicate domain name {name!r}")
        allocated = sum(d.mem_mb for d in self.domains.values())
        mem = mem_mb if mem_mb is not None else self.profile.mem_mb - allocated
        if mem <= 0 or allocated + mem > self.profile.mem_mb:
            raise ValueError(
                f"cannot allocate {mem_mb!r} MB: {allocated} of "
                f"{self.profile.mem_mb} MB already committed"
            )
        domain = Domain(
            self,
            name,
            vcpus if vcpus is not None else self.profile.cpu_cores,
            mem,
            is_control=is_control,
        )
        self.domains[name] = domain
        return domain

    def control_domain(self) -> Optional[Domain]:
        for domain in self.domains.values():
            if domain.is_control:
                return domain
        return None

    def instantaneous_load(self) -> float:
        """Fraction of physical cores busy right now."""
        return self.cpu.count / self.cpu.capacity

    def average_load(self) -> float:
        """Average core utilization since the hypervisor booted."""
        elapsed = self.sim.now - self._started_at
        if elapsed <= 0:
            return 0.0
        return min(
            1.0, self.busy_core_seconds / (elapsed * self.profile.cpu_cores)
        )

    def free_mem_mb(self) -> float:
        return self.profile.mem_mb - sum(d.mem_mb for d in self.domains.values())
