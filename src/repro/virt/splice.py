"""Zero-copy object transfer between remote machines.

"For object transfers between remote machines, we use the Linux zero
copy mechanism using splice and tee, which provides kernel to kernel
socket-based data transfer and avoids user space overheads.  Larger
objects are mapped to files before they are transferred." (Section IV.)

The :class:`TransferEngine` wraps :meth:`Network.transfer` and charges
the host-side CPU costs of moving the data: with zero copy only a small
constant syscall cost per transfer; without it, an additional per-byte
user-space copy cost on both ends.  The difference is what the paper's
splice/tee optimization buys.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net import Network, TransferReport

__all__ = ["TransferEngine"]


class TransferEngine:
    """Bulk object mover between two VStore++ nodes.

    ``observer`` (if set) receives every completed
    :class:`TransferReport` — the hook the adaptive bandwidth estimator
    uses to learn achieved throughput.
    """

    def __init__(
        self,
        network: Network,
        zero_copy: bool = True,
        syscall_s: float = 0.0005,
        copy_bandwidth: float = 250e6,
        mmap_threshold: int = 4 * 1024 * 1024,
        mmap_setup_s: float = 0.002,
        observer: Optional[Callable[[TransferReport], None]] = None,
    ) -> None:
        self.network = network
        self.zero_copy = zero_copy
        self.syscall_s = syscall_s
        self.copy_bandwidth = copy_bandwidth
        self.mmap_threshold = mmap_threshold
        self.mmap_setup_s = mmap_setup_s
        self.observer = observer
        self.bytes_moved = 0.0

    @property
    def sim(self):
        return self.network.sim

    def host_overhead(self, nbytes: float) -> float:
        """CPU-side cost of one transfer, seconds."""
        overhead = self.syscall_s
        if nbytes >= self.mmap_threshold:
            # Larger objects are mapped to files before transfer.
            overhead += self.mmap_setup_s
        if not self.zero_copy:
            # Two user-space copies (sender read + receiver write).
            overhead += 2.0 * nbytes / self.copy_bandwidth
        return overhead

    def send(self, src: str, dst: str, nbytes: float, ctx=None):
        """Process: move ``nbytes`` from ``src`` to ``dst``.

        Returns the network-layer :class:`TransferReport`; host-side
        overheads extend the elapsed simulated time.
        """
        tel = self.sim.telemetry
        span = (
            tel.begin(
                "net.transfer", layer="net", node=src, parent=ctx, dst=dst, bytes=nbytes
            )
            if tel is not None
            else None
        )
        overhead = self.host_overhead(nbytes)
        if overhead > 0:
            yield self.sim.timeout(overhead)
        report: TransferReport = yield self.network.transfer(src, dst, nbytes)
        self.bytes_moved += nbytes
        if self.observer is not None:
            self.observer(report)
        if span is not None:
            tel.end(span)
        return report
