"""Xen-like virtualization substrate.

Public surface:

* :class:`DeviceProfile` and the testbed profiles (`ATOM_NETBOOK`,
  `QUAD_DESKTOP`, `ATOM_S1`, `QUAD_S2`, `EC2_XL`).
* :class:`Hypervisor`, :class:`Domain` — CPU/memory model.
* :class:`XenSocketChannel` — shared-memory inter-domain transport.
* :class:`TransferEngine` — zero-copy inter-node object transfers.
"""

from repro.virt.device import (
    ATOM_NETBOOK,
    ATOM_S1,
    EC2_XL,
    QUAD_DESKTOP,
    QUAD_S2,
    DeviceProfile,
)
from repro.virt.hypervisor import Domain, Hypervisor
from repro.virt.splice import TransferEngine
from repro.virt.xensocket import XenSocketChannel

__all__ = [
    "DeviceProfile",
    "ATOM_NETBOOK",
    "QUAD_DESKTOP",
    "ATOM_S1",
    "QUAD_S2",
    "EC2_XL",
    "Hypervisor",
    "Domain",
    "XenSocketChannel",
    "TransferEngine",
]
