"""XenSocket: the shared-memory inter-domain transport.

"For data transfers between the host dom0 and guest VM, we utilize
XenSocket, a high throughput shared memory kernel module ...  Before
every transfer, the data receiver creates a shared descriptor page and
grant table reference which is sent to the sender before communication
begins.  The receiver allocates thirty two 4 KB pages.  For better
performance, the page size can be increased up to 2 MB if the devices
have larger memory." (Section IV.)

Cost model: a per-transfer setup (descriptor page + grant reference
exchange), then the payload moves page by page — each page pays a fixed
grant/notification overhead plus ``page_size / memory_bandwidth`` of
copy time.  Pages within one window of ``page_count`` shared pages
pipeline; a window-turnaround cost applies when the ring wraps.  The
defaults reproduce the inter-domain column of Table I (≈25 ms for 1 MB
up to ≈1.6 s for 100 MB with the 32×4 KB configuration).
"""

from __future__ import annotations

import math

from repro.sim import Resource, Simulator

__all__ = ["XenSocketChannel"]


class XenSocketChannel:
    """A shared-memory channel between two domains on one device."""

    def __init__(
        self,
        sim: Simulator,
        page_size: int = 4 * 1024,
        page_count: int = 32,
        setup_s: float = 0.007,
        page_overhead_s: float = 52e-6,
        memory_bandwidth: float = 400e6,
        window_turnaround_s: float = 20e-6,
    ) -> None:
        if page_size <= 0 or page_count <= 0:
            raise ValueError("page_size and page_count must be positive")
        if page_size > 2 * 1024 * 1024:
            raise ValueError("page size is limited to 2 MB")
        self.sim = sim
        self.page_size = page_size
        self.page_count = page_count
        self.setup_s = setup_s
        self.page_overhead_s = page_overhead_s
        self.memory_bandwidth = memory_bandwidth
        self.window_turnaround_s = window_turnaround_s
        #: Transfers serialize on the shared page ring.
        self._ring = Resource(sim, capacity=1)
        self.bytes_moved = 0.0
        self.transfers = 0
        #: Device name for telemetry attribution (set by the builder).
        self.owner = ""

    def transfer_time(self, nbytes: float) -> float:
        """Closed-form time for one transfer of ``nbytes`` (idle ring)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return self.setup_s
        pages = math.ceil(nbytes / self.page_size)
        windows = math.ceil(pages / self.page_count)
        per_page = self.page_overhead_s + self.page_size / self.memory_bandwidth
        return self.setup_s + pages * per_page + windows * self.window_turnaround_s

    def effective_bandwidth(self, nbytes: float) -> float:
        """Average bytes/second achieved for a transfer of ``nbytes``."""
        t = self.transfer_time(nbytes)
        return nbytes / t if t > 0 else float("inf")

    def transfer(self, nbytes: float, ctx=None):
        """Process: move ``nbytes`` across the channel.

        Concurrent transfers queue on the shared page ring (one
        descriptor ring per channel, as in the prototype).  Returns the
        queued-plus-transfer elapsed time.

        This is the coalesced fast path: the whole transfer is a single
        closed-form timeout (see :meth:`transfer_time`) rather than one
        simulated event per 4 KB page.  :meth:`transfer_paged` keeps the
        page-granular reference implementation; both produce the same
        simulated completion times.
        """
        started = self.sim.now
        duration = self.transfer_time(nbytes)
        tel = self.sim.telemetry
        span = (
            tel.begin(
                "xensocket.transfer",
                layer="xensocket",
                node=self.owner,
                parent=ctx,
                bytes=nbytes,
            )
            if tel is not None
            else None
        )
        request = self._ring.request()
        yield request
        try:
            yield self.sim.timeout(duration)
        finally:
            request.release()
        self.bytes_moved += nbytes
        self.transfers += 1
        if span is not None:
            tel.end(span)
        return self.sim.now - started

    def transfer_paged(self, nbytes: float, pages_per_event: int = 1):
        """Process: reference page-granular transfer of ``nbytes``.

        Moves the payload one shared-page window at a time, charging
        each batch of ``pages_per_event`` pages as its own simulated
        timeout (plus the window-turnaround cost when the ring wraps).
        The summed delays equal :meth:`transfer_time` up to float
        rounding; the equivalence test pins that.  Used by the perf
        harness as the per-page baseline the coalesced :meth:`transfer`
        is measured against.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if pages_per_event <= 0:
            raise ValueError("pages_per_event must be positive")
        started = self.sim.now
        request = self._ring.request()
        yield request
        try:
            yield self.sim.timeout(self.setup_s)
            if nbytes > 0:
                pages = math.ceil(nbytes / self.page_size)
                per_page = (
                    self.page_overhead_s + self.page_size / self.memory_bandwidth
                )
                sent = 0
                while sent < pages:
                    in_window = min(self.page_count, pages - sent)
                    done = 0
                    while done < in_window:
                        batch = min(pages_per_event, in_window - done)
                        yield self.sim.timeout(batch * per_page)
                        done += batch
                    sent += in_window
                    yield self.sim.timeout(self.window_turnaround_s)
        finally:
            request.release()
        self.bytes_moved += nbytes
        self.transfers += 1
        return self.sim.now - started
