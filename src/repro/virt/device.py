"""Device profiles for the hardware the paper's testbed used.

"The experimental testbed consists of 5 dual-core 1.66 GHz Intel Atom
N280 netbooks and a 2.3 GHZ 32 bit Intel Quad core desktop machine,
running Linux 2.6.28 on Xen" (Section V).  The service-placement
experiment (Figure 7) additionally names S1 (1.3 GHz dual-core Atom,
512 MB VM, 1 VCPU), S2 (1.8 GHz quad-core, 128 MB multi-VCPU VM), and
S3 (extra-large EC2 instance: five 2.9 GHz CPUs, 14 GB memory).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "DeviceProfile",
    "ATOM_NETBOOK",
    "QUAD_DESKTOP",
    "ATOM_S1",
    "QUAD_S2",
    "EC2_XL",
]


@dataclass(frozen=True)
class DeviceProfile:
    """Static hardware capability of one physical machine.

    ``virt_overhead`` is the fractional CPU cost of running virtualized
    ("virtualization requires additional memory resources and tends to
    result in higher CPU utilization", Section V-A); it inflates every
    computation's cycle count.
    """

    name: str
    cpu_cores: int
    cpu_ghz: float
    mem_mb: float
    disk_mb_s: float = 80.0
    virt_overhead: float = 0.05

    def __post_init__(self) -> None:
        if self.cpu_cores <= 0:
            raise ValueError("cpu_cores must be positive")
        if self.cpu_ghz <= 0:
            raise ValueError("cpu_ghz must be positive")
        if self.mem_mb <= 0:
            raise ValueError("mem_mb must be positive")
        if not 0 <= self.virt_overhead < 1:
            raise ValueError("virt_overhead must be in [0, 1)")

    @property
    def cycles_per_second(self) -> float:
        """Single-core cycle rate."""
        return self.cpu_ghz * 1e9


#: The home testbed netbooks (Intel Atom N280).
ATOM_NETBOOK = DeviceProfile("atom-netbook", cpu_cores=2, cpu_ghz=1.66, mem_mb=2048)

#: The home desktop (quad core, 2.3 GHz).
QUAD_DESKTOP = DeviceProfile("quad-desktop", cpu_cores=4, cpu_ghz=2.3, mem_mb=4096)

#: Figure 7's S1 host: low-end dual-core Atom.
ATOM_S1 = DeviceProfile("atom-s1", cpu_cores=2, cpu_ghz=1.3, mem_mb=1024)

#: Figure 7's S2 host: 1.8 GHz quad core.
QUAD_S2 = DeviceProfile("quad-s2", cpu_cores=4, cpu_ghz=1.8, mem_mb=4096)

#: Figure 7's S3: extra-large EC2 para-virtualized instance.
EC2_XL = DeviceProfile("ec2-xl", cpu_cores=5, cpu_ghz=2.9, mem_mb=14 * 1024)
