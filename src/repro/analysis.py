"""Shape analysis for experiment series.

The reproduction validates *shapes* — who wins, where curves peak,
where crossovers fall — rather than absolute 2011-testbed numbers.
These helpers make those checks explicit and reusable: benchmarks and
tests state their expectations through them instead of ad-hoc index
arithmetic.
"""

from __future__ import annotations

from typing import Sequence

__all__ = [
    "argmin",
    "argmax",
    "is_monotone_increasing",
    "is_monotone_decreasing",
    "has_interior_peak",
    "peak_position",
    "crossover_points",
    "relative_spread",
    "speedup",
]


def _validate(series: Sequence[float], min_len: int = 1) -> None:
    if len(series) < min_len:
        raise ValueError(f"series needs at least {min_len} points")


def argmin(series: Sequence[float]) -> int:
    """Index of the smallest value (first occurrence)."""
    _validate(series)
    return min(range(len(series)), key=lambda i: series[i])


def argmax(series: Sequence[float]) -> int:
    """Index of the largest value (first occurrence)."""
    _validate(series)
    return max(range(len(series)), key=lambda i: series[i])


def is_monotone_increasing(
    series: Sequence[float], tolerance: float = 0.0
) -> bool:
    """True if each step rises (allowing dips up to ``tolerance``
    fraction of the previous value)."""
    _validate(series, 2)
    for a, b in zip(series, series[1:]):
        if b < a * (1.0 - tolerance):
            return False
    return True


def is_monotone_decreasing(
    series: Sequence[float], tolerance: float = 0.0
) -> bool:
    """True if each step falls (allowing rises up to ``tolerance``)."""
    _validate(series, 2)
    for a, b in zip(series, series[1:]):
        if b > a * (1.0 + tolerance):
            return False
    return True


def has_interior_peak(series: Sequence[float], margin: float = 0.0) -> bool:
    """True if the maximum sits strictly inside the series and exceeds
    both endpoints by at least ``margin`` (fractional)."""
    _validate(series, 3)
    peak = argmax(series)
    if peak == 0 or peak == len(series) - 1:
        return False
    top = series[peak]
    return top > series[0] * (1.0 + margin) and top > series[-1] * (
        1.0 + margin
    )


def peak_position(
    xs: Sequence[float], ys: Sequence[float]
) -> float:
    """The x value at which ``ys`` peaks."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    _validate(ys)
    return xs[argmax(ys)]


def crossover_points(
    xs: Sequence[float], a: Sequence[float], b: Sequence[float]
) -> list[float]:
    """x positions where series ``a`` and ``b`` swap order.

    Each crossover is reported as the midpoint of the bracketing xs.
    Touching (equal values) does not count as a crossover.
    """
    if not (len(xs) == len(a) == len(b)):
        raise ValueError("xs, a, b must have equal length")
    _validate(xs, 2)
    out = []
    for i in range(len(xs) - 1):
        d0 = a[i] - b[i]
        d1 = a[i + 1] - b[i + 1]
        if d0 * d1 < 0:
            out.append((xs[i] + xs[i + 1]) / 2.0)
    return out


def relative_spread(series: Sequence[float]) -> float:
    """(max - min) / mean: how much a series varies."""
    _validate(series)
    mean = sum(series) / len(series)
    if mean == 0:
        return 0.0
    return (max(series) - min(series)) / mean


def speedup(baseline: float, improved: float) -> float:
    """baseline / improved; raises on non-positive improved."""
    if improved <= 0:
        raise ValueError("improved time must be positive")
    return baseline / improved
