"""Adaptive bandwidth estimation from observed transfers.

The paper's future work (Section VII (iv)) calls for "mechanisms that
adapt to the changing network conditions".  This module provides the
building block: an exponentially weighted moving average of achieved
throughput per remote peer, fed by completed transfers.  Plugged into a
device's resource sampler, it replaces the static link-capacity number
in published snapshots with what the node has *actually* been getting —
so placement decisions adapt when the wireless path degrades.
"""

from __future__ import annotations

from typing import Optional

from repro.net import TransferReport

__all__ = ["BandwidthEstimator"]


class BandwidthEstimator:
    """Per-peer EWMA throughput estimates (Mbit/s).

    The smoothing is asymmetric: degradation is folded in quickly
    (``alpha_down``) while improvements are trusted slowly
    (``alpha_up``) — conservative in the same spirit as TCP's reaction
    to loss, so placement decisions stop shipping data into a collapsed
    link after a couple of bad transfers.
    """

    def __init__(
        self,
        alpha: float = 0.3,
        default_mbps: float = 100.0,
        alpha_down: float = 0.7,
        metrics=None,
        node: str = "",
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not 0.0 < alpha_down <= 1.0:
            raise ValueError("alpha_down must be in (0, 1]")
        if default_mbps <= 0:
            raise ValueError("default_mbps must be positive")
        self.alpha = alpha
        self.alpha_down = alpha_down
        self.default_mbps = default_mbps
        #: Optional :class:`repro.telemetry.MetricsRegistry`: when set,
        #: every fold mirrors the estimates into ``net.bandwidth.ewma``
        #: gauges — the overall estimate under ``node`` and each
        #: per-peer estimate under ``node->peer`` — so link degradation
        #: shows up in metrics reports, not just placement internals.
        self.metrics = metrics
        self.node = node
        self._estimates: dict[str, float] = {}
        self._overall: Optional[float] = None
        self.observations = 0

    def _fold(self, previous: Optional[float], mbps: float) -> float:
        if previous is None:
            return mbps
        alpha = self.alpha_down if mbps < previous else self.alpha
        return alpha * mbps + (1.0 - alpha) * previous

    def observe(self, peer: str, nbytes: float, duration_s: float) -> None:
        """Fold one completed transfer into the estimates.

        Zero-duration or zero-byte transfers carry no signal and are
        ignored.
        """
        if duration_s <= 0 or nbytes <= 0:
            return
        mbps = nbytes * 8.0 / 1e6 / duration_s
        self._estimates[peer] = self._fold(self._estimates.get(peer), mbps)
        self._overall = self._fold(self._overall, mbps)
        self.observations += 1
        if self.metrics is not None:
            self.metrics.gauge("net.bandwidth.ewma", node=self.node).set(
                self._overall
            )
            self.metrics.gauge(
                "net.bandwidth.ewma", node=f"{self.node}->{peer}"
            ).set(self._estimates[peer])

    def observe_report(self, report: TransferReport) -> None:
        """Convenience: fold a network-layer :class:`TransferReport`."""
        self.observe(report.dst, report.nbytes, report.duration)

    def estimate_mbps(self, peer: str) -> float:
        """Current estimate toward ``peer`` (default until observed)."""
        return self._estimates.get(peer, self.default_mbps)

    def overall_mbps(self) -> float:
        """Recency-weighted estimate across all transfers (default if
        nothing has been observed yet)."""
        if self._overall is None:
            return self.default_mbps
        return self._overall

    def peers(self) -> list[str]:
        return list(self._estimates)

    def reset(self, peer: Optional[str] = None) -> None:
        """Forget one peer's history (or everything)."""
        if peer is None:
            self._estimates.clear()
            self._overall = None
        else:
            self._estimates.pop(peer, None)
