"""Resource snapshots: what one node publishes about itself.

The prototype used the Linux ``glibtop`` library to sample CPU, memory,
and I/O state; here the numbers come from the simulated device models,
but the schema — and its journey through the key-value store with the
node's address as key — is the same (Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["ResourceSnapshot"]


@dataclass
class ResourceSnapshot:
    """One node's resource state at a point in time.

    Attributes
    ----------
    node:
        The publishing node's name (also the key in the KV store).
    cpu_cores, cpu_ghz:
        Processor capability (static per device).
    cpu_load:
        Utilization in [0, 1].
    mem_total_mb, mem_free_mb:
        Memory capacity and availability, MB.
    mandatory_free_mb, voluntary_free_mb:
        Free space in the two storage bins, MB.
    bandwidth_mbps:
        Estimated available network bandwidth, Mbit/s.
    battery:
        Remaining battery fraction in [0, 1]; None means mains power.
    device_type:
        The device profile name (e.g. "atom-netbook"); lets service
        profiles express per-node-type requirements.
    taken_at:
        Simulation time of the sample.
    """

    node: str
    device_type: str = ""
    #: VCPUs of the guest VM where services execute (0 = unknown; use
    #: cpu_cores).  A 4-core device with a 1-VCPU guest runs a service
    #: at 1-core speed — this is what placement estimates must use.
    vcpus: int = 0
    cpu_cores: int = 1
    cpu_ghz: float = 1.0
    cpu_load: float = 0.0
    mem_total_mb: float = 1024.0
    mem_free_mb: float = 1024.0
    mandatory_free_mb: float = 0.0
    voluntary_free_mb: float = 0.0
    bandwidth_mbps: float = 100.0
    battery: Optional[float] = None
    taken_at: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.cpu_load <= 1.0:
            raise ValueError(f"cpu_load must be in [0, 1], got {self.cpu_load!r}")
        if self.battery is not None and not 0.0 <= self.battery <= 1.0:
            raise ValueError(f"battery must be in [0, 1], got {self.battery!r}")

    @property
    def free_compute_ghz(self) -> float:
        """Aggregate idle compute, GHz-cores."""
        return self.cpu_cores * self.cpu_ghz * (1.0 - self.cpu_load)

    @property
    def on_mains(self) -> bool:
        return self.battery is None

    def wire(self) -> dict:
        return {
            "node": self.node,
            "device_type": self.device_type,
            "vcpus": self.vcpus,
            "cpu_cores": self.cpu_cores,
            "cpu_ghz": self.cpu_ghz,
            "cpu_load": self.cpu_load,
            "mem_total_mb": self.mem_total_mb,
            "mem_free_mb": self.mem_free_mb,
            "mandatory_free_mb": self.mandatory_free_mb,
            "voluntary_free_mb": self.voluntary_free_mb,
            "bandwidth_mbps": self.bandwidth_mbps,
            "battery": self.battery,
            "taken_at": self.taken_at,
        }

    @classmethod
    def from_wire(cls, data: dict) -> "ResourceSnapshot":
        return cls(**data)
