"""Periodic resource publication into the key-value store.

"Nodes periodically update their current resource usage in the
key-value store using their node ID as key and serialized resource
information structure as value.  The updates are performed through a
resource monitoring utility module ... after a configurable time period
(to contain messaging overheads)." — Sections III-A and IV.
"""

from __future__ import annotations

from typing import Callable

from repro.kvstore import DhtKeyValueStore
from repro.kvstore.errors import KvError
from repro.monitoring.snapshot import ResourceSnapshot
from repro.net import NetworkError
from repro.sim import Interrupt

__all__ = ["ResourceMonitor", "resource_key"]


def resource_key(node_name: str) -> str:
    """KV-store key under which a node's resources are published."""
    return f"resource:{node_name}"


class ResourceMonitor:
    """Publishes a node's :class:`ResourceSnapshot` on a fixed period.

    ``sampler`` is called at each tick to produce the snapshot — the
    device model supplies it (CPU load from the simulated scheduler, bin
    space from the file-system watcher, etc.).
    """

    def __init__(
        self,
        store: DhtKeyValueStore,
        sampler: Callable[[], ResourceSnapshot],
        period_s: float = 5.0,
    ) -> None:
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.store = store
        self.sampler = sampler
        self.period_s = period_s
        self.updates_published = 0
        #: Simulated time of the last successful publish (None before
        #: the first one) — the health scoreboard's staleness input.
        self.last_published_at: float | None = None
        self._process = None

    @property
    def sim(self):
        return self.store.sim

    @property
    def running(self) -> bool:
        return self._process is not None and self._process.is_alive

    def start(self, publish_immediately: bool = True) -> None:
        if not self.running:
            self._process = self.sim.process(self._run(publish_immediately))

    def stop(self) -> None:
        if self.running:
            self._process.interrupt("monitor stopped")
        self._process = None

    def publish_once(self):
        """Process: take one sample and publish it (also used by ticks)."""
        snapshot = self.sampler()
        yield from self.store.put(
            resource_key(self.store.name), snapshot.wire()
        )
        self.updates_published += 1
        self.last_published_at = self.sim.now
        return snapshot

    def fetch(self, node_name: str):
        """Process: the latest snapshot another node published.

        Raises :class:`KeyNotFoundError` if the node never published.
        """
        value = yield from self.store.get(resource_key(node_name))
        return ResourceSnapshot.from_wire(value)

    def _run(self, publish_immediately: bool):
        try:
            if publish_immediately:
                yield from self._publish_guarded()
            while True:
                yield self.sim.timeout(self.period_s)
                yield from self._publish_guarded()
        except Interrupt:
            return

    def _publish_guarded(self):
        try:
            yield from self.publish_once()
        except (NetworkError, KvError):
            # Transient routing trouble (churn); the next tick retries.
            pass
