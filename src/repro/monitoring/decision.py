"""The ``chimeraGetDecision`` engine: pick target nodes by policy.

"When an object needs to be stored or processed, VStore++ makes a
chimeraGetDecision() call to obtain a list of nodes and for each node,
queries the key-value store for the node's resource information ...
The 'policy' parameter makes it possible to support multiple decision
policies, where requests are routed to target nodes depending on
overall service performance, vs. achieving balanced resource
utilization or improved battery lives for portable devices."
(Section III-A, Figure 2.)

The candidate list comes from the overlay node's red-black-tree view of
known members; each candidate's snapshot is fetched from the key-value
store, so the decision's cost is real simulated time — the paper's
evaluation explicitly includes it.

Snapshot fetches can be issued sequentially (the reference behaviour:
the decision pays the *sum* of the k lookup latencies) or scatter-gather
(``parallel=True``: all k lookups issued concurrently and joined, so the
decision pays roughly the *max*).  Parallel lookups overlap on the links
and therefore change simulated timing — the mode is opt-in via
``ClusterConfig(parallel_decision=True)`` and pinned by its own golden
tests; the ranking produced is identical in both modes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Optional

from repro.kvstore import DhtKeyValueStore, KeyNotFoundError
from repro.monitoring.monitor import resource_key
from repro.monitoring.snapshot import ResourceSnapshot
from repro.net import NetworkError
from repro.overlay import ChimeraNode

__all__ = ["DecisionPolicy", "Candidate", "DecisionEngine"]


class DecisionPolicy(Enum):
    """How candidate nodes are ranked."""

    #: Maximize service performance: most idle compute first.
    PERFORMANCE = "performance"
    #: Balance utilization: least-loaded node first.
    BALANCED = "balanced"
    #: Preserve portable devices: mains-powered first, then performance.
    BATTERY = "battery"


@dataclass
class Candidate:
    """A ranked placement candidate."""

    node: str
    snapshot: ResourceSnapshot

    def sort_key(self, policy: DecisionPolicy) -> tuple:
        s = self.snapshot
        if policy is DecisionPolicy.PERFORMANCE:
            return (-s.free_compute_ghz, -s.bandwidth_mbps, -s.mem_free_mb)
        if policy is DecisionPolicy.BALANCED:
            return (s.cpu_load, -s.mem_free_mb, -s.free_compute_ghz)
        if policy is DecisionPolicy.BATTERY:
            battery_rank = 0 if s.on_mains else 1
            drain_guard = 0.0 if s.battery is None else -s.battery
            return (battery_rank, drain_guard, -s.free_compute_ghz)
        raise ValueError(f"unknown policy {policy!r}")


class DecisionEngine:
    """Per-node placement decisions over the overlay's known view."""

    def __init__(
        self,
        chimera: ChimeraNode,
        store: DhtKeyValueStore,
        include_self: bool = True,
        parallel: bool = False,
        freshness_ttl_s: Optional[float] = None,
        breakers=None,
    ) -> None:
        self.chimera = chimera
        self.store = store
        self.include_self = include_self
        #: Scatter-gather snapshot fetch: all candidate lookups issued
        #: concurrently (max-of-k latency) instead of one after another
        #: (sum-of-k).
        self.parallel = parallel
        #: Health filter (resilience layer): drop candidates whose
        #: published snapshot is older than this — a node that stopped
        #: publishing is likely dead, and its stale snapshot would keep
        #: attracting placements.  None disables the filter.
        self.freshness_ttl_s = freshness_ttl_s
        #: Optional :class:`repro.resilience.BreakerRegistry`: drop
        #: candidates whose circuit is currently open.
        self.breakers = breakers
        self.decisions_made = 0
        #: Candidates dropped by the health filters, for diagnostics.
        self.filtered_stale = 0
        self.filtered_open = 0

    @property
    def sim(self):
        return self.chimera.sim

    def decide(
        self,
        policy: DecisionPolicy = DecisionPolicy.PERFORMANCE,
        count: Optional[int] = None,
        require: Optional[Callable[[ResourceSnapshot], bool]] = None,
        among: Optional[list[str]] = None,
        ctx=None,
    ):
        """Process: ranked :class:`Candidate` list (best first).

        ``require`` filters candidates by snapshot (e.g. minimum free
        memory from a service profile); ``among`` restricts to specific
        node names (e.g. only nodes advertising a service).  Nodes that
        never published resources are skipped.
        """
        names = among if among is not None else self._default_candidates()
        tel = self.sim.telemetry
        span = (
            tel.begin(
                "decision.decide",
                layer="decision",
                node=self.chimera.name,
                parent=ctx,
                policy=policy.value,
                candidates=len(names),
                parallel=self.parallel,
            )
            if tel is not None
            else None
        )
        if self.parallel:
            # Scatter-gather: every candidate lookup is in flight at
            # once; the decision waits for the slowest, not the sum.
            snapshots = yield self.sim.gather(
                [self._fetch_snapshot(name, ctx=span) for name in names]
            )
        else:
            snapshots = []
            for name in names:
                snapshots.append((yield from self._fetch_snapshot(name, ctx=span)))
        candidates: list[Candidate] = []
        for name, snapshot in zip(names, snapshots):
            if snapshot is None:
                continue
            if not self._healthy(name, snapshot):
                continue
            if require is not None and not require(snapshot):
                continue
            candidates.append(Candidate(name, snapshot))
        candidates.sort(key=lambda c: c.sort_key(policy))
        self.decisions_made += 1
        if span is not None:
            tel.end(span, ranked=len(candidates))
        if count is not None:
            return candidates[:count]
        return candidates

    def _healthy(self, name: str, snapshot: ResourceSnapshot) -> bool:
        """Health-aware filtering: stale publishers and open breakers.

        Our own snapshot is never stale — we just took it or could; and
        there is no breaker on ourselves.
        """
        if name == self.chimera.name:
            return True
        if (
            self.freshness_ttl_s is not None
            and self.sim.now - snapshot.taken_at > self.freshness_ttl_s
        ):
            self.filtered_stale += 1
            return False
        if self.breakers is not None and self.breakers.is_open(name, self.sim.now):
            self.filtered_open += 1
            return False
        return True

    def _fetch_snapshot(self, name: str, ctx=None):
        """Process: one candidate's published snapshot, or None.

        Candidates that never published (``KeyNotFoundError``) or whose
        lookup hits routing trouble (``NetworkError``) are reported as
        None and skipped by :meth:`decide` — in both fetch modes.
        """
        try:
            value = yield from self.store.get(resource_key(name), ctx=ctx)
        except (KeyNotFoundError, NetworkError):
            return None
        return ResourceSnapshot.from_wire(value)

    def _default_candidates(self) -> list[str]:
        names = [name for _nid, name in self.chimera.known.items()]
        if self.include_self:
            names.append(self.chimera.name)
        return names


def chimera_get_decision(
    engine: DecisionEngine,
    policy: DecisionPolicy = DecisionPolicy.PERFORMANCE,
    count: Optional[int] = None,
):
    """Process: the paper's ``chimeraGetDecision()`` call, verbatim.

    A thin named alias over :meth:`DecisionEngine.decide` so code that
    follows the paper's Figure 2 pseudocode reads one-to-one.
    """
    result = yield from engine.decide(policy=policy, count=count)
    return result
