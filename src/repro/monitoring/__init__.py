"""Resource monitoring and placement decisions.

Public surface:

* :class:`ResourceSnapshot` — the per-node resource schema.
* :class:`ResourceMonitor` — periodic publication into the KV store.
* :class:`FileSystemWatcher` — mandatory/voluntary bin tracking.
* :class:`DecisionEngine`, :class:`DecisionPolicy`, :class:`Candidate` —
  the ``chimeraGetDecision`` machinery.
"""

from repro.monitoring.bandwidth import BandwidthEstimator
from repro.monitoring.decision import (
    Candidate,
    DecisionEngine,
    DecisionPolicy,
    chimera_get_decision,
)
from repro.monitoring.monitor import ResourceMonitor, resource_key
from repro.monitoring.snapshot import ResourceSnapshot
from repro.monitoring.watcher import FileSystemWatcher

__all__ = [
    "ResourceSnapshot",
    "ResourceMonitor",
    "resource_key",
    "FileSystemWatcher",
    "DecisionEngine",
    "DecisionPolicy",
    "Candidate",
    "chimera_get_decision",
    "BandwidthEstimator",
]
