"""File-system watcher for the mandatory and voluntary storage bins.

"A simple file system watcher component keeps track of mandatory and
voluntary bin space" (Section IV).  The watcher observes any objects
exposing ``capacity_mb`` and ``used_mb`` (the VStore++ bins do) and
reports free space; it also lets callers register alarms that fire when
a bin crosses a fullness threshold.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

__all__ = ["BinLike", "FileSystemWatcher"]


class BinLike(Protocol):
    """Anything with a capacity and a usage, in MB."""

    @property
    def capacity_mb(self) -> float: ...

    @property
    def used_mb(self) -> float: ...


class FileSystemWatcher:
    """Tracks free space in the two bins and raises threshold alarms."""

    def __init__(
        self,
        mandatory: Optional[BinLike] = None,
        voluntary: Optional[BinLike] = None,
    ) -> None:
        self.mandatory = mandatory
        self.voluntary = voluntary
        self._alarms: list[tuple[str, float, Callable[[str, float], None]]] = []

    def mandatory_free_mb(self) -> float:
        if self.mandatory is None:
            return 0.0
        return max(0.0, self.mandatory.capacity_mb - self.mandatory.used_mb)

    def voluntary_free_mb(self) -> float:
        if self.voluntary is None:
            return 0.0
        return max(0.0, self.voluntary.capacity_mb - self.voluntary.used_mb)

    def fullness(self, which: str) -> float:
        """Fraction used of the named bin ('mandatory'/'voluntary')."""
        target = self._bin(which)
        if target is None or target.capacity_mb <= 0:
            return 0.0
        return min(1.0, target.used_mb / target.capacity_mb)

    def add_alarm(
        self,
        which: str,
        threshold: float,
        callback: Callable[[str, float], None],
    ) -> None:
        """Call ``callback(which, fullness)`` when fullness >= threshold.

        Alarms are edge-checked by :meth:`poll`; each alarm fires at
        most once per crossing (it re-arms when fullness drops below).
        """
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self._bin(which)  # validates the name
        self._alarms.append([which, threshold, callback, False])  # type: ignore[arg-type]

    def poll(self) -> None:
        """Check alarms against current fullness."""
        for alarm in self._alarms:
            which, threshold, callback, fired = alarm
            level = self.fullness(which)
            if level >= threshold and not fired:
                alarm[3] = True
                callback(which, level)
            elif level < threshold and fired:
                alarm[3] = False

    def _bin(self, which: str) -> Optional[BinLike]:
        if which == "mandatory":
            return self.mandatory
        if which == "voluntary":
            return self.voluntary
        raise ValueError(f"unknown bin {which!r}")
