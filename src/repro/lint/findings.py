"""Finding records produced by simlint rules.

A :class:`Finding` pins one rule violation to a file, line, and column,
and carries the stripped source line so the committed baseline can
re-identify grandfathered findings even after unrelated edits shift
line numbers (matching is by ``(code, path, source)``, not by line).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Finding"]


@dataclass
class Finding:
    """One rule violation at a specific source location."""

    code: str
    path: str
    line: int
    col: int
    message: str
    #: The violating source line, stripped — the baseline match key.
    source: str = ""
    #: Set by the engine when an inline ``# simlint: ignore[CODE]``
    #: comment covers this finding.
    suppressed: bool = False
    #: Set by the engine when the committed baseline grandfathers it.
    baselined: bool = False
    #: Free-form extras some rules attach (e.g. the offending call).
    extra: dict = field(default_factory=dict)

    @property
    def active(self) -> bool:
        """True when the finding should gate the build."""
        return not (self.suppressed or self.baselined)

    def key(self) -> tuple[str, str, str]:
        """Line-number-insensitive identity used by the baseline."""
        return (self.code, self.path, self.source)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
