"""simlint: AST-based invariant checker for the reproduction's contracts.

The reproduction's value rests on bit-for-bit deterministic simulation;
nothing in a code review reliably stops a ``time.time()`` or an
unseeded ``random`` draw from slipping into a hot path.  simlint
encodes the repo's determinism, telemetry, RPC, and configuration
contracts as pluggable :class:`~repro.lint.registry.Rule` visitors and
runs them over the tree (``python -m repro lint --check`` in CI).

Rule families (see docs/STATIC_ANALYSIS.md for the full catalogue):

- ``SIM1xx`` — determinism: no wall clock, no global random streams,
  no PEP 479 ``next()`` hazards, no unordered set iteration in
  ranking code, no real sleeps, no ambient entropy.
- ``TEL2xx`` — telemetry: every emit guarded by ``is not None`` so
  telemetry-off runs stay byte-identical.
- ``RPC3xx`` — RPC: handler exceptions stay inside the repro error
  hierarchy so retry/breaker policy can classify them.
- ``CFG4xx`` — configuration: new ``ClusterConfig`` fields default to
  feature-off (CFG401), and feature code in the builder stays behind
  its flag's guard (CFG402, whole-program).
- ``WIRE5xx`` — wire contracts (whole-program): every message type has
  both sender and handler, required fields are always sent, no dead
  wire fields, handlers of one message agree across device classes.
- ``FLOW6xx`` — dataflow: every sim RNG forks off the configured
  ``RandomSource`` tree instead of a literal seed.

The ``WIRE``/``CFG402`` rules are :class:`ProjectRule` subclasses: the
engine parses every file once into a shared cache, builds a
:class:`ProjectIndex` of RPC call sites, handler registrations, and
field reads over it, and runs the cross-file rules in a second phase
(``python -m repro lint --wire-report`` dumps the recovered protocol).

Findings are suppressed inline with ``# simlint: ignore[CODE]`` or
grandfathered in a committed baseline (``.simlint-baseline.json``),
each entry carrying a one-line justification.
"""

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.engine import (
    DEFAULT_PATHS,
    LintReport,
    lint_paths,
    lint_source,
    run_lint,
)
from repro.lint.findings import Finding
from repro.lint.index import ProjectIndex
from repro.lint.registry import (
    ProjectRule,
    Rule,
    all_rules,
    get_rule,
    register_rule,
)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "DEFAULT_PATHS",
    "Finding",
    "LintReport",
    "ProjectIndex",
    "ProjectRule",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "register_rule",
    "run_lint",
]
