"""simlint: AST-based invariant checker for the reproduction's contracts.

The reproduction's value rests on bit-for-bit deterministic simulation;
nothing in a code review reliably stops a ``time.time()`` or an
unseeded ``random`` draw from slipping into a hot path.  simlint
encodes the repo's determinism, telemetry, RPC, and configuration
contracts as pluggable :class:`~repro.lint.registry.Rule` visitors and
runs them over the tree (``python -m repro lint --check`` in CI).

Rule families (see docs/STATIC_ANALYSIS.md for the full catalogue):

- ``SIM1xx`` — determinism: no wall clock, no global random streams,
  no PEP 479 ``next()`` hazards, no unordered set iteration in
  ranking code, no real sleeps, no ambient entropy.
- ``TEL2xx`` — telemetry: every emit guarded by ``is not None`` so
  telemetry-off runs stay byte-identical.
- ``RPC3xx`` — RPC: handler exceptions stay inside the repro error
  hierarchy so retry/breaker policy can classify them.
- ``CFG4xx`` — configuration: new ``ClusterConfig`` fields default to
  feature-off, keeping pinned goldens valid.

Findings are suppressed inline with ``# simlint: ignore[CODE]`` or
grandfathered in a committed baseline (``.simlint-baseline.json``),
each entry carrying a one-line justification.
"""

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.engine import (
    DEFAULT_PATHS,
    LintReport,
    lint_paths,
    lint_source,
    run_lint,
)
from repro.lint.findings import Finding
from repro.lint.registry import Rule, all_rules, get_rule, register_rule

__all__ = [
    "Baseline",
    "BaselineEntry",
    "DEFAULT_PATHS",
    "Finding",
    "LintReport",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "register_rule",
    "run_lint",
]
