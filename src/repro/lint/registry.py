"""Rule base class and registry for the simlint checker.

Rules are :class:`ast.NodeVisitor` subclasses registered under a unique
code (``SIM1xx`` determinism, ``TEL2xx`` telemetry, ``RPC3xx`` RPC
contracts, ``CFG4xx`` configuration).  Each rule declares the path
prefixes it applies to, so substrate-only invariants (no wall clock, no
global random) never fire on the CLI or the parallel harness, which
legitimately measure wall time.
"""

from __future__ import annotations

import ast

from repro.lint.context import FileContext
from repro.lint.findings import Finding

__all__ = [
    "ProjectRule",
    "Rule",
    "all_rules",
    "code_selected",
    "get_rule",
    "project_rules_for",
    "register_rule",
    "rules_for",
]

#: code -> rule class
_REGISTRY: dict[str, type["Rule"]] = {}


class Rule(ast.NodeVisitor):
    """One invariant check over a single file's AST.

    Subclasses set ``code``, ``name``, and ``message``; override
    visitor methods and call :meth:`report`.  ``scope`` / ``exclude``
    are path-prefix tuples against repo-relative posix paths.
    """

    code: str = ""
    name: str = ""
    #: One-line statement of the invariant (docs + ``--list-rules``).
    message: str = ""
    scope: tuple[str, ...] = ("src/repro",)
    exclude: tuple[str, ...] = ()
    #: Project rules run once over the whole-program index (phase two)
    #: instead of once per file; see :class:`ProjectRule`.
    is_project: bool = False

    def __init__(self) -> None:
        self.ctx: FileContext | None = None
        self.findings: list[Finding] = []

    @classmethod
    def applies_to(cls, path: str) -> bool:
        if not any(path.startswith(prefix) for prefix in cls.scope):
            return False
        return not any(path.startswith(prefix) for prefix in cls.exclude)

    def run(self, ctx: FileContext) -> list[Finding]:
        self.ctx = ctx
        self.findings = []
        self.visit(ctx.tree)
        return self.findings

    def report(self, node: ast.AST, message: str | None = None, **extra) -> None:
        assert self.ctx is not None
        line = getattr(node, "lineno", 1)
        self.findings.append(
            Finding(
                code=self.code,
                path=self.ctx.path,
                line=line,
                col=getattr(node, "col_offset", 0) + 1,
                message=message or self.message,
                source=self.ctx.source_line(line),
                extra=extra,
            )
        )


class ProjectRule(Rule):
    """One cross-file invariant over the whole-program index.

    Subclasses override :meth:`run_project` and report through
    :meth:`report_in`, anchoring each finding to a node in whichever
    file owns the contract (for wire rules: the handler site), so the
    baseline key and inline suppressions live where the fix belongs.
    """

    is_project = True

    def run(self, ctx: FileContext) -> list[Finding]:  # pragma: no cover
        raise TypeError(f"{self.code} is a project rule; use run_project()")

    def run_project(self, index) -> list[Finding]:
        raise NotImplementedError

    def report_in(
        self, ctx: FileContext, node: ast.AST, message: str | None = None, **extra
    ) -> None:
        line = getattr(node, "lineno", 1)
        self.findings.append(
            Finding(
                code=self.code,
                path=ctx.path,
                line=line,
                col=getattr(node, "col_offset", 0) + 1,
                message=message or self.message,
                source=ctx.source_line(line),
                extra=extra,
            )
        )


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator: add a rule to the global registry."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def _ensure_loaded() -> None:
    # Import for the registration side effect; cheap after the first call.
    from repro.lint import rules  # noqa: F401


def all_rules() -> dict[str, type[Rule]]:
    _ensure_loaded()
    return dict(sorted(_REGISTRY.items()))


def get_rule(code: str) -> type[Rule]:
    _ensure_loaded()
    return _REGISTRY[code]


def code_selected(code: str, codes: set[str] | None) -> bool:
    """Prefix-aware ``--select`` matching: ``WIRE`` hits ``WIRE501``."""
    if codes is None:
        return True
    return any(code == sel or code.startswith(sel) for sel in codes)


def rules_for(path: str, codes: set[str] | None = None) -> list[Rule]:
    """Fresh per-file rule instances applicable to ``path``."""
    return [
        cls()
        for code, cls in all_rules().items()
        if not cls.is_project and code_selected(code, codes) and cls.applies_to(path)
    ]


def project_rules_for(codes: set[str] | None = None) -> list[ProjectRule]:
    """Fresh whole-program rule instances (phase two)."""
    return [
        cls()
        for code, cls in all_rules().items()
        if cls.is_project and code_selected(code, codes)
    ]
