"""The committed baseline of grandfathered findings.

A baseline entry matches a finding by ``(code, path, source line)`` —
never by line number — so unrelated edits that shift code around do not
resurrect grandfathered findings.  Matching is multiset-style: two
identical violations in one file need two entries.

The file is JSON, sorted and indented, so diffs stay reviewable and
every grandfathered finding can carry a human justification (``note``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.lint.findings import Finding

__all__ = ["Baseline", "BaselineEntry"]

FORMAT_VERSION = 1


@dataclass
class BaselineEntry:
    code: str
    path: str
    source: str
    #: Line number when the baseline was written — informational only.
    line: int = 0
    #: One-line justification for grandfathering this finding.
    note: str = ""

    def key(self) -> tuple[str, str, str]:
        return (self.code, self.path, self.source)


@dataclass
class Baseline:
    entries: list[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, path) -> "Baseline":
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        if payload.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline version {payload.get('version')!r} "
                f"in {path} (expected {FORMAT_VERSION})"
            )
        entries = [
            BaselineEntry(
                code=e["code"],
                path=e["path"],
                source=e["source"],
                line=e.get("line", 0),
                note=e.get("note", ""),
            )
            for e in payload.get("entries", [])
        ]
        return cls(entries=entries)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        entries = [
            BaselineEntry(
                code=f.code, path=f.path, source=f.source, line=f.line
            )
            for f in findings
            if not f.suppressed
        ]
        entries.sort(key=lambda e: (e.path, e.line, e.code))
        return cls(entries=entries)

    def write(self, path) -> None:
        payload = {
            "version": FORMAT_VERSION,
            "entries": [
                {
                    "code": e.code,
                    "path": e.path,
                    "line": e.line,
                    "source": e.source,
                    **({"note": e.note} if e.note else {}),
                }
                for e in self.entries
            ],
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")

    def apply(self, findings: list[Finding]) -> list[BaselineEntry]:
        """Mark matched findings ``baselined``; return stale entries.

        Stale entries (no finding matched them) mean the underlying
        violation was fixed — the baseline should be regenerated so it
        cannot mask a future regression at the same spot.
        """
        budget: dict[tuple[str, str, str], int] = {}
        for entry in self.entries:
            budget[entry.key()] = budget.get(entry.key(), 0) + 1
        for finding in findings:
            if finding.suppressed:
                continue
            remaining = budget.get(finding.key(), 0)
            if remaining > 0:
                budget[finding.key()] = remaining - 1
                finding.baselined = True
        # Leftover budget per key == stale entry count for that key.
        stale: list[BaselineEntry] = []
        remaining = {k: v for k, v in budget.items() if v > 0}
        for entry in reversed(self.entries):
            count = remaining.get(entry.key(), 0)
            if count > 0:
                stale.append(entry)
                remaining[entry.key()] = count - 1
        stale.reverse()
        return stale
