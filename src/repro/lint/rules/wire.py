"""Wire-contract rules (``WIRE5xx``): cross-file RPC protocol drift.

Every layer of the system talks over string-typed messages with untyped
dict bodies; nothing but convention keeps a caller's body keys aligned
with the fields its ``_handle_*`` counterpart reads.  These rules run
over the :class:`~repro.lint.index.ProjectIndex` and flag the four
drift classes that convention cannot catch:

- WIRE501 — a message type sent with no registered handler, or
  registered with no sender (dead endpoint).
- WIRE502 — a handler requires a field (``body["f"]``) that some
  caller with a fully-known body provably never sends.
- WIRE503 — a dead wire field: shipped by every caller, read by no
  handler.
- WIRE504 — the same message type handled by different device classes
  with incompatible required-field sets.

Cross-file findings anchor at the *handler* site (the contract's
owner), so suppressions and baseline keys live next to the code that
must change.  Open body schemas (``{**body, ...}`` of unknown dicts)
disable absence proofs: WIRE502 never fires against them.
"""

from __future__ import annotations

from repro.lint.index import SPAN_FIELD, ProjectIndex
from repro.lint.registry import ProjectRule, register_rule

__all__ = [
    "DeadWireFieldRule",
    "DivergentHandlersRule",
    "MissingRequiredFieldRule",
    "UnpairedMessageRule",
]


@register_rule
class UnpairedMessageRule(ProjectRule):
    code = "WIRE501"
    name = "unpaired-message"
    message = (
        "every RPC message type must have both a sender and a registered "
        "handler"
    )

    def run_project(self, index: ProjectIndex):
        self.findings = []
        for msg in index.message_types():
            calls = index.calls_for(msg)
            handlers = index.handlers_for(msg)
            if calls and not handlers:
                for call in calls:
                    self.report_in(
                        index.contexts[call.path],
                        call.node,
                        f"message {msg!r} is sent here but no handler "
                        f"registers it",
                        msg_type=msg,
                    )
            elif handlers and not calls and not index.dynamic_calls:
                # Only provable when every send in the tree resolved;
                # a single dynamic msg_type could be this message.
                for reg, _ in handlers:
                    self.report_in(
                        index.contexts[reg.path],
                        reg.node,
                        f"message {msg!r} is registered here but never "
                        f"sent",
                        msg_type=msg,
                    )
        return self.findings


@register_rule
class MissingRequiredFieldRule(ProjectRule):
    code = "WIRE502"
    name = "missing-required-field"
    message = (
        "a handler must not require a body field some caller never sends"
    )

    def run_project(self, index: ProjectIndex):
        self.findings = []
        for msg in index.message_types():
            handlers = index.handlers_for(msg)
            closed_calls = [
                c for c in index.calls_for(msg) if not c.schema.is_open
            ]
            for _, summary in handlers:
                for field_name, node in sorted(summary.required.items()):
                    missing = [
                        c
                        for c in closed_calls
                        if field_name not in c.schema.fields
                    ]
                    if not missing:
                        continue
                    where = ", ".join(
                        f"{c.path}:{c.line}" for c in missing[:3]
                    )
                    self.report_in(
                        index.contexts[summary.path],
                        node,
                        f"handler requires body field {field_name!r} of "
                        f"{msg!r} but the caller at {where} never sends "
                        f"it",
                        msg_type=msg,
                        field=field_name,
                    )
        return self.findings


@register_rule
class DeadWireFieldRule(ProjectRule):
    code = "WIRE503"
    name = "dead-wire-field"
    message = "every field shipped on the wire must be read by some handler"

    def run_project(self, index: ProjectIndex):
        self.findings = []
        for msg in index.message_types():
            calls = index.calls_for(msg)
            handlers = index.handlers_for(msg)
            if not calls or not handlers:
                continue  # WIRE501's department
            if any(s.reads_all for _, s in handlers):
                continue  # opaque consumption: nothing is provably dead
            read = set()
            for _, summary in handlers:
                read |= summary.read_fields
            read.add(SPAN_FIELD)  # telemetry context rides every body
            # A field is dead only if *every* caller ships it; a field
            # sent by just some callers may be a legitimate optional.
            shipped = set(calls[0].schema.fields)
            for call in calls[1:]:
                shipped &= call.schema.fields
            first_reg, first_summary = handlers[0]
            anchor = first_summary.def_node or first_reg.node
            for field_name in sorted(shipped - read):
                self.report_in(
                    index.contexts[first_summary.path],
                    anchor,
                    f"field {field_name!r} of {msg!r} is sent by every "
                    f"caller but no handler reads it",
                    msg_type=msg,
                    field=field_name,
                )
        return self.findings


@register_rule
class DivergentHandlersRule(ProjectRule):
    code = "WIRE504"
    name = "divergent-handlers"
    message = (
        "handlers of one message type must agree on required body fields"
    )

    def run_project(self, index: ProjectIndex):
        self.findings = []
        for msg in index.message_types():
            seen: dict = {}  # class name -> (required set, summary)
            for reg, summary in index.handlers_for(msg):
                if summary.reads_all:
                    continue  # requirements unknowable
                cls = reg.class_name or "<module>"
                if cls in seen:
                    continue
                required = frozenset(summary.required)
                for other_cls, (other_required, _) in seen.items():
                    if other_required != required:
                        self.report_in(
                            index.contexts[summary.path],
                            summary.def_node or reg.node,
                            f"handler {cls}.{reg.handler_name} of {msg!r} "
                            f"requires {sorted(required)} but "
                            f"{other_cls} requires "
                            f"{sorted(other_required)}",
                            msg_type=msg,
                        )
                        break
                seen[cls] = (required, summary)
        return self.findings
