"""SIM structural rules: generator hazards and ordering hazards.

SIM103 encodes the PEP 479 lesson from PR 4's ``_do_revive`` bug: a
bare ``next()`` that raises ``StopIteration`` inside a generator body
becomes a ``RuntimeError`` at an arbitrary resume point — in this
codebase, inside the event kernel.  SIM104 protects the deterministic
goldens from Python's unordered set iteration leaking into placement
and decision ranking.
"""

from __future__ import annotations

import ast

from repro.lint.registry import Rule, register_rule
from repro.lint.rules.sim_determinism import SIM_SCOPE

__all__ = ["BareNextRule", "SetIterationRule"]


def _own_nodes(func: ast.AST):
    """Walk a function's body without descending into nested defs."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            stack.extend(ast.iter_child_nodes(node))


def _is_generator(func: ast.AST) -> bool:
    return any(
        isinstance(node, (ast.Yield, ast.YieldFrom))
        for node in _own_nodes(func)
    )


@register_rule
class BareNextRule(Rule):
    """SIM103: ``next(it)`` without a default inside a generator body.

    Under PEP 479 the escaping ``StopIteration`` is converted to a
    ``RuntimeError`` inside the simulator's process machinery — pass a
    default (``next(it, None)``) or catch ``StopIteration`` locally.
    """

    code = "SIM103"
    name = "no-bare-next-in-generator"
    message = (
        "bare next() inside a generator body (PEP 479: escaping "
        "StopIteration becomes RuntimeError; pass a default)"
    )
    scope = SIM_SCOPE

    def _check_function(self, func) -> None:
        if not _is_generator(func):
            return
        for node in _own_nodes(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "next"
                and len(node.args) == 1
                and not node.keywords
                and not self._locally_caught(node)
            ):
                self.report(node)

    def _locally_caught(self, node: ast.Call) -> bool:
        """True when an enclosing ``try`` catches StopIteration."""
        assert self.ctx is not None
        for anc in self.ctx.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False
            if isinstance(anc, ast.Try):
                for handler in anc.handlers:
                    names: list[ast.AST] = []
                    if handler.type is None:
                        return True
                    if isinstance(handler.type, ast.Tuple):
                        names = list(handler.type.elts)
                    else:
                        names = [handler.type]
                    for name in names:
                        if (
                            isinstance(name, ast.Name)
                            and name.id in ("StopIteration", "Exception")
                        ):
                            return True
        return False

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    return False


@register_rule
class SetIterationRule(Rule):
    """SIM104: no direct iteration over sets in ranking/placement code.

    Set iteration order depends on insertion history and hash seeds of
    the *contents*; feeding it into candidate ranking silently breaks
    the pinned goldens.  Wrap the set in ``sorted(...)`` first.
    """

    code = "SIM104"
    name = "no-unordered-set-iteration"
    message = (
        "iteration over an unordered set in ordering-sensitive code "
        "(wrap in sorted(...))"
    )
    # Modules whose iteration order feeds candidate ranking directly.
    scope = (
        "src/repro/monitoring",
        "src/repro/vstore/placement.py",
        "src/repro/vstore/policies.py",
        "src/repro/vstore/striping.py",
        "src/repro/overlay/state.py",
    )

    def run(self, ctx):
        self._set_names: dict[ast.AST, set[str]] = {}
        return super().run(ctx)

    def _function_set_names(self, node: ast.AST) -> set[str]:
        """Names assigned from set expressions in the enclosing function."""
        assert self.ctx is not None
        func = self.ctx.enclosing_function(node) or self.ctx.tree
        cached = self._set_names.get(func)
        if cached is None:
            cached = set()
            for stmt in _own_nodes(func):
                if isinstance(stmt, ast.Assign) and _is_set_expr(stmt.value):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            cached.add(target.id)
                if (
                    isinstance(stmt, ast.AnnAssign)
                    and stmt.value is not None
                    and _is_set_expr(stmt.value)
                    and isinstance(stmt.target, ast.Name)
                ):
                    cached.add(stmt.target.id)
            self._set_names[func] = cached
        return cached

    def _is_set_like(self, node: ast.AST, where: ast.AST) -> bool:
        if _is_set_expr(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in self._function_set_names(where)
        return False

    def _check_iter(self, iter_node: ast.AST, where: ast.AST) -> None:
        # sorted(set(...)) / sorted(s) is the sanctioned spelling.
        node = iter_node
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("enumerate", "list", "tuple", "reversed")
            and node.args
        ):
            node = node.args[0]
        if self._is_set_like(node, where):
            self.report(iter_node)

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter, node)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter, node)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_GeneratorExp = _visit_comp
    visit_DictComp = _visit_comp
