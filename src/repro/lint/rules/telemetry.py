"""TEL rules: telemetry emits must be guarded in instrumented modules.

The telemetry plane is off by default, and ``ClusterConfig(telemetry=
False)`` runs must stay byte-identical to a build without the
subsystem.  Every instrumented layer therefore emits behind a single
``is not None`` check — either on the telemetry handle itself or on a
span derived from it (the ``_span`` helper returns ``(None, None)``
when telemetry is off).  TEL201 mechanically enforces that discipline.
"""

from __future__ import annotations

import ast

from repro.lint.registry import Rule, register_rule

__all__ = ["UnguardedEmitRule"]

#: Methods on a Telemetry handle that emit (or mutate) span state.
EMIT_METHODS = ("begin", "end", "fail", "event", "annotate")


def _none_compares(test: ast.AST):
    """Yield ``(operand_dump, is_not)`` for every ``X is [not] None``."""
    for node in ast.walk(test):
        if (
            isinstance(node, ast.Compare)
            and len(node.ops) == 1
            and isinstance(node.ops[0], (ast.Is, ast.IsNot))
            and isinstance(node.comparators[0], ast.Constant)
            and node.comparators[0].value is None
        ):
            yield ast.dump(node.left), isinstance(node.ops[0], ast.IsNot)


def _exits(stmt: ast.stmt) -> bool:
    return isinstance(stmt, (ast.Return, ast.Raise, ast.Continue, ast.Break))


@register_rule
class UnguardedEmitRule(Rule):
    """TEL201: every telemetry emit sits under an ``is not None`` guard.

    A call ``tel.begin/end/fail/event(...)`` — where ``tel`` was bound
    from ``*.telemetry`` or a ``_span``-style helper, or is the
    ``*.telemetry`` attribute itself — is guarded when:

    - an enclosing ``if``/ternary tests ``X is not None`` (call in the
      then-branch) or ``X is None`` (call in the else-branch), where X
      is the receiver or any name passed to the call (the
      ``if span is not None: tel.end(span)`` idiom), or
    - the enclosing function earlier runs ``if X is None: return/raise``
      for the receiver (the early-return idiom in ``_span`` helpers).
    """

    code = "TEL201"
    name = "guarded-telemetry-emit"
    message = (
        "telemetry emit not guarded by an 'is not None' check "
        "(telemetry-off runs must skip emission entirely)"
    )
    scope = ("src/repro",)
    # Only the passive plane — the modules that *implement* the emit
    # machinery — is exempt.  The active layer (slo/health/recorder/
    # timeseries) consumes the plane like any instrumented layer and
    # must guard its emits the same way.
    exclude = (
        "src/repro/telemetry/__init__.py",
        "src/repro/telemetry/spans.py",
        "src/repro/telemetry/metrics.py",
        "src/repro/telemetry/export.py",
        "src/repro/lint",
    )

    def visit_Call(self, node: ast.Call) -> None:
        receiver = self._telemetry_receiver(node)
        if receiver is not None and not self._is_guarded(node, receiver):
            self.report(node)
        self.generic_visit(node)

    # -- what counts as an emit ---------------------------------------

    def _telemetry_receiver(self, node: ast.Call) -> str | None:
        """The receiver's ast dump if this is a telemetry emit call."""
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in EMIT_METHODS:
            return None
        value = func.value
        # Direct form: <anything>.telemetry.begin(...)
        if isinstance(value, ast.Attribute) and value.attr == "telemetry":
            return ast.dump(value)
        # Handle form: tel.begin(...) where tel came from *.telemetry
        # or from a (tel, span) = self._span(...) helper.
        if isinstance(value, ast.Name) and value.id in self._handles(node):
            return ast.dump(value)
        return None

    def _handles(self, node: ast.AST) -> set[str]:
        """Telemetry handle names bound in the enclosing function."""
        assert self.ctx is not None
        func = self.ctx.enclosing_function(node) or self.ctx.tree
        cached = getattr(func, "_simlint_tel_handles", None)
        if cached is not None:
            return cached
        handles: set[str] = set()
        for stmt in ast.walk(func):
            if not isinstance(stmt, ast.Assign):
                continue
            value = stmt.value
            # tel = self.sim.telemetry
            if isinstance(value, ast.Attribute) and value.attr == "telemetry":
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        handles.add(target.id)
            # tel, span = self._span(...)
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr.endswith("_span")
            ):
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Tuple)
                        and target.elts
                        and isinstance(target.elts[0], ast.Name)
                    ):
                        handles.add(target.elts[0].id)
        func._simlint_tel_handles = handles  # type: ignore[attr-defined]
        return handles

    # -- what counts as a guard ---------------------------------------

    def _guard_operands(self, node: ast.Call, receiver: str) -> set[str]:
        """ast dumps whose non-None-ness guards this emit."""
        operands = {receiver}
        for arg in node.args:
            if isinstance(arg, ast.Name):
                operands.add(ast.dump(arg))
        for kw in node.keywords:
            if isinstance(kw.value, ast.Name):
                operands.add(ast.dump(kw.value))
        return operands

    def _is_guarded(self, node: ast.Call, receiver: str) -> bool:
        assert self.ctx is not None
        operands = self._guard_operands(node, receiver)

        # Enclosing if / ternary with the right branch polarity.
        child: ast.AST = node
        for anc in self.ctx.ancestors(node):
            if isinstance(anc, (ast.If, ast.IfExp)):
                in_else = (
                    child in anc.orelse
                    if isinstance(anc, ast.If)
                    else child is anc.orelse
                )
                for operand, is_not in _none_compares(anc.test):
                    if operand in operands and (is_not != in_else):
                        return True
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
            child = anc

        # Early-return guard anywhere earlier in the function:
        #   if tel is None: return ...
        func = self.ctx.enclosing_function(node)
        if func is not None:
            for stmt in ast.walk(func):
                if (
                    isinstance(stmt, ast.If)
                    and stmt.body
                    and _exits(stmt.body[-1])
                    and stmt.lineno <= node.lineno
                ):
                    for operand, is_not in _none_compares(stmt.test):
                        if operand in operands and not is_not:
                            return True
        return False
