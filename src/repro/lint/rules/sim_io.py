"""SIM108: durability is simulated state, never real file I/O.

The storage layer's whole point is that its WAL is a *model* of a disk
journal — plain Python state whose crash/replay semantics the event
kernel controls.  A real ``open()`` in the storage, sim, KV, or vstore
packages would tie simulated durability to the host filesystem: runs
would stop being hermetic, parallel workers would race on paths, and
crash semantics would depend on the OS page cache instead of the
simulated cost model.  This rule keeps the ban mechanical.

Out of scope on purpose: the CLI and the telemetry flight recorder
write artifacts for humans, and the lint engine reads the source tree
it checks.
"""

from __future__ import annotations

import ast

from repro.lint.registry import register_rule
from repro.lint.rules.sim_determinism import _CallChainRule

__all__ = ["RealFileIoRule"]

#: Packages whose persistence must stay simulated.
IO_SCOPE = (
    "src/repro/storage",
    "src/repro/sim",
    "src/repro/kvstore",
    "src/repro/vstore",
)


@register_rule
class RealFileIoRule(_CallChainRule):
    """SIM108: no real filesystem I/O where durability is simulated."""

    code = "SIM108"
    name = "no-real-file-io"
    message = (
        "real filesystem I/O inside simulated-durability code "
        "(model persistence through repro.storage backends)"
    )
    scope = IO_SCOPE
    banned_suffixes = (
        "io.open",
        "os.open",
        "os.fdopen",
        "os.remove",
        "os.unlink",
        "os.rename",
        "os.replace",
        "os.mkdir",
        "os.makedirs",
        "os.rmdir",
        "os.fsync",
        "os.fdatasync",
        "os.write",
        "os.truncate",
        "shutil.copy",
        "shutil.copy2",
        "shutil.copyfile",
        "shutil.copytree",
        "shutil.move",
        "shutil.rmtree",
        "tempfile.mkstemp",
        "tempfile.mkdtemp",
        "tempfile.NamedTemporaryFile",
        "tempfile.TemporaryFile",
        "tempfile.TemporaryDirectory",
        # pathlib.Path I/O methods: names distinctive enough to flag on
        # any receiver (str.replace-style lookalikes are deliberately
        # NOT listed).
        "write_text",
        "read_text",
        "write_bytes",
        "read_bytes",
    )
    banned_from_imports = {
        "io": {"open"},
        "os": {
            "remove",
            "unlink",
            "rename",
            "replace",
            "mkdir",
            "makedirs",
            "rmdir",
            "fsync",
            "fdatasync",
        },
        "shutil": {"copy", "copy2", "copyfile", "copytree", "move", "rmtree"},
        "tempfile": {
            "mkstemp",
            "mkdtemp",
            "NamedTemporaryFile",
            "TemporaryFile",
            "TemporaryDirectory",
        },
    }

    def visit_Call(self, node: ast.Call) -> None:
        # The builtin open() is a bare Name, which the shared chain
        # matcher never flags — handle it here.
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            self.report(node, f"{self.message}: open()")
        super().visit_Call(node)
