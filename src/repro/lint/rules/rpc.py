"""RPC rules: handler exceptions stay inside the repro error hierarchy.

Exceptions raised by a registered RPC handler travel the wire as a
:class:`repro.net.RemoteError` detail string and are re-raised at the
caller, where retry/breaker policy dispatches on type (``RemoteError``
is never retried; ``RpcTimeoutError``/``HostDownError`` are).  A bare
builtin (``ValueError``, ``RuntimeError``) raised in a handler loses
that classification — PR 4's ``DeadlineExceededError ⊂ RpcTimeoutError``
discipline is the model: subclass the family you mean.
"""

from __future__ import annotations

import ast

from repro.lint.registry import Rule, register_rule

__all__ = ["HandlerExceptionRule"]

#: Builtins that must not escape a handler un-wrapped.
BUILTIN_EXCEPTIONS = {
    "Exception",
    "BaseException",
    "RuntimeError",
    "ValueError",
    "TypeError",
    "KeyError",
    "IndexError",
    "AttributeError",
    "LookupError",
    "OSError",
    "IOError",
    "ArithmeticError",
    "ZeroDivisionError",
    "StopIteration",
    "NotImplementedError",
    "AssertionError",
}


@register_rule
class HandlerExceptionRule(Rule):
    """RPC301: registered handlers raise repro-hierarchy errors only.

    A method counts as a handler when the class registers it via
    ``endpoint.register(MSG_X, self._handle_y)`` or when it follows the
    ``_handle_*`` naming convention used across the stack.
    """

    code = "RPC301"
    name = "handler-error-hierarchy"
    message = (
        "RPC handler raises a builtin exception (subclass the repro "
        "error hierarchy — RemoteError / RpcTimeoutError family — so "
        "retry and breaker policy can classify it)"
    )
    scope = ("src/repro",)
    exclude = ("src/repro/lint",)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        registered = self._registered_handlers(node)
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name in registered or stmt.name.startswith("_handle_"):
                self._check_handler(stmt)
        self.generic_visit(node)

    def _registered_handlers(self, cls: ast.ClassDef) -> set[str]:
        """Method names passed as ``self.<m>`` to a ``.register()`` call."""
        names: set[str] = set()
        for node in ast.walk(cls):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "register"
                and len(node.args) == 2
            ):
                continue
            handler = node.args[1]
            if (
                isinstance(handler, ast.Attribute)
                and isinstance(handler.value, ast.Name)
                and handler.value.id == "self"
            ):
                names.add(handler.attr)
        return names

    def _check_handler(self, func) -> None:
        for node in ast.walk(func):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in BUILTIN_EXCEPTIONS:
                self.report(node, f"{self.message}: raise {name}")
