"""Dataflow rules: config-flag reachability and RNG provenance.

CFG402 closes the loop CFG401 opened.  CFG401 checks that every
feature flag *defaults* off; CFG402 checks that the flag actually
*gates* its feature: every construction of striping / resilience /
storage / SLO machinery in the cluster builder must sit on a path
guarded by the matching ``ClusterConfig`` flag — directly
(``if self.config.striping:``), through a tainted local
(``res = ... if self.config.resilience else None`` ... ``if res is not
None:``), or interprocedurally (an unguarded helper whose every call
site is guarded).  Otherwise a feature-off run silently pays for (and
perturbs goldens with) a feature the config says is disabled.

FLOW601 extends SIM107 from "no unseeded ``random.Random()``" to
provenance: a *literal* seed is just as untraceable as no seed —
every RNG in sim-reachable code must be forked off a parent
:class:`~repro.sim.random.RandomSource` stream (``rng.fork("name")``)
so the whole simulation derives from the single configured root seed.
"""

from __future__ import annotations

import ast

from repro.lint.context import FileContext, dotted_name
from repro.lint.registry import ProjectRule, Rule, register_rule
from repro.lint.rules.sim_determinism import SIM_SCOPE

__all__ = ["RngProvenanceRule", "UnguardedFeatureRule"]

#: feature key -> ClusterConfig attribute names that gate it.  A guard
#: mentioning *any* of the listed flags satisfies the feature (windowed
#: time-series serve both the windowed-metrics and SLO planes).
_FEATURE_FLAGS = {
    "striping": ("striping",),
    "resilience": ("resilience",),
    "storage": ("storage",),
    "slo": ("slo",),
    "windowed": ("windowed_metrics", "slo"),
}

#: feature key -> source path prefixes of the modules implementing it;
#: their top-level classes/functions become gated symbols.
_FEATURE_PATHS = {
    "striping": ("src/repro/vstore/striping",),
    "resilience": ("src/repro/resilience",),
    "storage": ("src/repro/storage",),
    "slo": (
        "src/repro/telemetry/slo",
        "src/repro/telemetry/health",
        "src/repro/telemetry/recorder",
    ),
    "windowed": ("src/repro/telemetry/timeseries",),
}

#: Symbols the builder imports today, so single-file projects (rule
#: fixtures) classify them without the feature modules in the index.
_FEATURE_SYMBOL_SEED = {
    "StripeCodec": "striping",
    "StripingPolicy": "striping",
    "plan_chunk_placement": "striping",
    "BreakerRegistry": "resilience",
    "CircuitBreaker": "resilience",
    "Repairer": "resilience",
    "ResilientCaller": "resilience",
    "RetryPolicy": "resilience",
    "SimDiskStore": "storage",
    "StorageFlusher": "storage",
    "make_store": "storage",
    "HealthBoard": "slo",
    "RecorderHub": "slo",
    "SloEngine": "slo",
    "SloEvaluator": "slo",
    "default_slo_specs": "slo",
    "WindowPolicy": "windowed",
}


@register_rule
class UnguardedFeatureRule(ProjectRule):
    code = "CFG402"
    name = "unguarded-feature"
    message = (
        "feature construction in the builder must be guarded by its "
        "ClusterConfig flag"
    )
    #: The one place features are wired into a cluster.
    target_path = "src/repro/cluster/builder.py"

    def run_project(self, index):
        self.findings = []
        ctx = index.contexts.get(self.target_path)
        if ctx is None:
            return self.findings
        symbols = self._feature_symbols(index)
        funcs: dict = {}
        call_sites: dict = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                funcs.setdefault(node.name, node)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = self._local_callee(node)
                if name in funcs:
                    call_sites.setdefault(name, []).append(node)
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            ):
                continue
            feature = symbols.get(node.func.id)
            if feature is None:
                continue
            if not self._reachable_guarded(
                ctx, node, feature, funcs, call_sites, set()
            ):
                flags = " or ".join(
                    f"config.{f}" for f in _FEATURE_FLAGS[feature]
                )
                self.report_in(
                    ctx,
                    node,
                    f"{node.func.id} ({feature} feature) is reachable "
                    f"without a {flags} guard",
                    feature=feature,
                )
        return self.findings

    @staticmethod
    def _feature_symbols(index) -> dict:
        symbols = dict(_FEATURE_SYMBOL_SEED)
        for path, ctx in index.contexts.items():
            for feature, prefixes in _FEATURE_PATHS.items():
                if not path.startswith(prefixes):
                    continue
                for stmt in ctx.tree.body:
                    if isinstance(
                        stmt,
                        (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                    ) and not stmt.name.startswith("_"):
                        symbols.setdefault(stmt.name, feature)
        return symbols

    @staticmethod
    def _local_callee(call: ast.Call):
        """``self.f(...)`` / ``f(...)`` -> ``f`` (same-file callees)."""
        func = call.func
        if isinstance(func, ast.Name):
            return func.id
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            return func.attr
        return None

    def _reachable_guarded(
        self, ctx, node, feature, funcs, call_sites, visited
    ) -> bool:
        """True when every path reaching ``node`` passes a flag guard."""
        func = ctx.enclosing_function(node)
        tainted = self._tainted(ctx, func, feature) if func else set()
        if self._guarded(ctx, node, func, feature, tainted):
            return True
        if func is None or func.name in visited:
            return False  # module level, or a cycle with no guard on it
        sites = call_sites.get(func.name)
        if not sites:
            return False  # nothing provably gates entry to this code
        return all(
            self._reachable_guarded(
                ctx, site, feature, funcs, call_sites, visited | {func.name}
            )
            for site in sites
        )

    def _guarded(self, ctx, node, func, feature, tainted) -> bool:
        """Any enclosing if/ternary (within ``func``) tests the flag?"""
        child = node
        for anc in ctx.ancestors(node):
            if anc is func:
                return False
            if isinstance(anc, ast.If) and self._in_block(child, anc.body):
                if self._mentions_flag(anc.test, feature, tainted):
                    return True
            elif isinstance(anc, ast.IfExp) and child is anc.body:
                if self._mentions_flag(anc.test, feature, tainted):
                    return True
            child = anc
        return False

    @staticmethod
    def _in_block(child, block) -> bool:
        return any(child is stmt for stmt in block)

    @staticmethod
    def _mentions_flag(expr, feature, tainted) -> bool:
        flags = _FEATURE_FLAGS[feature]
        for node in ast.walk(expr):
            if isinstance(node, ast.Attribute) and node.attr in flags:
                base = dotted_name(node.value)
                if base and "config" in base.split("."):
                    return True
            elif isinstance(node, ast.Name) and node.id in tainted:
                return True
        return False

    def _tainted(self, ctx, func, feature) -> set:
        """Locals carrying the flag's truth: assigned from an expression
        mentioning the flag, from another tainted name, or under a
        flag guard.  Fixpoint (tainted only grows)."""
        tainted: set = set()
        changed = True
        while changed:
            changed = False
            for node in ast.walk(func):
                if not isinstance(node, ast.Assign):
                    continue
                names = {
                    t.id for t in node.targets if isinstance(t, ast.Name)
                }
                if not names or names <= tainted:
                    continue
                if self._mentions_flag(
                    node.value, feature, tainted
                ) or self._guarded(ctx, node, func, feature, tainted):
                    tainted |= names
                    changed = True
        return tainted


@register_rule
class RngProvenanceRule(Rule):
    code = "FLOW601"
    name = "rng-provenance"
    message = (
        "sim RNGs must be forked from a parent RandomSource stream, not "
        "seeded with a literal"
    )
    scope = SIM_SCOPE
    #: The RandomSource implementation itself wraps random.Random.
    exclude = ("src/repro/sim/random.py",)

    def run(self, ctx: FileContext):
        self._random_aliases = {
            alias.asname or alias.name
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ImportFrom) and node.module == "random"
            for alias in node.names
            if alias.name == "Random"
        }
        return super().run(ctx)

    @staticmethod
    def _seed_arg(node: ast.Call):
        """The seed expression: first positional, or ``seed=`` keyword."""
        if node.args:
            return node.args[0]
        for kw in node.keywords:
            if kw.arg == "seed":
                return kw.value
        return None

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        is_random = dotted_name(func) == "random.Random" or (
            isinstance(func, ast.Name) and func.id in self._random_aliases
        )
        seed = self._seed_arg(node)
        if is_random and isinstance(seed, ast.Constant):
            # (the *unseeded* form is SIM107's finding, not ours)
            self.report(
                node,
                "random.Random with a literal seed does not trace to the "
                "configured root seed; fork a RandomSource stream instead",
            )
        elif (
            isinstance(func, ast.Name)
            and func.id == "RandomSource"
            and (seed is None or isinstance(seed, ast.Constant))
        ):
            self.report(
                node,
                "RandomSource with a literal/default seed starts a stream "
                "outside the configured seed tree; use parent.fork(name)",
            )
        self.generic_visit(node)
