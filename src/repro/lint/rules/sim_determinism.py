"""SIM determinism rules: no ambient time or entropy in simulated code.

The reproduction's goldens (PR 1 pinned to 1e-9, PR 2's cross-worker
bit-equality, PR 4's repeatability assertions) only hold if nothing in
the simulated substrate reads the wall clock or an unseeded random
stream.  These rules scope to the simulation-facing packages; the CLI
and the parallel harness measure real wall time on purpose and are out
of scope.
"""

from __future__ import annotations

import ast

from repro.lint.context import dotted_name
from repro.lint.registry import Rule, register_rule

__all__ = [
    "WallClockRule",
    "GlobalRandomRule",
    "WallSleepRule",
    "AmbientEntropyRule",
    "UnseededRandomRule",
]

#: Packages whose code runs inside (or feeds) the simulated world.
SIM_SCOPE = (
    "src/repro/sim",
    "src/repro/overlay",
    "src/repro/kvstore",
    "src/repro/net",
    "src/repro/vstore",
    "src/repro/cluster",
    "src/repro/resilience",
    "src/repro/load",
    "src/repro/workloads",
)

#: The scale-bench job functions measure wall time *on purpose* (the
#: scale wall is a wall-clock phenomenon); simulated state never reads
#: those values.  Everything else in the load package stays in scope.
_WALL_BENCH_EXCLUDE = ("src/repro/load/bench.py",)


def _import_map(tree: ast.AST, wanted: dict[str, set[str]]) -> dict[str, str]:
    """Map local names to ``module.attr`` for from-imports of interest.

    ``wanted`` maps module name -> attribute names to track, e.g.
    ``{"time": {"time", "perf_counter"}}`` catches
    ``from time import perf_counter as pc`` and records ``pc ->
    time.perf_counter``.
    """
    bound: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module in wanted:
            for alias in node.names:
                if alias.name in wanted[node.module]:
                    bound[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
    return bound


class _CallChainRule(Rule):
    """Shared machinery: flag calls whose dotted chain matches a set."""

    #: Fully dotted suffixes to flag, e.g. ``time.perf_counter``.
    banned_suffixes: tuple[str, ...] = ()
    #: ``module -> {attrs}`` also banned when imported bare.
    banned_from_imports: dict[str, set[str]] = {}

    def run(self, ctx):
        self._bound = _import_map(ctx.tree, self.banned_from_imports)
        return super().run(ctx)

    def _match(self, call: ast.Call) -> str | None:
        func = call.func
        if isinstance(func, ast.Name) and func.id in self._bound:
            return self._bound[func.id]
        dotted = dotted_name(func)
        if dotted is None or dotted.startswith(("self.", "cls.")):
            return None
        for suffix in self.banned_suffixes:
            if dotted == suffix or dotted.endswith("." + suffix):
                return suffix
        return None

    def visit_Call(self, node: ast.Call) -> None:
        match = self._match(node)
        if match is not None:
            self.report(node, f"{self.message}: {match}()")
        self.generic_visit(node)


@register_rule
class WallClockRule(_CallChainRule):
    """SIM101: simulated code must use ``sim.now``, never the wall clock."""

    code = "SIM101"
    name = "no-wall-clock"
    message = (
        "wall-clock read inside simulated code (use sim.now / sim.timeout)"
    )
    scope = SIM_SCOPE
    exclude = _WALL_BENCH_EXCLUDE
    banned_suffixes = (
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
    )
    banned_from_imports = {
        "time": {
            "time",
            "time_ns",
            "monotonic",
            "monotonic_ns",
            "perf_counter",
            "perf_counter_ns",
        },
    }


#: Module-level draw functions on the shared global ``random`` state.
_RANDOM_DRAWS = {
    "random",
    "randint",
    "randrange",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "gauss",
    "normalvariate",
    "lognormvariate",
    "expovariate",
    "paretovariate",
    "betavariate",
    "gammavariate",
    "triangular",
    "vonmisesvariate",
    "weibullvariate",
    "getrandbits",
    "randbytes",
    "seed",
}

#: numpy.random attributes that construct *seeded instances* (fine).
_NUMPY_RANDOM_OK = {
    "default_rng",
    "Generator",
    "RandomState",
    "SeedSequence",
    "PCG64",
    "Philox",
    "MT19937",
    "SFC64",
    "BitGenerator",
}


@register_rule
class GlobalRandomRule(Rule):
    """SIM102: draws must come from seeded ``repro.sim.RandomSource``.

    ``random.Random(seed)`` instantiation is allowed (it is exactly what
    ``RandomSource`` wraps); the *module-global* draw functions and the
    shared ``numpy.random`` state are not.
    """

    code = "SIM102"
    name = "no-global-random"
    message = (
        "global random stream inside simulated code "
        "(use a seeded repro.sim.RandomSource)"
    )
    scope = SIM_SCOPE

    def run(self, ctx):
        self._bound = _import_map(ctx.tree, {"random": _RANDOM_DRAWS})
        return super().run(ctx)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name in _RANDOM_DRAWS:
                    self.report(
                        node,
                        f"{self.message}: from random import {alias.name}",
                    )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in self._bound:
            self.report(node, f"{self.message}: {self._bound[func.id]}()")
        dotted = dotted_name(func)
        if dotted is not None and not dotted.startswith(("self.", "cls.")):
            parts = dotted.split(".")
            if len(parts) == 2 and parts[0] == "random" and (
                parts[1] in _RANDOM_DRAWS
            ):
                self.report(node, f"{self.message}: {dotted}()")
            elif (
                len(parts) >= 3
                and parts[-3] in ("numpy", "np")
                and parts[-2] == "random"
                and parts[-1] not in _NUMPY_RANDOM_OK
            ):
                self.report(node, f"{self.message}: {dotted}()")
        self.generic_visit(node)


@register_rule
class WallSleepRule(_CallChainRule):
    """SIM105: never block the event loop with a real sleep."""

    code = "SIM105"
    name = "no-wall-sleep"
    message = (
        "time.sleep blocks the event loop inside simulated code "
        "(yield sim.timeout(...) instead)"
    )
    scope = SIM_SCOPE
    banned_suffixes = ("time.sleep",)
    banned_from_imports = {"time": {"sleep"}}


@register_rule
class AmbientEntropyRule(_CallChainRule):
    """SIM106: no OS entropy or random UUIDs in simulated code."""

    code = "SIM106"
    name = "no-ambient-entropy"
    message = (
        "ambient entropy inside simulated code (derive ids from "
        "RandomSource or NodeId.from_name)"
    )
    scope = SIM_SCOPE
    banned_suffixes = (
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbelow",
        "secrets.randbits",
        "secrets.choice",
    )
    banned_from_imports = {
        "os": {"urandom"},
        "uuid": {"uuid1", "uuid4"},
        "secrets": {
            "token_bytes",
            "token_hex",
            "token_urlsafe",
            "randbelow",
            "randbits",
            "choice",
        },
    }


@register_rule
class UnseededRandomRule(Rule):
    """SIM107: ``random.Random()`` without a seed argument.

    SIM102 allows ``random.Random(seed)`` instantiation because that is
    exactly what :class:`repro.sim.RandomSource` wraps — but an
    *argless* ``Random()`` seeds itself from OS entropy, which silently
    breaks the bit-for-bit determinism contract of the load driver and
    the workload models.  Seed it, or fork a ``RandomSource`` stream.
    """

    code = "SIM107"
    name = "no-unseeded-random"
    message = (
        "unseeded random.Random() inside simulated code "
        "(pass a seed, or fork a repro.sim.RandomSource)"
    )
    scope = SIM_SCOPE

    def run(self, ctx):
        self._bound = _import_map(ctx.tree, {"random": {"Random"}})
        return super().run(ctx)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        dotted = dotted_name(func)
        is_random_ctor = (
            isinstance(func, ast.Name) and func.id in self._bound
        ) or dotted == "random.Random"
        if is_random_ctor and not node.args and not node.keywords:
            self.report(node)
        self.generic_visit(node)
