"""CFG rules: cluster configuration stays backward-compatible.

Every feature added since PR 1 (fastpath excepted, grandfathered in
the baseline) ships behind a ``ClusterConfig`` flag that defaults to
*off*, so the pinned goldens — and any user constructing
``ClusterConfig()`` bare — see identical behaviour across PRs.  CFG401
mechanically enforces that convention for new fields.
"""

from __future__ import annotations

import ast

from repro.lint.registry import Rule, register_rule

__all__ = ["ConfigDefaultRule"]


@register_rule
class ConfigDefaultRule(Rule):
    """CFG401: ``ClusterConfig`` fields declare feature-off defaults.

    Two violations: a field with *no* default (breaks every existing
    ``ClusterConfig(...)`` call site), and a boolean field defaulting
    to ``True`` (turns a feature on under every pinned golden).
    Pre-existing ``True`` defaults are grandfathered via the baseline.
    """

    code = "CFG401"
    name = "config-defaults-off"
    message = "ClusterConfig field must default to feature-off"
    scope = ("src/repro/cluster/config.py",)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if node.name != "ClusterConfig":
            self.generic_visit(node)
            return
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            if not isinstance(stmt.target, ast.Name):
                continue
            field_name = stmt.target.id
            if stmt.value is None:
                self.report(
                    stmt,
                    f"ClusterConfig.{field_name} has no default "
                    "(every existing construction site would break)",
                )
            elif (
                isinstance(stmt.value, ast.Constant)
                and stmt.value.value is True
            ):
                self.report(
                    stmt,
                    f"ClusterConfig.{field_name} defaults a feature on "
                    "(goldens pin the feature-off behaviour; default to "
                    "False and opt in per run)",
                )
        self.generic_visit(node)
