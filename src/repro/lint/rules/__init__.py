"""Concrete simlint rules, grouped by invariant family.

Importing this package registers every rule; the registry exposes them
via :func:`repro.lint.registry.all_rules`.
"""

from repro.lint.rules import (  # noqa: F401  (imported for registration)
    config,
    flow,
    rpc,
    sim_determinism,
    sim_io,
    sim_structure,
    telemetry,
    wire,
)

__all__ = [
    "config",
    "flow",
    "rpc",
    "sim_determinism",
    "sim_io",
    "sim_structure",
    "telemetry",
    "wire",
]
