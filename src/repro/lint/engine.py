"""The simlint engine: walk files, run rules, apply suppressions/baseline.

Runs in two phases over a shared parse cache (each file is read and
``ast.parse``d exactly once per run):

1. **per-file** — every applicable :class:`~repro.lint.registry.Rule`
   visits each file's AST independently;
2. **whole-program** — a :class:`~repro.lint.index.ProjectIndex` is
   built over all parsed files and every
   :class:`~repro.lint.registry.ProjectRule` (wire contracts, config
   reachability) runs once over it.

Inline suppressions apply to both phases through the context of the
file each finding anchors to, so a cross-file ``WIRE502`` is silenced
at the handler, never at the caller.

Entry points:

- :func:`lint_source` — lint one in-memory source blob under a virtual
  repo-relative path (drives the fixture-based rule tests); the blob is
  its own single-file project for phase two.
- :func:`lint_paths` — lint ``.py`` files under a root directory.
- :func:`run_lint` — the full pipeline (walk + suppress + baseline)
  returning a :class:`LintReport`; what the CLI calls.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.index import ProjectIndex
from repro.lint.registry import project_rules_for, rules_for

__all__ = ["LintReport", "lint_source", "lint_paths", "run_lint", "DEFAULT_PATHS"]

#: What ``python -m repro lint`` checks when no paths are given.
DEFAULT_PATHS = ("src/repro",)

#: Directory basenames never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", ".ruff_cache"}


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    #: Files that failed to parse: (path, error message).
    errors: list[tuple[str, str]] = field(default_factory=list)
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    n_files: int = 0
    #: Recovered protocol map (msg_type -> senders/handlers/schema);
    #: see :meth:`repro.lint.index.ProjectIndex.wire_report`.
    wire_report: dict = field(default_factory=dict)

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if f.active]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def baselined(self) -> list[Finding]:
        return [f for f in self.findings if f.baselined]

    @property
    def clean(self) -> bool:
        return not self.active and not self.errors and not self.stale_baseline


def _normalize(path: str) -> str:
    return str(PurePosixPath(path.replace(os.sep, "/")))


def _run_phases(
    contexts: dict[str, FileContext], codes: set[str] | None
) -> tuple[list[Finding], ProjectIndex]:
    """Both analysis phases over an already-parsed set of files."""
    findings: list[Finding] = []
    for path in sorted(contexts):
        for rule in rules_for(path, codes=codes):
            findings.extend(rule.run(contexts[path]))
    index = ProjectIndex(contexts)
    for rule in project_rules_for(codes=codes):
        findings.extend(rule.run_project(index))
    for finding in findings:
        anchor = contexts.get(finding.path)
        if anchor is None:
            continue
        codes_here = anchor.suppressions.get(finding.line, set())
        if "*" in codes_here or finding.code in codes_here:
            finding.suppressed = True
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings, index


def lint_source(
    source: str, path: str, codes: set[str] | None = None
) -> list[Finding]:
    """Lint one source blob as if it lived at repo-relative ``path``.

    The blob forms a single-file project, so whole-program rules run
    over it too.  Inline suppressions are applied; baselining is the
    caller's job.
    """
    path = _normalize(path)
    ctx = FileContext(source, path)
    if ctx.skip_file:
        return []
    findings, _ = _run_phases({path: ctx}, codes)
    return findings


def iter_python_files(root: Path, paths: tuple[str, ...]):
    """Yield (absolute, repo-relative-posix) pairs, sorted."""
    seen: set[Path] = set()
    for raw in paths:
        base = (root / raw).resolve()
        if base.is_file():
            candidates = [base]
        elif base.is_dir():
            candidates = [
                p
                for p in sorted(base.rglob("*.py"))
                if not (_SKIP_DIRS & set(p.parts))
            ]
        else:
            raise FileNotFoundError(f"lint path does not exist: {raw}")
        for path in candidates:
            if path not in seen:
                seen.add(path)
                yield path, _normalize(str(path.relative_to(root.resolve())))


def lint_paths(
    root,
    paths: tuple[str, ...] = DEFAULT_PATHS,
    codes: set[str] | None = None,
) -> LintReport:
    """Lint every ``.py`` file under ``root``/``paths``.

    Each file is parsed exactly once; the resulting contexts feed both
    the per-file rules and the whole-program index.
    """
    root = Path(root)
    report = LintReport()
    contexts: dict[str, FileContext] = {}
    for abspath, relpath in iter_python_files(root, paths):
        try:
            source = abspath.read_text(encoding="utf-8")
            ctx = FileContext(source, relpath)
        except (SyntaxError, UnicodeDecodeError) as exc:
            report.errors.append((relpath, str(exc)))
            continue
        report.n_files += 1
        if not ctx.skip_file:
            contexts[relpath] = ctx
    findings, index = _run_phases(contexts, codes)
    report.findings = findings
    report.wire_report = index.wire_report()
    return report


def run_lint(
    root,
    paths: tuple[str, ...] = DEFAULT_PATHS,
    baseline_path=None,
    codes: set[str] | None = None,
) -> LintReport:
    """Lint + baseline: the complete pipeline behind the CLI."""
    report = lint_paths(root, paths, codes=codes)
    if baseline_path is not None and Path(baseline_path).exists():
        baseline = Baseline.load(baseline_path)
        report.stale_baseline = baseline.apply(report.findings)
    return report
