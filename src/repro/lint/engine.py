"""The simlint engine: walk files, run rules, apply suppressions/baseline.

Entry points:

- :func:`lint_source` — lint one in-memory source blob under a virtual
  repo-relative path (drives the fixture-based rule tests).
- :func:`lint_paths` — lint ``.py`` files under a root directory.
- :func:`run_lint` — the full pipeline (walk + suppress + baseline)
  returning a :class:`LintReport`; what the CLI calls.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import rules_for

__all__ = ["LintReport", "lint_source", "lint_paths", "run_lint", "DEFAULT_PATHS"]

#: What ``python -m repro lint`` checks when no paths are given.
DEFAULT_PATHS = ("src/repro",)

#: Directory basenames never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", ".ruff_cache"}


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    #: Files that failed to parse: (path, error message).
    errors: list[tuple[str, str]] = field(default_factory=list)
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    n_files: int = 0

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if f.active]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def baselined(self) -> list[Finding]:
        return [f for f in self.findings if f.baselined]

    @property
    def clean(self) -> bool:
        return not self.active and not self.errors and not self.stale_baseline


def _normalize(path: str) -> str:
    return str(PurePosixPath(path.replace(os.sep, "/")))


def lint_source(
    source: str, path: str, codes: set[str] | None = None
) -> list[Finding]:
    """Lint one source blob as if it lived at repo-relative ``path``.

    Inline suppressions are applied; baselining is the caller's job.
    """
    path = _normalize(path)
    ctx = FileContext(source, path)
    if ctx.skip_file:
        return []
    findings: list[Finding] = []
    for rule in rules_for(path, codes=codes):
        findings.extend(rule.run(ctx))
    for finding in findings:
        codes_here = ctx.suppressions.get(finding.line, set())
        if "*" in codes_here or finding.code in codes_here:
            finding.suppressed = True
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def iter_python_files(root: Path, paths: tuple[str, ...]):
    """Yield (absolute, repo-relative-posix) pairs, sorted."""
    seen: set[Path] = set()
    for raw in paths:
        base = (root / raw).resolve()
        if base.is_file():
            candidates = [base]
        elif base.is_dir():
            candidates = [
                p
                for p in sorted(base.rglob("*.py"))
                if not (_SKIP_DIRS & set(p.parts))
            ]
        else:
            raise FileNotFoundError(f"lint path does not exist: {raw}")
        for path in candidates:
            if path not in seen:
                seen.add(path)
                yield path, _normalize(str(path.relative_to(root.resolve())))


def lint_paths(
    root,
    paths: tuple[str, ...] = DEFAULT_PATHS,
    codes: set[str] | None = None,
) -> LintReport:
    """Lint every ``.py`` file under ``root``/``paths``."""
    root = Path(root)
    report = LintReport()
    for abspath, relpath in iter_python_files(root, paths):
        try:
            source = abspath.read_text(encoding="utf-8")
            findings = lint_source(source, relpath, codes=codes)
        except (SyntaxError, UnicodeDecodeError) as exc:
            report.errors.append((relpath, str(exc)))
            continue
        report.n_files += 1
        report.findings.extend(findings)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return report


def run_lint(
    root,
    paths: tuple[str, ...] = DEFAULT_PATHS,
    baseline_path=None,
    codes: set[str] | None = None,
) -> LintReport:
    """Lint + baseline: the complete pipeline behind the CLI."""
    report = lint_paths(root, paths, codes=codes)
    if baseline_path is not None and Path(baseline_path).exists():
        baseline = Baseline.load(baseline_path)
        report.stale_baseline = baseline.apply(report.findings)
    return report
