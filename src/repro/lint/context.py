"""Per-file analysis context shared by every simlint rule.

Parses the file once, links every AST node to its parent (rules walk
upward to find guarding ``if`` statements), and extracts the inline
suppression comments (``# simlint: ignore[CODE]``) via the tokenizer so
string literals containing the marker are never mistaken for comments.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize

__all__ = ["FileContext", "dotted_name", "parse_suppressions"]

_IGNORE_RE = re.compile(
    r"#\s*simlint:\s*ignore(?:\[(?P<codes>[A-Z0-9,\s]+)\])?"
)
_SKIP_FILE_RE = re.compile(r"#\s*simlint:\s*skip-file\b")


def parse_suppressions(source: str) -> tuple[dict[int, set[str]], bool]:
    """Map line number -> suppressed codes (``{"*"}`` = all codes).

    Returns ``(suppressions, skip_file)``.  Only real comment tokens
    count; a marker inside a string literal is ignored.
    """
    suppressions: dict[int, set[str]] = {}
    skip_file = False
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            if _SKIP_FILE_RE.search(tok.string):
                skip_file = True
            match = _IGNORE_RE.search(tok.string)
            if not match:
                continue
            codes = match.group("codes")
            if codes:
                wanted = {c.strip() for c in codes.split(",") if c.strip()}
            else:
                wanted = {"*"}
            suppressions.setdefault(tok.start[0], set()).update(wanted)
    except tokenize.TokenError:
        pass  # the ast parse will surface the syntax error instead
    return suppressions, skip_file


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class FileContext:
    """One parsed file: tree, lines, parents, suppressions."""

    def __init__(self, source: str, path: str) -> None:
        #: Repo-relative posix path (drives rule scoping).
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self.suppressions, self.skip_file = parse_suppressions(source)
        self.parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(node)

    def ancestors(self, node: ast.AST):
        """Yield enclosing nodes from the immediate parent outward."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None
