"""The ``python -m repro lint`` subcommand.

Modes:

- ``repro lint`` — report findings (inline suppressions and the
  committed baseline applied); always exits 0.
- ``repro lint --check`` — the CI gate: exit 1 on any active finding,
  parse error, or stale baseline entry.
- ``repro lint --update-baseline`` — rewrite the baseline from the
  current findings (grandfathering everything still unfixed).
- ``repro lint --wire-report`` — dump the recovered RPC protocol
  (msg_type -> senders / handlers / field schema) and exit.
- ``repro lint --format json`` — machine-readable output (findings +
  wire report) for CI artifacts and tooling.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.lint.baseline import Baseline
from repro.lint.engine import DEFAULT_PATHS, run_lint
from repro.lint.registry import all_rules

__all__ = ["add_lint_arguments", "run"]

DEFAULT_BASELINE = ".simlint-baseline.json"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=f"files/directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root paths are resolved against (default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        metavar="PATH",
        help="baseline file of grandfathered findings, relative to --root "
        f"(default: {DEFAULT_BASELINE}; missing file = empty baseline)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report grandfathered findings too",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI gate: exit 1 on active findings, parse errors, or "
        "stale baseline entries",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also list suppressed and baselined findings",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help="output format (json: stable schema with findings + "
        "wire report, for CI artifacts)",
    )
    parser.add_argument(
        "--wire-report",
        action="store_true",
        help="print the recovered RPC protocol map "
        "(msg_type -> senders/handlers/field schema) and exit",
    )


#: Version tag for the ``--format json`` output; bump on breaking
#: shape changes so CI consumers can pin.
JSON_SCHEMA = "simlint/1"


def _finding_status(finding) -> str:
    if finding.suppressed:
        return "suppressed"
    if finding.baselined:
        return "baselined"
    return "active"


def _report_as_json(report) -> dict:
    return {
        "schema": JSON_SCHEMA,
        "n_files": report.n_files,
        "clean": report.clean,
        "findings": [
            {
                "code": f.code,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "source": f.source,
                "status": _finding_status(f),
            }
            for f in report.findings
        ],
        "errors": [{"path": p, "error": e} for p, e in report.errors],
        "stale_baseline": [
            {"code": e.code, "path": e.path, "source": e.source}
            for e in report.stale_baseline
        ],
        "wire_report": report.wire_report,
    }


def _print_wire_report(report) -> None:
    for msg, entry in report.wire_report.items():
        print(msg)
        for role in ("senders", "handlers"):
            for who in entry[role]:
                print(f"  {role[:-1]:8s} {who}")
        sent = ", ".join(entry["sent"]) or "-"
        if entry["open"]:
            sent += "  (+open: some sender forwards an unknown dict)"
        print(f"  sent     {sent}")
        required = ", ".join(entry["required"]) or "-"
        if entry["reads_all"]:
            required += "  (+reads-all: some handler consumes the whole body)"
        print(f"  required {required}")
        print(f"  optional {', '.join(entry['optional']) or '-'}")


def _list_rules() -> int:
    for code, cls in all_rules().items():
        scope = ", ".join(cls.scope)
        print(f"{code}  {cls.name}")
        print(f"    {cls.message}")
        print(f"    scope: {scope}")
    return 0


def run(args: argparse.Namespace) -> int:
    if args.list_rules:
        return _list_rules()

    root = Path(args.root)
    paths = tuple(args.paths) if args.paths else DEFAULT_PATHS
    codes = (
        {c.strip() for c in args.select.split(",") if c.strip()}
        if args.select
        else None
    )
    baseline_path = None if args.no_baseline else root / args.baseline

    if args.update_baseline:
        report = run_lint(root, paths, baseline_path=None, codes=codes)
        baseline = Baseline.from_findings(report.findings)
        target = root / args.baseline
        baseline.write(target)
        print(
            f"simlint: wrote {len(baseline.entries)} baseline "
            f"entr{'y' if len(baseline.entries) == 1 else 'ies'} to {target}"
        )
        if report.errors:
            for path, error in report.errors:
                print(f"simlint: parse error in {path}: {error}")
            return 1
        return 0

    report = run_lint(root, paths, baseline_path=baseline_path, codes=codes)

    if args.wire_report:
        if args.output_format == "json":
            print(json.dumps(report.wire_report, indent=2, sort_keys=True))
        else:
            _print_wire_report(report)
        return 0

    if args.output_format == "json":
        print(json.dumps(_report_as_json(report), indent=2, sort_keys=True))
        return 1 if args.check and not report.clean else 0

    for finding in report.active:
        print(finding.render())
    if args.verbose:
        for finding in report.suppressed:
            print(f"{finding.render()} [suppressed]")
        for finding in report.baselined:
            print(f"{finding.render()} [baselined]")
    for path, error in report.errors:
        print(f"simlint: parse error in {path}: {error}")
    for entry in report.stale_baseline:
        print(
            f"simlint: stale baseline entry {entry.code} at "
            f"{entry.path} ({entry.source!r}) — fixed? regenerate with "
            "--update-baseline"
        )

    n_active = len(report.active)
    print(
        f"simlint: {report.n_files} files, {n_active} finding(s) "
        f"({len(report.baselined)} baselined, "
        f"{len(report.suppressed)} suppressed)"
    )
    if args.check and not report.clean:
        return 1
    return 0
