"""Phase one of the whole-program analysis: the :class:`ProjectIndex`.

simlint's per-file rules see one AST at a time; the wire-contract rules
(``WIRE5xx``, ``CFG402``) need the *protocol* — who sends which message
with which body fields, and who handles it.  The index recovers that
protocol from the already-parsed :class:`~repro.lint.context.FileContext`
cache (no file is re-read or re-parsed) in four extractions:

- **RPC call sites** — ``endpoint.call(dst, "msg", {...})`` /
  ``.notify(...)`` plus every *forwarder*: a function with a
  ``msg_type`` parameter that passes it into another send (``_call``,
  ``_safe_notify``, ``ResilientCaller.call``, ...).  Call sites of a
  forwarder count as sends of the message they pass in.
- **Body schemas** — dict-literal keys, local dict variables widened by
  later ``body["k"] = ...`` assignments, and ``{**body, ...}`` spreads.
  A spread of an unknown value makes the schema *open*: the sender may
  ship fields the index cannot name, so absence is never provable.
- **Handler registrations** — ``register(MSG_X, self._handle_x)``
  (also lambdas and local functions), attributed to the enclosing
  class so per-device-class divergence is visible.
- **Handler field reads** — ``request.body["f"]`` (required) vs
  ``request.body.get("f")`` (optional), followed transitively through
  helpers: ``self._helper(body, span)`` merges the helper's reads, and
  the higher-order ``self._handled(name, request, self._put_local)``
  pattern merges both callees.  Passing the body anywhere opaque
  (``dict(request.body)``, a non-method callee) marks the handler as
  reading *everything*, which disables dead-field claims for it.

Message-type names resolve through module-level ``MSG_* = "..."``
constants, including cross-module ``from repro.x import MSG_Y`` imports.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.context import FileContext

__all__ = [
    "BodySchema",
    "CallSite",
    "HandlerSummary",
    "ProjectIndex",
    "Registration",
]

#: The telemetry context key threaded through request bodies when spans
#: are on; handlers read it via ``_handled``/``.get("span")`` and it is
#: exempt from dead-field analysis.
SPAN_FIELD = "span"


@dataclass(frozen=True)
class BodySchema:
    """What a call site puts on the wire."""

    fields: frozenset
    #: True when the body spreads an unknown value (``{**body, ...}``,
    #: a forwarded parameter, a computed dict): the sender may ship
    #: fields beyond :attr:`fields`.
    is_open: bool


@dataclass
class CallSite:
    """One resolved RPC send."""

    path: str
    line: int
    col: int
    msg_type: str
    schema: BodySchema
    #: ``Class.method`` (or bare function name / ``<module>``).
    sender: str
    node: ast.AST = field(repr=False, compare=False, default=None)


@dataclass
class Registration:
    """One ``register(msg_type, handler)`` site."""

    path: str
    line: int
    col: int
    msg_type: str
    class_name: str
    handler_name: str
    node: ast.AST = field(repr=False, compare=False, default=None)


@dataclass
class HandlerSummary:
    """Transitive body-field reads of one registered handler."""

    path: str
    class_name: str
    handler_name: str
    #: field -> first AST node reading it (the finding anchor).
    required: dict = field(default_factory=dict)
    optional: dict = field(default_factory=dict)
    #: Body consumed opaquely somewhere — every field may be read.
    reads_all: bool = False
    #: The handler's ``def`` (or the registration, as a fallback).
    def_node: ast.AST = field(repr=False, compare=False, default=None)

    def merge(self, other: "HandlerSummary") -> None:
        for key, node in other.required.items():
            self.required.setdefault(key, node)
        for key, node in other.optional.items():
            self.optional.setdefault(key, node)
        self.reads_all = self.reads_all or other.reads_all

    @property
    def read_fields(self) -> set:
        return set(self.required) | set(self.optional)


def _module_to_path(module: str) -> str:
    """``repro.vstore.node`` -> ``src/repro/vstore/node.py``."""
    return "src/" + module.replace(".", "/") + ".py"


def _func_params(node) -> list:
    """Positional parameter names, ``self``/``cls`` stripped."""
    names = [a.arg for a in node.args.posonlyargs + node.args.args]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return names


class ProjectIndex:
    """The recovered RPC protocol for one set of parsed files."""

    #: Receiver methods that are always sends: ``X.call(dst, msg, body)``.
    _BASE_SENDS = {"call": [(1, 2)], "notify": [(1, 2)]}

    def __init__(self, contexts: dict) -> None:
        #: path -> FileContext (shared with the per-file rules).
        self.contexts = contexts
        #: (path, local name) -> message-type string.
        self.constants: dict = {}
        self.calls: list[CallSite] = []
        #: Sends whose message type could not be resolved to a string.
        self.dynamic_calls: list = []
        #: list of (Registration, HandlerSummary), registration order.
        self.handlers: list = []
        #: (path, class or None, name) -> function node.
        self._funcs: dict = {}
        #: forwarder name -> [(msg arg index, body arg index or None)].
        self._forwarders: dict = {k: list(v) for k, v in self._BASE_SENDS.items()}
        self._summaries: dict = {}
        self._in_progress: set = set()
        self._build()

    # -- construction -----------------------------------------------------

    def _build(self) -> None:
        ordered = sorted(self.contexts)
        for path in ordered:
            self._collect_constants(self.contexts[path])
        self._resolve_imports(ordered)
        for path in ordered:
            self._collect_functions(self.contexts[path])
        for path in ordered:
            self._collect_forwarders(self.contexts[path])
        for path in ordered:
            self._collect_sites(self.contexts[path])
        self.calls.sort(key=lambda c: (c.path, c.line, c.col))
        self.handlers.sort(key=lambda h: (h[0].path, h[0].line, h[0].col))

    def _collect_constants(self, ctx: FileContext) -> None:
        for stmt in ctx.tree.body:
            target = None
            value = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
            if (
                isinstance(target, ast.Name)
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                self.constants[(ctx.path, target.id)] = value.value

    def _resolve_imports(self, ordered) -> None:
        """Chase ``from repro.x import MSG_Y`` across indexed modules."""
        pending = []
        for path in ordered:
            for node in ast.walk(self.contexts[path].tree):
                if isinstance(node, ast.ImportFrom) and node.module:
                    src = _module_to_path(node.module)
                    for alias in node.names:
                        pending.append(
                            (path, alias.asname or alias.name, src, alias.name)
                        )
        for _ in range(2):  # two passes cover import-of-import chains
            for path, local, src, orig in pending:
                if (src, orig) in self.constants:
                    self.constants[(path, local)] = self.constants[(src, orig)]

    def _collect_functions(self, ctx: FileContext) -> None:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls = self._enclosing_class(ctx, node)
                self._funcs[(ctx.path, cls, node.name)] = node

    def _collect_forwarders(self, ctx: FileContext) -> None:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params = _func_params(node)
            if "msg_type" not in params:
                continue
            if not self._forwards_msg_type(node):
                continue
            sig = (
                params.index("msg_type"),
                params.index("body") if "body" in params else None,
            )
            sigs = self._forwarders.setdefault(node.name, [])
            if sig not in sigs:
                sigs.append(sig)

    @staticmethod
    def _forwards_msg_type(func) -> bool:
        """True when the ``msg_type`` parameter feeds another call."""
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            args = list(node.args) + [kw.value for kw in node.keywords]
            for arg in args:
                if isinstance(arg, ast.Name) and arg.id == "msg_type":
                    return True
        return False

    # -- call-site / registration extraction ------------------------------

    def _collect_sites(self, ctx: FileContext) -> None:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            if node.func.attr == "register":
                self._extract_registration(ctx, node)
            elif node.func.attr in self._forwarders:
                self._extract_call(ctx, node)

    def _arg(self, call: ast.Call, index, keyword):
        if index is not None and len(call.args) > index:
            return call.args[index]
        for kw in call.keywords:
            if kw.arg == keyword:
                return kw.value
        return None

    def _extract_call(self, ctx: FileContext, node: ast.Call) -> None:
        enclosing = ctx.enclosing_function(node)
        own_params = _func_params(enclosing) if enclosing is not None else []
        for msg_idx, body_idx in self._forwarders[node.func.attr]:
            msg_expr = self._arg(node, msg_idx, "msg_type")
            if msg_expr is None:
                continue
            # The forwarding edge itself (``self.endpoint.call(dst,
            # msg_type, body)`` inside ``_call``) is internal plumbing,
            # not a send: the forwarder's own callers are the senders.
            if (
                isinstance(msg_expr, ast.Name)
                and msg_expr.id == "msg_type"
                and "msg_type" in own_params
            ):
                return
            msg = self._resolve_str(ctx, msg_expr)
            if msg is None:
                continue
            schema = self._body_schema(
                ctx, self._arg(node, body_idx, "body"), enclosing
            )
            self.calls.append(
                CallSite(
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    msg_type=msg,
                    schema=schema,
                    sender=self._qualname(ctx, node),
                    node=node,
                )
            )
            return
        self.dynamic_calls.append((ctx.path, node.lineno))

    def _extract_registration(self, ctx: FileContext, node: ast.Call) -> None:
        if len(node.args) != 2:
            return
        msg = self._resolve_str(ctx, node.args[0])
        if msg is None:
            return
        cls = self._enclosing_class(ctx, node)
        handler = node.args[1]
        summary = None
        name = "<dynamic>"
        if (
            isinstance(handler, ast.Attribute)
            and isinstance(handler.value, ast.Name)
            and handler.value.id == "self"
        ):
            name = handler.attr
            summary = self._method_summary(ctx.path, cls, name)
        elif isinstance(handler, ast.Name):
            name = handler.id
            func = self._funcs.get((ctx.path, cls, name)) or self._funcs.get(
                (ctx.path, None, name)
            )
            if func is not None:
                summary = self._summarize(ctx.path, cls, func, is_handler=True)
        elif isinstance(handler, ast.Lambda):
            name = "<lambda>"
            summary = self._summarize(ctx.path, cls, handler, is_handler=True)
        if summary is None:
            # Unresolvable handler: assume it may read anything.
            summary = HandlerSummary(
                ctx.path, cls, name, reads_all=True, def_node=node
            )
        registration = Registration(
            path=ctx.path,
            line=node.lineno,
            col=node.col_offset + 1,
            msg_type=msg,
            class_name=cls,
            handler_name=name,
            node=node,
        )
        self.handlers.append((registration, summary))

    def _resolve_str(self, ctx: FileContext, expr):
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return expr.value
        if isinstance(expr, ast.Name):
            return self.constants.get((ctx.path, expr.id))
        return None

    def _enclosing_class(self, ctx: FileContext, node):
        for anc in ctx.ancestors(node):
            if isinstance(anc, ast.ClassDef):
                return anc.name
        return None

    def _qualname(self, ctx: FileContext, node) -> str:
        func = ctx.enclosing_function(node)
        cls = self._enclosing_class(ctx, node)
        if func is None:
            return "<module>"
        return f"{cls}.{func.name}" if cls else func.name

    # -- body schema resolution -------------------------------------------

    def _body_schema(self, ctx, expr, enclosing) -> BodySchema:
        if expr is None or (
            isinstance(expr, ast.Constant) and expr.value is None
        ):
            return BodySchema(frozenset(), is_open=False)
        if isinstance(expr, ast.Dict):
            return self._dict_schema(ctx, expr, enclosing)
        if isinstance(expr, ast.Name) and enclosing is not None:
            if expr.id in _func_params(enclosing):
                # A forwarded parameter: contents unknown here.
                return BodySchema(frozenset(), is_open=True)
            return self._local_var_schema(ctx, expr.id, enclosing)
        return BodySchema(frozenset(), is_open=True)

    def _dict_schema(self, ctx, node: ast.Dict, enclosing) -> BodySchema:
        fields: set = set()
        is_open = False
        for key, value in zip(node.keys, node.values):
            if key is None:  # {**spread, ...}
                inner = self._body_schema(ctx, value, enclosing)
                fields |= inner.fields
                is_open = is_open or inner.is_open
            elif isinstance(key, ast.Constant) and isinstance(key.value, str):
                fields.add(key.value)
            else:
                is_open = True
        return BodySchema(frozenset(fields), is_open)

    def _local_var_schema(self, ctx, name: str, enclosing) -> BodySchema:
        """Union every ``name = {...}`` assignment plus later
        ``name["k"] = ...`` widenings inside the enclosing function."""
        fields: set = set()
        is_open = False
        assigned = False
        for node in ast.walk(enclosing):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        assigned = True
                        if isinstance(node.value, ast.Dict):
                            inner = self._dict_schema(ctx, node.value, enclosing)
                            fields |= inner.fields
                            is_open = is_open or inner.is_open
                        else:
                            is_open = True
                    elif (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == name
                    ):
                        key = target.slice
                        if isinstance(key, ast.Constant) and isinstance(
                            key.value, str
                        ):
                            fields.add(key.value)
                        else:
                            is_open = True
        if not assigned:
            return BodySchema(frozenset(), is_open=True)
        return BodySchema(frozenset(fields), is_open)

    # -- handler field-read summaries -------------------------------------

    def _method_summary(self, path, cls, name):
        func = self._funcs.get((path, cls, name))
        if func is None:
            return None
        return self._summarize(path, cls, func, is_handler=True)

    def _summarize(self, path, cls, func, is_handler) -> HandlerSummary:
        key = id(func)
        if key in self._summaries:
            return self._summaries[key]
        if key in self._in_progress:  # recursion (mutual helpers)
            return HandlerSummary(path, cls, getattr(func, "name", "<lambda>"))
        self._in_progress.add(key)
        summary = self._summarize_uncached(path, cls, func, is_handler)
        self._in_progress.discard(key)
        self._summaries[key] = summary
        return summary

    def _summarize_uncached(self, path, cls, func, is_handler):
        name = getattr(func, "name", "<lambda>")
        summary = HandlerSummary(path, cls, name, def_node=func)
        ctx = self.contexts[path]
        params = _func_params(func)
        # Roots: expressions that denote the wire body.  A registered
        # handler's first parameter is the Request; helpers reached by
        # body-flow read via parameters literally named request/body.
        request_roots = set()
        body_roots = set()
        if is_handler and params:
            request_roots.add(params[0])
        request_roots.update(p for p in params if p == "request")
        body_roots.update(p for p in params if p == "body")
        # Alias pass: ``body = request.body`` / ``b = body``.
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                value = node.value
                if self._is_body_expr(value, request_roots, body_roots):
                    body_roots.add(node.targets[0].id)
        for node in ast.walk(func):
            if self._is_body_expr(node, request_roots, body_roots):
                self._classify_read(
                    ctx, node, func, params, request_roots, body_roots, summary
                )
            elif (
                isinstance(node, ast.Name)
                and node.id in request_roots
                and isinstance(node.ctx, ast.Load)
            ):
                self._classify_request_use(ctx, node, summary)
        return summary

    @staticmethod
    def _is_body_expr(node, request_roots, body_roots) -> bool:
        if isinstance(node, ast.Name):
            return node.id in body_roots and isinstance(node.ctx, ast.Load)
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "body"
            and isinstance(node.value, ast.Name)
            and node.value.id in request_roots
        )

    def _classify_read(
        self, ctx, node, func, params, request_roots, body_roots, summary
    ) -> None:
        parent = ctx.parent(node)
        if isinstance(parent, ast.Subscript) and parent.value is node:
            if isinstance(parent.ctx, (ast.Store, ast.Del)):
                return  # a write never *reads* a wire field
            key = parent.slice
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                summary.required.setdefault(key.value, parent)
            else:
                summary.reads_all = True
            return
        if isinstance(parent, ast.Attribute) and parent.attr == "get":
            call = ctx.parent(parent)
            if (
                isinstance(call, ast.Call)
                and call.func is parent
                and call.args
                and isinstance(call.args[0], ast.Constant)
                and isinstance(call.args[0].value, str)
            ):
                summary.optional.setdefault(call.args[0].value, call)
            else:
                summary.reads_all = True
            return
        if isinstance(parent, ast.Attribute):
            return  # e.g. ``request.src`` — not a body read
        if isinstance(parent, ast.Assign) and parent.value is node:
            if len(parent.targets) == 1 and isinstance(
                parent.targets[0], ast.Name
            ):
                return  # alias, handled in the alias pass
            summary.reads_all = True
            return
        if isinstance(parent, ast.Call) and node in parent.args:
            if self._merge_call(ctx, parent, summary):
                return
            # Higher-order flow: passing the body to one of our own
            # parameters (``inner(request.body, span)``) is accounted
            # for at the *caller*, which passed the real callee in.
            if (
                isinstance(parent.func, ast.Name)
                and parent.func.id in params
            ):
                return
            summary.reads_all = True
            return
        summary.reads_all = True

    def _classify_request_use(self, ctx, node, summary) -> None:
        parent = ctx.parent(node)
        if isinstance(parent, ast.Attribute):
            return  # .body handled elsewhere; .src etc. irrelevant
        if isinstance(parent, ast.Call) and node in parent.args:
            self._merge_call(ctx, parent, summary)

    def _merge_call(self, ctx, call: ast.Call, summary) -> bool:
        """Merge summaries of ``self.<m>`` callees (and any ``self.<m>``
        references passed along as arguments).  Returns True when the
        callee was a resolvable method of the same class."""
        func = call.func
        if not (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            return False
        merged = False
        targets = [func.attr]
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if (
                isinstance(arg, ast.Attribute)
                and isinstance(arg.value, ast.Name)
                and arg.value.id == "self"
            ):
                targets.append(arg.attr)
        for target in targets:
            callee = self._funcs.get((summary.path, summary.class_name, target))
            if callee is not None:
                sub = self._summarize(
                    summary.path, summary.class_name, callee, is_handler=False
                )
                summary.merge(sub)
                merged = True
        return merged

    # -- queries ----------------------------------------------------------

    def message_types(self):
        types = {c.msg_type for c in self.calls}
        types.update(reg.msg_type for reg, _ in self.handlers)
        return sorted(types)

    def calls_for(self, msg_type: str):
        return [c for c in self.calls if c.msg_type == msg_type]

    def handlers_for(self, msg_type: str):
        return [(r, s) for r, s in self.handlers if r.msg_type == msg_type]

    def wire_report(self) -> dict:
        """The recovered protocol: msg_type -> senders/handlers/schema.

        Line-number free (identifiers are ``path::Class.method``) so the
        golden pinned in the test suite survives unrelated line drift.
        """
        report: dict = {}
        for msg in self.message_types():
            calls = self.calls_for(msg)
            handlers = self.handlers_for(msg)
            required: set = set()
            optional: set = set()
            for _, summary in handlers:
                required |= set(summary.required)
                optional |= set(summary.optional)
            sent: set = set()
            for call in calls:
                sent |= call.schema.fields
            report[msg] = {
                "senders": sorted({f"{c.path}::{c.sender}" for c in calls}),
                "handlers": sorted(
                    {
                        f"{r.path}::{r.class_name or '<module>'}"
                        f".{r.handler_name}"
                        for r, _ in handlers
                    }
                ),
                "sent": sorted(sent),
                "open": any(c.schema.is_open for c in calls),
                "required": sorted(required),
                "optional": sorted(optional - required),
                "reads_all": any(s.reads_all for _, s in handlers),
            }
        return report
