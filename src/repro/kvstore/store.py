"""The DHT-based key-value store (VStore++ metadata layer).

One :class:`DhtKeyValueStore` runs on every overlay node.  Keys are
40-bit hashes of object/service names and node addresses; values are
serialized metadata.  The store implements the paper's Section III-A
mechanisms:

* **Prefix-routed put/get/delete** — requests travel hop by hop through
  the Chimera overlay to the key's root node.
* **Overwrite policies** — overwrite, version chaining, or error.
* **Intermediate-hop caching** — "key-value entries are cached onto
  intermediate hops on each request's path through the DHT overlay";
  the owner remembers which nodes hold cached copies and pushes updates
  to them when the entry is modified.
* **Replication** — "state can be replicated using a fixed replication
  factor"; the owner pushes copies to its clockwise leaf neighbours, and
  a new owner promotes a replica when the previous owner crashed.
* **Key redistribution** — records move to a joining node that becomes
  their root, and a gracefully departing node hands all its records to
  their new owners before leaving.
* **Durability & anti-entropy** (``storage`` backend attached) — every
  primary/replica mutation is journaled through a
  :class:`repro.storage.IStore` backend, deletes leave tombstones, and
  a recovered node replays its WAL (:meth:`DhtKeyValueStore.recover`)
  then reconciles with its ring neighbours
  (:meth:`DhtKeyValueStore.sync_with_peers`): pull what was missed
  during the outage, push what peers lost, drop what was deleted.
"""

from __future__ import annotations

import math
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.net import HostDownError, RemoteError, Request, RpcTimeoutError
from repro.overlay import ChimeraNode, NodeId, PeerInfo
from repro.kvstore.errors import KeyExistsError, KeyNotFoundError, KvError
from repro.kvstore.records import (
    OverwritePolicy,
    Record,
    payload_size,
)
from repro.kvstore.sync import (
    digest_beats,
    record_beats_digest,
    record_digest,
    tombstone_covers,
    tombstone_digest,
)

__all__ = ["DhtKeyValueStore", "KvStats"]

MSG_PUT = "kv.put"
MSG_GET = "kv.get"
MSG_DELETE = "kv.delete"
MSG_REPLICA = "kv.replica"
MSG_REPLICA_DELETE = "kv.replica-delete"
MSG_CACHE_UPDATE = "kv.cache-update"
MSG_CACHE_INVALIDATE = "kv.cache-invalidate"
MSG_TRANSFER = "kv.transfer"
#: Anti-entropy: digest exchange and the follow-up record push.
MSG_SYNC = "kv.sync"
MSG_SYNC_PUSH = "kv.sync-push"


#: How many recent lookup samples :class:`KvStats` keeps for inspection.
LOOKUP_WINDOW = 256


@dataclass
class KvStats:
    """Operation counters for one node's store.

    ``lookup_times`` holds only the most recent :data:`LOOKUP_WINDOW`
    samples (bounded memory under heavy traffic); the exact mean over
    *all* lookups comes from the running ``lookup_count`` /
    ``lookup_time_total`` pair.
    """

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    cache_hits: int = 0
    #: Cache entries dropped by failure-triggered coherence (a reader
    #: saw evidence its cached record was stale, e.g. a fetch failover).
    cache_invalidated: int = 0
    served_primary: int = 0
    served_replica: int = 0
    forwards: int = 0
    records_received: int = 0
    #: Records silently lost because every transfer target was
    #: unreachable during a graceful leave.
    leave_stranded: int = 0
    lookup_times: deque = field(
        default_factory=lambda: deque(maxlen=LOOKUP_WINDOW)
    )
    lookup_count: int = 0
    lookup_time_total: float = 0.0

    def record_lookup(self, elapsed: float) -> None:
        self.lookup_times.append(elapsed)
        self.lookup_count += 1
        self.lookup_time_total += elapsed

    @property
    def mean_lookup_time(self) -> float:
        if self.lookup_count == 0:
            return 0.0
        return self.lookup_time_total / self.lookup_count

    def snapshot(self) -> dict:
        """JSON-ready export consumed by the telemetry metrics plane.

        Counters and the lookup mean are exact over the node's whole
        lifetime (the mean comes from the running count/total pair, not
        the bounded sample window); the quantiles are nearest-rank over
        the most recent :data:`LOOKUP_WINDOW` samples.
        """
        window = sorted(self.lookup_times)

        def _q(q: float) -> float:
            if not window:
                return 0.0
            rank = min(len(window) - 1, max(0, math.ceil(q * len(window)) - 1))
            return window[rank]

        return {
            "counters": {
                "puts": self.puts,
                "gets": self.gets,
                "deletes": self.deletes,
                "cache_hits": self.cache_hits,
                "cache_invalidated": self.cache_invalidated,
                "served_primary": self.served_primary,
                "served_replica": self.served_replica,
                "forwards": self.forwards,
                "records_received": self.records_received,
                "leave_stranded": self.leave_stranded,
            },
            "lookup_count": self.lookup_count,
            "lookup_mean_s": self.mean_lookup_time,
            "lookup_window": {
                "n": len(window),
                "p50": _q(0.50),
                "p95": _q(0.95),
                "p99": _q(0.99),
                "p999": _q(0.999),
            },
        }


class DhtKeyValueStore:
    """Key-value store instance bound to one overlay node.

    Parameters
    ----------
    chimera:
        The overlay node providing routing and membership.
    replication_factor:
        Number of clockwise neighbours that receive replica copies
        (0 disables replication).
    cache_enabled / cache_capacity:
        Intermediate-hop caching switch and per-node LRU capacity.
    processing_s:
        Local store processing cost per handled request.
    ring_scan_reference:
        When True, replica-target and owner selection use the legacy
        full-membership sort instead of the ring-window query on
        :meth:`ChimeraNode.nearest_peers`.  Both paths return identical
        peers (pinned by equality tests); the reference path is kept
        for A/B measurement.
    storage:
        Optional :class:`repro.storage.IStore` backend.  When set, the
        primary/replica tables are bound through it (so every mutation
        is journaled by durable backends) and deletes leave tombstones
        for anti-entropy; when None (the default) the tables are plain
        dictionaries and behaviour is byte-identical to before the
        storage layer existed.
    """

    def __init__(
        self,
        chimera: ChimeraNode,
        replication_factor: int = 2,
        cache_enabled: bool = True,
        cache_capacity: int = 512,
        processing_s: float = 0.004,
        ring_scan_reference: bool = False,
        storage=None,
    ) -> None:
        if replication_factor < 0:
            raise ValueError("replication_factor must be >= 0")
        if cache_capacity <= 0:
            raise ValueError("cache_capacity must be positive")
        self.chimera = chimera
        self.replication_factor = replication_factor
        self.cache_enabled = cache_enabled
        self.cache_capacity = cache_capacity
        self.processing_s = processing_s
        self.ring_scan_reference = ring_scan_reference
        self.storage = storage
        if storage is None:
            self.primary: dict[str, Record] = {}
            self.replicas: dict[str, Record] = {}
            #: key -> {"version": v, "at": t}; deletes leave tombstones
            #: so a recovered node cannot resurrect a deleted key.
            #: None when no backend is attached (feature off).
            self.tombstones: Optional[dict] = None
        else:
            self.primary = storage.table("kv.primary", decode=Record.from_wire)
            self.replicas = storage.table("kv.replicas", decode=Record.from_wire)
            self.tombstones = storage.table("kv.tombstones")
        self.cache: "OrderedDict[str, Record]" = OrderedDict()
        #: Owner-side map: key -> names of nodes holding cached copies.
        self.cache_holders: dict[str, set[str]] = {}
        self.stats = KvStats()
        self._register_handlers()
        chimera.on_node_joined.append(self._on_node_joined)
        chimera.on_node_left.append(self._on_node_left)

    # -- naming helpers ------------------------------------------------------

    @property
    def name(self) -> str:
        return self.chimera.name

    @property
    def sim(self):
        return self.chimera.sim

    @property
    def endpoint(self):
        return self.chimera.endpoint

    @staticmethod
    def key_for(name_or_key: "str | NodeId") -> NodeId:
        """Hash a name into the key space (NodeIds pass through)."""
        if isinstance(name_or_key, NodeId):
            return name_or_key
        return NodeId.from_name(name_or_key)

    def is_owner(self, key: NodeId) -> bool:
        """True if this node is currently the root for ``key``."""
        return self.chimera.next_hop(key) is None

    # -- public client API (generators; run under sim.process / yield from) --

    def put(
        self,
        name: str,
        value: Any,
        policy: OverwritePolicy = OverwritePolicy.OVERWRITE,
        ctx=None,
    ):
        """Process: store ``value`` under ``name``; returns the Record."""
        key = self.key_for(name)
        body = {
            "key": key.hex,
            "name": name if isinstance(name, str) else "",
            "value": value,
            "policy": policy.value,
            "path": [],
        }
        self.stats.puts += 1
        tel = self.sim.telemetry
        span = (
            tel.begin(
                "kv.put", layer="kvstore", node=self.name, parent=ctx, key=key.hex
            )
            if tel is not None
            else None
        )
        try:
            reply = yield from self._put_local(body, span)
        except BaseException as exc:
            if span is not None:
                tel.fail(span, exc)
            raise
        if span is not None:
            tel.end(span, owner=reply.get("owner", ""))
        return Record.from_wire(reply["record"])

    def get(self, name: str, ctx=None):
        """Process: return the latest value stored under ``name``."""
        record = yield from self.get_record(name, ctx=ctx)
        return record.latest.value

    def invalidate_cached(self, name: "str | NodeId") -> bool:
        """Drop this node's cached copy of ``name``'s record, if any.

        Failure-triggered coherence: update pushes come from the owner
        that registered us as a cache holder, so when that owner
        crashes nobody will ever refresh the entry.  Callers that see
        evidence of staleness — e.g. a fetch that had to fail over
        because the recorded primary is unreachable — drop the entry
        so the next read re-routes to the live owner.  Returns True
        when an entry was actually dropped.
        """
        dropped = self.cache.pop(self.key_for(name).hex, None) is not None
        if dropped:
            self.stats.cache_invalidated += 1
        return dropped

    def get_record(self, name: str, ctx=None):
        """Process: return the full :class:`Record` (with version chain)."""
        key = self.key_for(name)
        started = self.sim.now
        self.stats.gets += 1
        tel = self.sim.telemetry
        span = (
            tel.begin(
                "kv.get", layer="kvstore", node=self.name, parent=ctx, key=key.hex
            )
            if tel is not None
            else None
        )
        try:
            reply = yield from self._get_local({"key": key.hex, "path": []}, span)
        except BaseException as exc:
            if span is not None:
                tel.fail(span, exc)
            raise
        self.stats.record_lookup(self.sim.now - started)
        if span is not None:
            tel.end(span, source=reply.get("source", ""))
        return Record.from_wire(reply["record"])

    def get_chain(self, name: str, ctx=None):
        """Process: all chained versions (oldest first) for ``name``."""
        record = yield from self.get_record(name, ctx=ctx)
        return [v.value for v in record.versions]

    def delete(self, name: str, ctx=None):
        """Process: remove ``name``; raises KeyNotFoundError if absent."""
        key = self.key_for(name)
        self.stats.deletes += 1
        tel = self.sim.telemetry
        span = (
            tel.begin(
                "kv.delete", layer="kvstore", node=self.name, parent=ctx, key=key.hex
            )
            if tel is not None
            else None
        )
        try:
            yield from self._delete_local({"key": key.hex, "path": []}, span)
        except BaseException as exc:
            if span is not None:
                tel.fail(span, exc)
            raise
        if span is not None:
            tel.end(span)

    def leave(self):
        """Process: hand every primary record to its new owner, then
        leave the overlay gracefully.

        Records whose transfer target is unreachable leave the overlay
        with us; that loss is counted (``stats.leave_stranded``, the
        ``kv.leave.stranded`` counter) and surfaced as an error span
        event instead of disappearing silently.
        """
        outgoing: dict[str, list[dict]] = {}
        for key_hex, record in list(self.primary.items()):
            key = NodeId.from_hex(key_hex)
            target = self._owner_excluding_self(key)
            if target is None:
                continue  # last node standing keeps its records
            outgoing.setdefault(target.name, []).append(record.wire())
        stranded = 0
        for target_name, records in outgoing.items():
            try:
                yield self.endpoint.call(
                    target_name,
                    MSG_TRANSFER,
                    {"records": records},
                    size=payload_size(records),
                )
            except (HostDownError, RpcTimeoutError, RemoteError):
                stranded += len(records)
                continue
        if stranded:
            self.stats.leave_stranded += stranded
            tel = self.sim.telemetry
            if tel is not None:
                tel.metrics.counter("kv.leave.stranded", node=self.name).inc(
                    stranded
                )
                tel.event(
                    "kv.leave.stranded",
                    layer="kvstore",
                    node=self.name,
                    status="error:RecordsStranded",
                    count=stranded,
                )
        # Our replica copies vanish with us: re-home them so keys whose
        # owner later crashes still have the promised redundancy.
        for key_hex, replica in list(self.replicas.items()):
            wire = replica.wire()
            for peer in self._replica_targets(key_hex):
                self._safe_notify(
                    peer.name,
                    MSG_REPLICA,
                    {"record": wire},
                    size=payload_size(wire),
                )
        yield from self.chimera.leave()

    # -- local entry points shared with the RPC handlers ---------------------

    def _put_local(self, body: dict, span=None):
        key = NodeId.from_hex(body["key"])
        yield self.sim.timeout(self.processing_s)
        tel = self.sim.telemetry
        hop = self.chimera.next_hop(key)
        while hop is not None:
            self.stats.forwards += 1
            fwd = (
                tel.begin(
                    "kv.forward",
                    layer="kvstore",
                    node=self.name,
                    parent=span,
                    to=hop.name,
                    op="put",
                )
                if tel is not None
                else None
            )
            next_body = {**body, "path": body["path"] + [self.name]}
            if fwd is not None:
                next_body["span"] = fwd.ctx_wire()
            try:
                reply = yield self.endpoint.call(
                    hop.name,
                    MSG_PUT,
                    next_body,
                    size=payload_size(body["value"]),
                )
            except (HostDownError, RpcTimeoutError) as exc:
                if fwd is not None:
                    tel.fail(fwd, exc)
                self.chimera._forget(hop.id)
                hop = self.chimera.next_hop(key)
                continue
            except RemoteError as exc:
                if fwd is not None:
                    tel.fail(fwd, exc)
                raise self._translate(exc) from exc
            if fwd is not None:
                tel.end(fwd)
            # Keep any cached copy coherent with the accepted write.
            if body["key"] in self.cache:
                self.cache[body["key"]] = Record.from_wire(reply["record"])
            return reply
        return self._apply_put(body)

    def _apply_put(self, body: dict) -> dict:
        key_hex = body["key"]
        policy = OverwritePolicy(body["policy"])
        record = self.primary.get(key_hex)
        if record is None:
            record = Record(key_hex=key_hex, name=body.get("name", ""))
        elif policy is OverwritePolicy.ERROR:
            raise KeyExistsError(body.get("name") or key_hex)
        record.apply(body["value"], policy, self.sim.now)
        # Inserted *after* the version is applied so a durable backend
        # journals the post-write state, not an empty shell.
        self.primary[key_hex] = record
        if self.tombstones is not None:
            self.tombstones.pop(key_hex, None)
        self._push_replicas(record)
        self._push_cache_updates(record)
        return {"record": record.wire(), "owner": self.name}

    def _get_local(self, body: dict, span=None):
        key = NodeId.from_hex(body["key"])
        key_hex = body["key"]
        yield self.sim.timeout(self.processing_s)
        hop = self.chimera.next_hop(key)
        if hop is None:
            return self._serve_as_owner(key_hex, body["path"])
        if self.cache_enabled and key_hex in self.cache:
            self.cache.move_to_end(key_hex)
            self.stats.cache_hits += 1
            return {
                "record": self.cache[key_hex].wire(),
                "owner": self.name,
                "source": "cache",
            }
        tel = self.sim.telemetry
        while hop is not None:
            self.stats.forwards += 1
            fwd = (
                tel.begin(
                    "kv.forward",
                    layer="kvstore",
                    node=self.name,
                    parent=span,
                    to=hop.name,
                    op="get",
                )
                if tel is not None
                else None
            )
            next_body = {**body, "path": body["path"] + [self.name]}
            if fwd is not None:
                next_body["span"] = fwd.ctx_wire()
            try:
                reply = yield self.endpoint.call(hop.name, MSG_GET, next_body)
            except (HostDownError, RpcTimeoutError) as exc:
                if fwd is not None:
                    tel.fail(fwd, exc)
                self.chimera._forget(hop.id)
                hop = self.chimera.next_hop(key)
                continue
            except RemoteError as exc:
                if fwd is not None:
                    tel.fail(fwd, exc)
                raise self._translate(exc) from exc
            if fwd is not None:
                tel.end(fwd, source=reply.get("source", ""))
            if self.cache_enabled and reply.get("source") != "cache":
                self._cache_insert(Record.from_wire(reply["record"]))
            return reply
        return self._serve_as_owner(key_hex, body["path"])

    def _serve_as_owner(self, key_hex: str, path: list[str]) -> dict:
        record = self.primary.get(key_hex)
        source = "primary"
        if record is None:
            replica = self.replicas.get(key_hex)
            if replica is not None:
                # The previous owner crashed; promote our replica.
                record = replica.copy()
                self.primary[key_hex] = record
                del self.replicas[key_hex]
                self._push_replicas(record)
                source = "replica"
                self.stats.served_replica += 1
        if record is None:
            raise KeyNotFoundError(key_hex)
        if source == "primary":
            self.stats.served_primary += 1
        if self.cache_enabled and path:
            holders = self.cache_holders.setdefault(key_hex, set())
            holders.update(path)
        return {"record": record.wire(), "owner": self.name, "source": source}

    def _delete_local(self, body: dict, span=None):
        key = NodeId.from_hex(body["key"])
        key_hex = body["key"]
        yield self.sim.timeout(self.processing_s)
        tel = self.sim.telemetry
        hop = self.chimera.next_hop(key)
        while hop is not None:
            self.stats.forwards += 1
            fwd = (
                tel.begin(
                    "kv.forward",
                    layer="kvstore",
                    node=self.name,
                    parent=span,
                    to=hop.name,
                    op="delete",
                )
                if tel is not None
                else None
            )
            next_body = {**body, "path": body["path"] + [self.name]}
            if fwd is not None:
                next_body["span"] = fwd.ctx_wire()
            try:
                reply = yield self.endpoint.call(hop.name, MSG_DELETE, next_body)
            except (HostDownError, RpcTimeoutError) as exc:
                if fwd is not None:
                    tel.fail(fwd, exc)
                self.chimera._forget(hop.id)
                hop = self.chimera.next_hop(key)
                continue
            except RemoteError as exc:
                if fwd is not None:
                    tel.fail(fwd, exc)
                raise self._translate(exc) from exc
            if fwd is not None:
                tel.end(fwd)
            self.cache.pop(key_hex, None)
            return reply
        record = self.primary.get(key_hex)
        if record is None:
            raise KeyNotFoundError(key_hex)
        del self.primary[key_hex]
        if self.tombstones is not None:
            self.tombstones[key_hex] = {
                "version": record.version,
                "at": self.sim.now,
            }
        self.cache.pop(key_hex, None)
        for peer in self._replica_targets(key_hex):
            self._safe_notify(peer.name, MSG_REPLICA_DELETE, {"key": key_hex})
        for holder in self.cache_holders.pop(key_hex, set()):
            self._safe_notify(holder, MSG_CACHE_INVALIDATE, {"key": key_hex})
        return {"deleted": True, "owner": self.name}

    # -- replication / caching plumbing ------------------------------------

    def _replica_targets(self, key_hex: str) -> list[PeerInfo]:
        """The peers that hold copies of a key: the nodes next-closest
        to the key after the owner.

        Ownership is "numerically closest on the ring" (either side),
        so replicas must sit with the nodes that would *become* owner
        if we crashed — not merely clockwise successors.
        """
        if self.replication_factor == 0:
            return []
        key = NodeId.from_hex(key_hex)
        return self.chimera.nearest_peers(
            key, self.replication_factor, reference=self.ring_scan_reference
        )

    def _push_replicas(self, record: Record) -> None:
        wire = record.wire()
        for peer in self._replica_targets(record.key_hex):
            self._safe_notify(
                peer.name, MSG_REPLICA, {"record": wire}, size=payload_size(wire)
            )

    def _push_cache_updates(self, record: Record) -> None:
        holders = self.cache_holders.get(record.key_hex)
        if not holders:
            return
        wire = record.wire()
        for holder in list(holders):
            self._safe_notify(
                holder, MSG_CACHE_UPDATE, {"record": wire}, size=payload_size(wire)
            )

    def _cache_insert(self, record: Record) -> None:
        self.cache[record.key_hex] = record
        self.cache.move_to_end(record.key_hex)
        while len(self.cache) > self.cache_capacity:
            self.cache.popitem(last=False)

    def _safe_notify(self, dst: str, msg_type: str, body: dict, size: int = 64) -> None:
        try:
            self.endpoint.notify(dst, msg_type, body, size=size)
        except HostDownError:
            pass

    def _owner_excluding_self(self, key: NodeId) -> Optional[PeerInfo]:
        nearest = self.chimera.nearest_peers(
            key, 1, reference=self.ring_scan_reference
        )
        return nearest[0] if nearest else None

    def _translate(self, exc: RemoteError) -> KvError:
        """Map remote handler failures back to typed client errors."""
        if "KeyNotFoundError" in exc.detail:
            return KeyNotFoundError(exc.detail.split(":", 1)[-1].strip())
        if "KeyExistsError" in exc.detail:
            return KeyExistsError(exc.detail.split(":", 1)[-1].strip())
        return KvError(exc.detail)

    # -- membership-change reactions -----------------------------------------

    def _on_node_joined(self, peer: PeerInfo) -> None:
        self.sim.process(self._redistribute_to(peer))

    def _on_node_left(self, peer: PeerInfo) -> None:
        """Repair redundancy after a departure/crash.

        Replicas we now own get promoted; and since the departed node
        may have held replica copies of our primaries, every primary is
        re-replicated to the current target set.
        """
        for key_hex, replica in list(self.replicas.items()):
            key = NodeId.from_hex(key_hex)
            if self.chimera.closest_known(key).id == self.chimera.id:
                if key_hex not in self.primary:
                    self.primary[key_hex] = replica.copy()
                del self.replicas[key_hex]
        for record in self.primary.values():
            self._push_replicas(record)

    def _redistribute_to(self, peer: PeerInfo):
        """Hand records whose root the joiner has become over to it."""
        moving = []
        for key_hex, record in list(self.primary.items()):
            key = NodeId.from_hex(key_hex)
            if self.chimera.closest_known(key).id == peer.id:
                moving.append(record.wire())
                del self.primary[key_hex]
                # Keep a replica locally: we are very likely one of the
                # new owner's neighbours.
                self.replicas[key_hex] = record
        if not moving:
            return
        try:
            yield self.endpoint.call(
                peer.name,
                MSG_TRANSFER,
                {"records": moving},
                size=payload_size(moving),
            )
        except (HostDownError, RpcTimeoutError, RemoteError):
            # The joiner vanished again; reclaim the records.
            for wire in moving:
                record = Record.from_wire(wire)
                self.primary[record.key_hex] = record
                self.replicas.pop(record.key_hex, None)

    # -- RPC handlers ---------------------------------------------------------

    def _register_handlers(self) -> None:
        ep = self.endpoint
        ep.register(MSG_PUT, self._handle_put)
        ep.register(MSG_GET, self._handle_get)
        ep.register(MSG_DELETE, self._handle_delete)
        ep.register(MSG_REPLICA, self._handle_replica)
        ep.register(MSG_REPLICA_DELETE, self._handle_replica_delete)
        ep.register(MSG_CACHE_UPDATE, self._handle_cache_update)
        ep.register(MSG_CACHE_INVALIDATE, self._handle_cache_invalidate)
        ep.register(MSG_TRANSFER, self._handle_transfer)
        ep.register(MSG_SYNC, self._handle_sync)
        ep.register(MSG_SYNC_PUSH, self._handle_sync_push)

    def _handled(self, name: str, request: Request, inner, source_key: str = ""):
        """Process: run a local entry point under a ``kv.handle_*`` span.

        The span parents from the forwarding hop's wire context (the
        ``"span"`` key carried in the request body when telemetry is
        on), keeping the cross-node span tree connected.
        """
        tel = self.sim.telemetry
        if tel is None:
            reply = yield from inner(request.body, None)
            return reply
        span = tel.begin(
            name,
            layer="kvstore",
            node=self.name,
            parent=request.body.get("span"),
            src=request.src,
        )
        try:
            reply = yield from inner(request.body, span)
        except BaseException as exc:
            tel.fail(span, exc)
            raise
        attrs = {}
        if source_key and isinstance(reply, dict) and source_key in reply:
            attrs[source_key] = reply[source_key]
        tel.end(span, **attrs)
        return reply

    def _handle_put(self, request: Request):
        reply = yield from self._handled("kv.handle_put", request, self._put_local)
        return reply

    def _handle_get(self, request: Request):
        reply = yield from self._handled(
            "kv.handle_get", request, self._get_local, source_key="source"
        )
        return reply

    def _handle_delete(self, request: Request):
        reply = yield from self._handled(
            "kv.handle_delete", request, self._delete_local
        )
        return reply

    def _handle_replica(self, request: Request) -> None:
        record = Record.from_wire(request.body["record"])
        if self.tombstones is not None:
            tomb = self.tombstones.get(record.key_hex)
            if tomb is not None:
                if tomb["at"] >= record.latest.updated_at:
                    return  # replica of a write our tombstone deleted
                self.tombstones.pop(record.key_hex, None)
        self.replicas[record.key_hex] = record

    def _handle_replica_delete(self, request: Request) -> None:
        removed = self.replicas.pop(request.body["key"], None)
        if self.tombstones is not None:
            self.tombstones[request.body["key"]] = {
                "version": removed.version if removed is not None else 0,
                "at": self.sim.now,
            }

    def _handle_cache_update(self, request: Request) -> None:
        record = Record.from_wire(request.body["record"])
        if record.key_hex in self.cache:
            self.cache[record.key_hex] = record

    def _handle_cache_invalidate(self, request: Request) -> None:
        self.cache.pop(request.body["key"], None)

    def _handle_transfer(self, request: Request) -> dict:
        count = 0
        for wire in request.body["records"]:
            record = Record.from_wire(wire)
            absorb = True
            if self.tombstones is not None:
                tomb = self.tombstones.get(record.key_hex)
                if tomb is not None:
                    if tomb["at"] >= record.latest.updated_at:
                        absorb = False  # transferred copy is pre-delete
                    else:
                        self.tombstones.pop(record.key_hex, None)
            if absorb:
                existing = self.primary.get(record.key_hex)
                if existing is None or existing.version <= record.version:
                    self.primary[record.key_hex] = record
                self.replicas.pop(record.key_hex, None)
            count += 1
        self.stats.records_received += count
        return {"accepted": count}

    # -- durability: crash recovery and anti-entropy -------------------------

    def lose_memory(self) -> None:
        """RAM loss on crash: wipe the volatile views of every table.

        The backend's :meth:`~repro.storage.IStore.crash` wipes the
        journaled tables without re-journaling the wipes; the caches
        are plain volatile state and are cleared directly.
        """
        if self.storage is None:
            self.primary.clear()
            self.replicas.clear()
        self.cache.clear()
        self.cache_holders.clear()

    def recover(self, ctx=None):
        """Process: replay the durable backend into the live tables.

        Charges the backend's replay cost through the event kernel and
        returns the :class:`repro.storage.RecoveryReport`.  Replays
        *every* table on the shared backend (vstore bin manifests
        included), so call it once per device, before rejoining the
        overlay; follow with :meth:`sync_with_peers` once joined.
        """
        if self.storage is None:
            raise KvError("recover() requires a storage backend")
        tel = self.sim.telemetry
        span = (
            tel.begin("kv.wal.replay", layer="kvstore", node=self.name, parent=ctx)
            if tel is not None
            else None
        )
        report = self.storage.replay()
        cost = self.storage.replay_cost_s(report)
        if cost > 0:
            yield self.sim.timeout(cost)
        if span is not None:
            tel.end(
                span,
                records=report.records,
                ops=report.ops_replayed,
                bytes=round(report.bytes_replayed, 1),
                cost_s=round(cost, 6),
            )
        return report

    def sync_with_peers(self, fanout: Optional[int] = None, ctx=None):
        """Process: one anti-entropy round with our ring neighbours.

        Exchanges per-key digests with the ``fanout`` nodes nearest our
        own id (the peers that replicate for us and that we replicate
        for): pulls records written while we were down, pushes records
        only we still hold, and applies tombstones for keys deleted in
        our absence.  Winners are deterministic (see
        :mod:`repro.kvstore.sync`).  Returns a summary dict.
        """
        summary = {"peers": 0, "pulled": 0, "pushed": 0, "deleted": 0}
        if self.storage is None:
            return summary
        if fanout is None:
            fanout = max(1, self.replication_factor + 1)
        tel = self.sim.telemetry
        span = (
            tel.begin(
                "kv.antientropy",
                layer="kvstore",
                node=self.name,
                parent=ctx,
                fanout=fanout,
            )
            if tel is not None
            else None
        )
        digests: dict[str, dict] = {}
        for key_hex in sorted(set(self.primary) | set(self.replicas)):
            record = self.primary.get(key_hex) or self.replicas.get(key_hex)
            digests[key_hex] = record_digest(record)
        if self.tombstones is not None:
            for key_hex in sorted(self.tombstones):
                digests[key_hex] = tombstone_digest(self.tombstones[key_hex])
        peers = self.chimera.nearest_peers(
            self.chimera.id, fanout, reference=self.ring_scan_reference
        )
        for peer in peers:
            body = {"requester": self.name, "digests": digests}
            if span is not None:
                body["span"] = span.ctx_wire()
            try:
                reply = yield self.endpoint.call(
                    peer.name, MSG_SYNC, body, size=payload_size(digests)
                )
            except (HostDownError, RpcTimeoutError, RemoteError):
                continue
            summary["peers"] += 1
            for wire in reply.get("records", ()):
                if self._absorb_sync_record(Record.from_wire(wire)):
                    summary["pulled"] += 1
            for key_hex, tomb in sorted(reply.get("tombstoned", {}).items()):
                if self._absorb_tombstone(key_hex, tomb):
                    summary["deleted"] += 1
            push_records: list[dict] = []
            push_tombs: dict[str, dict] = {}
            for key_hex in reply.get("want", ()):
                record = self.primary.get(key_hex) or self.replicas.get(key_hex)
                if record is not None:
                    push_records.append(record.wire())
                elif self.tombstones is not None and key_hex in self.tombstones:
                    push_tombs[key_hex] = dict(self.tombstones[key_hex])
            if push_records or push_tombs:
                push_body = {
                    "records": push_records,
                    "tombstones": push_tombs,
                }
                if span is not None:
                    push_body["span"] = span.ctx_wire()
                try:
                    yield self.endpoint.call(
                        peer.name,
                        MSG_SYNC_PUSH,
                        push_body,
                        size=payload_size(push_records),
                    )
                    summary["pushed"] += len(push_records) + len(push_tombs)
                except (HostDownError, RpcTimeoutError, RemoteError):
                    continue
        if tel is not None:
            for metric in ("pulled", "pushed", "deleted"):
                if summary[metric]:
                    tel.metrics.counter(f"kv.sync.{metric}", node=self.name).inc(
                        summary[metric]
                    )
        if span is not None:
            tel.end(span, **summary)
        return summary

    def _handle_sync(self, request: Request) -> dict:
        """Peer side of a digest exchange (synchronous — no timing
        impact on existing traffic).

        Replies with records the requester is missing or holds stale,
        a ``want`` list of keys where the requester's copy wins, and
        tombstones for keys it should drop.  Also volunteers primaries
        the requester *should* replicate but did not even mention —
        the writes it missed entirely while down.
        """
        body = request.body
        requester = body["requester"]
        digests = body["digests"]
        records_out: list[dict] = []
        want: list[str] = []
        tombstoned: dict[str, dict] = {}
        for key_hex in sorted(digests):
            remote = digests[key_hex]
            local = self.primary.get(key_hex) or self.replicas.get(key_hex)
            local_tomb = (
                self.tombstones.get(key_hex) if self.tombstones is not None else None
            )
            if remote.get("t"):
                # The requester holds a tombstone for this key.
                if local is not None and tombstone_covers(
                    remote, record_digest(local)
                ):
                    self._drop_local(key_hex)
                    local = None
                if local is not None:
                    records_out.append(local.wire())  # write post-dates delete
                elif self.tombstones is not None and (
                    local_tomb is None or local_tomb["at"] < remote["u"]
                ):
                    self.tombstones[key_hex] = {
                        "version": remote.get("v", 0),
                        "at": remote["u"],
                    }
                continue
            if local_tomb is not None and tombstone_covers(
                tombstone_digest(local_tomb), remote
            ):
                tombstoned[key_hex] = dict(local_tomb)
                continue
            if local is None:
                want.append(key_hex)
            elif record_beats_digest(local, remote):
                records_out.append(local.wire())
            elif digest_beats(remote, record_digest(local)):
                want.append(key_hex)
        # Primaries the requester should replicate but did not mention.
        for key_hex in sorted(self.primary):
            if key_hex in digests:
                continue
            if any(p.name == requester for p in self._replica_targets(key_hex)):
                records_out.append(self.primary[key_hex].wire())
        # Replicas whose *owner* is the requester: after an owner
        # crashes and rejoins empty-handed, its records survive only as
        # replica copies on nodes like us — hand them back, or they
        # stay orphaned where no lookup will ever route.
        for key_hex in sorted(self.replicas):
            if key_hex in digests:
                continue
            owner = self.chimera.closest_known(
                NodeId.from_hex(key_hex), reference=self.ring_scan_reference
            )
            if owner.name == requester:
                records_out.append(self.replicas[key_hex].wire())
        return {"records": records_out, "want": want, "tombstoned": tombstoned}

    def _handle_sync_push(self, request: Request) -> dict:
        absorbed = 0
        for wire in request.body.get("records", ()):
            if self._absorb_sync_record(Record.from_wire(wire)):
                absorbed += 1
        for key_hex, tomb in sorted(request.body.get("tombstones", {}).items()):
            if self._absorb_tombstone(key_hex, tomb):
                absorbed += 1
        return {"absorbed": absorbed}

    def _absorb_sync_record(self, record: Record) -> bool:
        """Accept a peer's record if it beats what we hold; file it as
        primary or replica according to our current ring position."""
        key_hex = record.key_hex
        if self.tombstones is not None:
            tomb = self.tombstones.get(key_hex)
            if tomb is not None:
                if tomb["at"] >= record.latest.updated_at:
                    return False
                self.tombstones.pop(key_hex, None)
        local = self.primary.get(key_hex) or self.replicas.get(key_hex)
        if local is not None and not record_beats_digest(
            record, record_digest(local)
        ):
            return False
        if self.is_owner(NodeId.from_hex(key_hex)):
            self.primary[key_hex] = record
            self.replicas.pop(key_hex, None)
        else:
            self.replicas[key_hex] = record
            # Demote any stale primary copy: the ring says someone
            # else owns this key now.
            self.primary.pop(key_hex, None)
        return True

    def _absorb_tombstone(self, key_hex: str, tomb: dict) -> bool:
        """Apply a peer's tombstone; returns True if a live copy died."""
        local = self.primary.get(key_hex) or self.replicas.get(key_hex)
        if local is not None and tomb["at"] < local.latest.updated_at:
            return False  # our copy post-dates the delete
        dropped = local is not None
        self._drop_local(key_hex)
        if self.tombstones is not None:
            existing = self.tombstones.get(key_hex)
            if existing is None or existing["at"] < tomb["at"]:
                self.tombstones[key_hex] = {
                    "version": tomb.get("version", 0),
                    "at": tomb["at"],
                }
        return dropped

    def _drop_local(self, key_hex: str) -> None:
        self.primary.pop(key_hex, None)
        self.replicas.pop(key_hex, None)
        self.cache.pop(key_hex, None)
