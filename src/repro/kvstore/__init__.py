"""DHT-based key-value store: the VStore++ metadata layer.

Public surface:

* :class:`DhtKeyValueStore` — per-node store instance.
* :class:`OverwritePolicy`, :class:`Record`, :class:`VersionedValue` —
  the value model.
* :class:`KvStats` — per-node operation counters.
* Errors: :class:`KvError`, :class:`KeyNotFoundError`,
  :class:`KeyExistsError`.
"""

from repro.kvstore.errors import KeyExistsError, KeyNotFoundError, KvError
from repro.kvstore.records import (
    OverwritePolicy,
    Record,
    VersionedValue,
    payload_size,
)
from repro.kvstore.store import DhtKeyValueStore, KvStats

__all__ = [
    "DhtKeyValueStore",
    "KvStats",
    "OverwritePolicy",
    "Record",
    "VersionedValue",
    "payload_size",
    "KvError",
    "KeyNotFoundError",
    "KeyExistsError",
]
