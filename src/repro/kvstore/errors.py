"""Exception types for the DHT key-value store."""

from __future__ import annotations


class KvError(Exception):
    """Base class for key-value store errors."""


class KeyNotFoundError(KvError):
    """The requested key does not exist anywhere in the store."""

    def __init__(self, key: str) -> None:
        super().__init__(f"key {key!r} not found")
        self.key = key


class KeyExistsError(KvError):
    """A put with OverwritePolicy.ERROR hit an existing key.

    The paper: updates "have an overwrite policy value that determines
    if the metadata needs to be overwritten, if newer version of
    metadata is to be added by chaining, or if an error should be
    returned".
    """

    def __init__(self, key: str) -> None:
        super().__init__(f"key {key!r} already exists")
        self.key = key
