"""Anti-entropy comparison helpers: digests and deterministic winners.

A recovered node and its replica holders reconcile by exchanging
*digests* — compact ``{"v": version, "u": updated_at, "h": hash}``
summaries of each record (tombstones carry ``{"t": True, "u": at}``).
Winner selection must be deterministic under both the fastpath and the
reference kernels, so ties are broken by a content hash of the
canonical JSON serialization, never by arrival order:

* live vs live — higher version wins, then later ``updated_at``, then
  the lexicographically larger content hash;
* tombstone vs live — the tombstone wins iff it was recorded at or
  after the record's latest write (version numbers restart when a key
  is re-created after a delete, so versions cannot order deletes
  against re-puts; simulated time can, and is globally consistent).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.kvstore.records import Record

__all__ = [
    "content_hash",
    "record_digest",
    "tombstone_digest",
    "digest_beats",
    "record_beats_digest",
    "tombstone_covers",
]


def content_hash(value: Any) -> str:
    """Stable short hash of a record value (canonical JSON)."""
    try:
        blob = json.dumps(value, sort_keys=True, default=str)
    except (TypeError, ValueError):
        blob = repr(value)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def record_digest(record: Record) -> dict:
    """Digest of a live record's latest version."""
    latest = record.latest
    return {
        "v": latest.version,
        "u": latest.updated_at,
        "h": content_hash(latest.value),
    }


def tombstone_digest(tomb: dict) -> dict:
    """Digest of a tombstone entry (``{"version": v, "at": t}``)."""
    return {"t": True, "v": tomb.get("version", 0), "u": tomb["at"]}


def _rank(digest: dict) -> tuple:
    return (digest.get("v", 0), digest.get("u", 0.0), digest.get("h", ""))


def digest_beats(a: dict, b: dict) -> bool:
    """Does live digest ``a`` strictly beat live digest ``b``?"""
    return _rank(a) > _rank(b)


def record_beats_digest(record: Record, digest: dict) -> bool:
    """Does a local live record strictly beat a remote digest?"""
    return digest_beats(record_digest(record), digest)


def tombstone_covers(tomb_digest: dict, live_digest: dict) -> bool:
    """Does a tombstone (``{"u": at}``) delete this live version?

    True when the delete was recorded at or after the record's latest
    write.  ``>=`` (not ``>``): a delete observed at the same instant
    as the write it removed must still win, or replaying both sides
    would resurrect the record.
    """
    return tomb_digest.get("u", 0.0) >= live_digest.get("u", 0.0)
