"""Value model for the metadata key-value store.

Every entry in the store is a :class:`Record` holding one or more
:class:`VersionedValue` items.  A record with multiple versions is a
*chain* (OverwritePolicy.CHAIN appends instead of replacing); the latest
version is what plain ``get`` returns.

Values are JSON-serializable Python data; the store serializes them to
estimate wire sizes, matching the paper's "serialized data containing
object location and metadata, such as tags, access information".
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

__all__ = ["OverwritePolicy", "VersionedValue", "Record", "payload_size"]


class OverwritePolicy(Enum):
    """What a put does when the key already exists (Section III-A)."""

    OVERWRITE = "overwrite"
    CHAIN = "chain"
    ERROR = "error"


def payload_size(value: Any, overhead: int = 64) -> int:
    """Approximate wire size of a JSON-serializable value, bytes."""
    try:
        return len(json.dumps(value, default=str)) + overhead
    except (TypeError, ValueError):
        return overhead + 256


@dataclass
class VersionedValue:
    """One version of a record's value."""

    value: Any
    version: int
    updated_at: float

    def wire(self) -> dict:
        return {
            "value": self.value,
            "version": self.version,
            "updated_at": self.updated_at,
        }

    @classmethod
    def from_wire(cls, data: dict) -> "VersionedValue":
        return cls(data["value"], data["version"], data["updated_at"])


@dataclass
class Record:
    """A stored key with its version chain.

    ``name`` preserves the human-readable key (object/service name or
    node address) when known; the 40-bit hash is the routing key.
    """

    key_hex: str
    name: str = ""
    versions: list[VersionedValue] = field(default_factory=list)

    @property
    def latest(self) -> VersionedValue:
        if not self.versions:
            raise LookupError(f"record {self.key_hex} has no versions")
        return self.versions[-1]

    @property
    def version(self) -> int:
        return self.latest.version

    def apply(self, value: Any, policy: OverwritePolicy, now: float) -> None:
        """Apply a put under ``policy``; caller handles KeyExists."""
        next_version = self.versions[-1].version + 1 if self.versions else 1
        entry = VersionedValue(value, next_version, now)
        if policy is OverwritePolicy.CHAIN:
            self.versions.append(entry)
        else:
            self.versions = [entry]

    def wire(self) -> dict:
        return {
            "key": self.key_hex,
            "name": self.name,
            "versions": [v.wire() for v in self.versions],
        }

    @classmethod
    def from_wire(cls, data: dict) -> "Record":
        return cls(
            key_hex=data["key"],
            name=data.get("name", ""),
            versions=[VersionedValue.from_wire(v) for v in data["versions"]],
        )

    def copy(self) -> "Record":
        return Record.from_wire(self.wire())
