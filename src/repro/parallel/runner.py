"""The deterministic shard runner: fan jobs across a process pool.

A :class:`Job` names a module-level function (``"package.module:fn"``)
plus JSON-able keyword arguments; :func:`run_jobs` executes a batch of
them and returns :class:`JobResult` objects **in submission order**, no
matter how the pool interleaves completions.  Three properties the
whole harness leans on:

* **Determinism** — a job's result depends only on (function, params),
  never on which worker ran it or when.  The runner therefore memoizes
  duplicate jobs: two jobs with the same identity are computed once and
  fanned out (timing repeats of a deterministic simulation are the
  common case).  ``run_jobs(jobs, workers=k)`` is bit-for-bit identical
  for every ``k``, including the inline ``workers=0`` path.
* **Failure isolation** — a job that raises reports ``ok=False`` with
  the repr and traceback; the pool and every other job keep going.
  Pass ``on_error="raise"`` to turn any failure into a
  :class:`JobFailure` after the whole batch has run.
* **Simplicity of the unit** — a job runs a *complete* simulation in a
  worker process.  Workers share nothing, so the simulator itself needs
  no locks and stays single-threaded-fast.
"""

from __future__ import annotations

import importlib
import json
import multiprocessing
import time
import traceback as traceback_module
from dataclasses import dataclass
from typing import Any, Optional, Sequence

__all__ = ["Job", "JobResult", "JobFailure", "run_jobs", "execute_job"]


@dataclass(frozen=True)
class Job:
    """One schedulable unit: a function reference and its arguments.

    ``fn`` is a ``"package.module:function"`` reference (resolved in the
    worker, so the job itself pickles cheaply); ``params`` is the
    canonical, sorted tuple of keyword-argument pairs.  ``key`` is the
    job's stable identity — equal keys mean provably equal results.
    """

    fn: str
    params: tuple = ()

    @classmethod
    def make(cls, fn: str, params: Optional[dict] = None) -> "Job":
        if ":" not in fn:
            raise ValueError(
                f"fn must be a 'module:function' reference, got {fn!r}"
            )
        items = sorted((params or {}).items())
        for key, value in items:
            # Fail at submission, not inside a worker: params must be
            # canonical JSON-able values for the key to mean anything.
            json.dumps({key: value})
        return cls(fn=fn, params=tuple(items))

    @property
    def kwargs(self) -> dict:
        return dict(self.params)

    @property
    def key(self) -> str:
        return f"{self.fn}{json.dumps(self.kwargs, sort_keys=True)}"


@dataclass
class JobResult:
    """Outcome of one job, tagged with its submission index."""

    index: int
    key: str
    ok: bool
    value: Any = None
    error: Optional[str] = None
    traceback: Optional[str] = None
    #: Worker-side wall clock; excluded from canonical/deterministic
    #: comparisons (see :func:`repro.parallel.aggregate.canonical_results`).
    wall_s: float = 0.0


class JobFailure(RuntimeError):
    """Raised by ``run_jobs(on_error='raise')`` when any job failed.

    Carries the full result list (``.results``) so a caller can still
    salvage the jobs that succeeded.
    """

    def __init__(self, message: str, results: list) -> None:
        super().__init__(message)
        self.results = results


def _resolve(fn_ref: str):
    module_name, _, fn_name = fn_ref.partition(":")
    module = importlib.import_module(module_name)
    try:
        return getattr(module, fn_name)
    except AttributeError as exc:
        raise ValueError(f"{module_name} has no function {fn_name!r}") from exc


def execute_job(job: Job) -> JobResult:
    """Run one job in this process (the unit the pool workers run).

    Never raises for a job-level failure: the exception is captured so
    one bad sweep point cannot take down a worker or the batch.
    """
    started = time.perf_counter()
    try:
        value = _resolve(job.fn)(**job.kwargs)
    except Exception as exc:
        return JobResult(
            index=-1,
            key=job.key,
            ok=False,
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback_module.format_exc(),
            wall_s=time.perf_counter() - started,
        )
    return JobResult(
        index=-1,
        key=job.key,
        ok=True,
        value=value,
        wall_s=time.perf_counter() - started,
    )


def _execute_indexed(indexed_job: "tuple[int, Job]") -> "tuple[int, JobResult]":
    position, job = indexed_job
    return position, execute_job(job)


def _pool_context():
    """Prefer fork (cheap, inherits imports); fall back to spawn."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def run_jobs(
    jobs: Sequence[Job],
    workers: Optional[int] = None,
    dedup: bool = True,
    on_error: str = "collect",
) -> list[JobResult]:
    """Execute ``jobs`` and return results in submission order.

    ``workers``:
        ``None`` — one worker per CPU (capped by the distinct job
        count); ``0`` or ``1`` — run inline in this process (the serial
        reference path, no pool, still deduplicated); ``>= 2`` — a
        ``multiprocessing`` pool of that many workers.
    ``dedup``:
        Compute each distinct job identity once and fan the result out
        to every duplicate (sound because jobs are deterministic
        functions of their params).  Disable to force every submission
        to execute — the naive serial harness the benchmarks compare
        against.
    ``on_error``:
        ``"collect"`` (default) returns failed jobs as ``ok=False``
        results; ``"raise"`` raises :class:`JobFailure` after the batch
        completes if anything failed.
    """
    if on_error not in ("collect", "raise"):
        raise ValueError(f"on_error must be 'collect' or 'raise', got {on_error!r}")
    jobs = list(jobs)
    if workers is None:
        workers = multiprocessing.cpu_count()

    # Distinct identities, in first-submission order (determinism: the
    # execution set never depends on pool scheduling).
    if dedup:
        distinct: dict[str, Job] = {}
        for job in jobs:
            distinct.setdefault(job.key, job)
        work = list(distinct.values())
    else:
        work = jobs

    if workers <= 1 or len(work) <= 1:
        executed = [execute_job(job) for job in work]
    else:
        ctx = _pool_context()
        n_workers = min(workers, len(work))
        chunksize = max(1, len(work) // (n_workers * 4))
        executed = [None] * len(work)
        with ctx.Pool(processes=n_workers) as pool:
            for position, result in pool.imap_unordered(
                _execute_indexed, list(enumerate(work)), chunksize=chunksize
            ):
                executed[position] = result

    if dedup:
        by_key = {result.key: result for result in executed}
        results = []
        for index, job in enumerate(jobs):
            shared = by_key[job.key]
            results.append(
                JobResult(
                    index=index,
                    key=shared.key,
                    ok=shared.ok,
                    value=shared.value,
                    error=shared.error,
                    traceback=shared.traceback,
                    wall_s=shared.wall_s,
                )
            )
    else:
        results = []
        for index, (job, result) in enumerate(zip(jobs, executed)):
            result.index = index
            results.append(result)

    if on_error == "raise":
        failed = [r for r in results if not r.ok]
        if failed:
            summary = "; ".join(
                f"job[{r.index}] {r.key}: {r.error}" for r in failed[:5]
            )
            raise JobFailure(
                f"{len(failed)}/{len(results)} jobs failed: {summary}", results
            )
    return results
