"""Paper-experiment job functions and sweep definitions.

Every function here that a :class:`~repro.parallel.runner.Job` names is
a *complete, independent* simulation: it builds its own deployment from
a seed, runs one sweep point, and returns plain JSON-able metrics.
That independence is what lets ``run_jobs`` fan a whole evaluation
(Table I sweep points × repeats, Figure 5 replications, lookup storms,
chaos trials, decision-latency points) across a process pool while
staying bit-for-bit deterministic at any worker count.

``python -m repro sweep`` drives :func:`run_sweep`; the perf harness
(``benchmarks/perf/parallel_bench.py``) and the paper benchmarks
(``benchmarks/test_table1_fetch_costs.py``,
``benchmarks/test_fig5_optimal_object_size.py``) reuse the same job
functions, so the parallel harness measures exactly the simulations the
figures report.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Sequence

from repro.cluster import ChaosSchedule, Cloud4Home, ClusterConfig
from repro.net import Link, Network, Route
from repro.overlay import ChimeraNode, NodeId
from repro.parallel.aggregate import aggregate_repeats, canonical_results
from repro.parallel.runner import Job, run_jobs
from repro.parallel.seeds import derive_seed
from repro.sim import RandomSource, Simulator

__all__ = [
    "TABLE1_SIZES_MB",
    "FIG5_SIZES_MB",
    "table1_fetch",
    "table1_point",
    "fig5_access_mix",
    "fig5_point",
    "storm_point",
    "chaos_trial",
    "decision_point",
    "table1_jobs",
    "fig5_jobs",
    "storm_jobs",
    "chaos_jobs",
    "decision_jobs",
    "run_sweep",
    "EXPERIMENTS",
]

MB = 1024 * 1024

TABLE1_SIZES_MB = [1, 2, 5, 10, 20, 50, 100]
FIG5_SIZES_MB = [5, 10, 20, 30, 50, 100]
FIG5_TOTAL_MB_METHOD1 = 260.0
FIG5_FILES_METHOD2 = 5
FIG5_STORE_FRACTION = 0.6
DECISION_KS = [2, 3, 4, 5, 6]


# -- job functions (module-level: pool workers resolve them by name) ------


def table1_fetch(size_mb: int, seed: int):
    """One Table I point; returns the raw :class:`FetchResult`.

    The exact scenario the paper benchmark and the fastpath goldens
    measure: store on the owner, fetch from a third device.
    """
    c4h = Cloud4Home(ClusterConfig(seed=seed))
    c4h.start(monitors=False)
    owner = c4h.devices[0]
    reader = c4h.devices[2]
    name = f"table1-{size_mb}.bin"
    c4h.run(owner.client.store_file(name, float(size_mb)))
    fetch = c4h.run(reader.vstore.fetch_object(name))
    assert fetch.served_from == owner.name
    return fetch


def table1_point(size_mb: int, seed: int) -> dict:
    """Job: Table I fetch cost breakdown as a metric dict."""
    fetch = table1_fetch(size_mb, seed)
    return {
        "total_s": fetch.total_s,
        "dht_lookup_s": fetch.dht_lookup_s,
        "inter_node_s": fetch.inter_node_s,
        "inter_domain_s": fetch.inter_domain_s,
        "served_from": fetch.served_from,
    }


def fig5_access_mix(size_mb: int, n_files: int, seed: int) -> float:
    """Sequential remote-cloud interactions; returns MB/s aggregate.

    The Figure 5 access mix (modified eDonkey trace: 60 % store / 40 %
    fetch against S3).  Moved here from the benchmark file so the
    parallel harness and the pytest benchmark run the same code.
    """
    c4h = Cloud4Home(ClusterConfig(seed=seed))
    c4h.start(monitors=False)
    rng = RandomSource(seed).fork("fig5")
    s3 = c4h.s3
    names = [f"obj-{size_mb}-{i}" for i in range(n_files)]
    # Seed the bucket so fetches always have something to download.
    for name in names:
        c4h.run(s3.put_object("netbook0", name, size_mb * MB))

    t0 = c4h.sim.now
    moved_mb = 0.0
    n_ops = max(n_files, 8)
    clients = [d.name for d in c4h.devices]
    for _ in range(n_ops):
        name = rng.choice(names)
        client = rng.choice(clients)
        if rng.random() < FIG5_STORE_FRACTION:
            c4h.run(s3.put_object(client, name, size_mb * MB))
        else:
            c4h.run(s3.get_object(client, name))
        moved_mb += size_mb
    return moved_mb / (c4h.sim.now - t0)


def fig5_point(size_mb: int, n_files: int, seed: int) -> dict:
    """Job: one Figure 5 point as a metric dict."""
    return {"mb_s": fig5_access_mix(size_mb, n_files, seed)}


def _build_storm_overlay(n_nodes: int, seed: int):
    """A fully joined overlay on one home LAN (the conftest topology)."""
    sim = Simulator()
    net = Network(sim, RandomSource(seed))
    link = Link(sim, bandwidth=95.5e6 / 8, name="lan")
    net.connect_groups("home", "home", Route(link, base_latency=0.001))
    hosts = [net.add_host(f"node{i:02d}", group="home") for i in range(n_nodes)]
    nodes = [ChimeraNode(net, host, leaf_size=4) for host in hosts]
    nodes[0].start()
    for node in nodes[1:]:
        proc = sim.process(node.join(bootstrap=nodes[0].name))
        sim.run(until=proc)
        sim.run()  # drain join announcements before the next join
    return sim, nodes


def storm_point(n_nodes: int, n_lookups: int, seed: int) -> dict:
    """Job: a DHT lookup storm; returns a digest of the full trace.

    The owner sequence and final simulated time pin routing behaviour
    across workers without shipping the whole trace between processes.
    """
    sim, nodes = _build_storm_overlay(n_nodes, seed)
    digest = hashlib.sha256()
    for i in range(n_lookups):
        key = NodeId.from_name(f"storm-{seed}-{i}")
        origin = nodes[i % len(nodes)]
        owner = sim.run(until=sim.process(origin.resolve(key)))
        digest.update(f"{key.hex}>{owner.name};".encode())
    return {
        "n_nodes": n_nodes,
        "n_lookups": n_lookups,
        "final_t": sim.now,
        "owners_sha256": digest.hexdigest(),
    }


def chaos_trial(seed: int, n_ops: int = 10) -> dict:
    """Job: store/fetch traffic while a device crashes and revives.

    Operations that hit the crashed device (placement on it, fetches of
    objects it held) count as failures; the trial reports the split and
    the mean successful fetch latency.
    """
    c4h = Cloud4Home(ClusterConfig(seed=seed))
    c4h.start(monitors=False)
    schedule = (
        ChaosSchedule(c4h)
        .crash(8.0, "netbook3")
        .revive(40.0, "netbook3", bootstrap="netbook0")
    )
    schedule.start()
    rng = RandomSource(seed).fork("chaos-ops")
    clients = [d for d in c4h.devices if d.name != "netbook3"]
    completed = 0
    failures: list[str] = []
    fetch_times: list[float] = []
    for i in range(n_ops):
        writer = rng.choice(clients)
        reader = rng.choice(clients)
        name = f"chaos-{i}.bin"
        size_mb = 1.0 + 4.0 * rng.random()
        try:
            c4h.run(writer.client.store_file(name, size_mb))
            fetch = c4h.run(reader.client.fetch_object(name))
            fetch_times.append(fetch.total_s)
            completed += 1
        except Exception as exc:
            failures.append(type(exc).__name__)
        c4h.sim.run(until=c4h.sim.now + 5.0)
    return {
        "n_ops": n_ops,
        "completed": completed,
        "failed": len(failures),
        "failure_kinds": sorted(set(failures)),
        "mean_fetch_s": (
            sum(fetch_times) / len(fetch_times) if fetch_times else 0.0
        ),
        "chaos_events": len(schedule.events),
    }


def decision_point(k: int, parallel: bool, seed: int) -> dict:
    """Job: simulated latency of one k-candidate placement decision."""
    c4h = Cloud4Home(ClusterConfig(seed=seed, parallel_decision=parallel))
    c4h.start(monitors=False)
    engine = c4h.devices[0].decision
    among = [d.name for d in c4h.devices[:k]]
    t0 = c4h.sim.now
    ranked = c4h.run(engine.decide(among=among))
    return {
        "k": k,
        "parallel": parallel,
        "latency_s": c4h.sim.now - t0,
        "ranking": [c.node for c in ranked],
    }


# -- sweep builders -------------------------------------------------------


def table1_jobs(
    sizes: Optional[Sequence[int]] = None,
    repeats: int = 1,
    root_seed: int = 0,
    paper_seeds: bool = True,
) -> list[Job]:
    """The Table I sweep: sizes × repeats.

    With ``paper_seeds`` (default) every repeat of a size uses the
    paper benchmark's fixed seed (``300 + size``) — repeats are timing
    repeats of identical deterministic jobs, which the runner computes
    once.  With ``paper_seeds=False`` each repeat gets its own derived
    seed and becomes a statistical replication.
    """
    jobs = []
    for rep in range(repeats):
        for size in sizes if sizes is not None else TABLE1_SIZES_MB:
            seed = (
                300 + size
                if paper_seeds
                else derive_seed(root_seed, "table1", size, rep)
            )
            jobs.append(
                Job.make(
                    "repro.parallel.sweeps:table1_point",
                    {"size_mb": size, "seed": seed},
                )
            )
    return jobs


def fig5_jobs(
    sizes: Optional[Sequence[int]] = None,
    repeats: int = 1,
    root_seed: int = 0,
    paper_seeds: bool = True,
) -> list[Job]:
    """The Figure 5 sweep: both methods × sizes × repeats."""
    jobs = []
    for rep in range(repeats):
        for size in sizes if sizes is not None else FIG5_SIZES_MB:
            n1 = max(2, round(FIG5_TOTAL_MB_METHOD1 / size))
            for method, n_files, paper_seed in (
                (1, n1, 500 + size),
                (2, FIG5_FILES_METHOD2, 700 + size),
            ):
                seed = (
                    paper_seed
                    if paper_seeds
                    else derive_seed(root_seed, "fig5", method, size, rep)
                )
                jobs.append(
                    Job.make(
                        "repro.parallel.sweeps:fig5_point",
                        {"size_mb": size, "n_files": n_files, "seed": seed},
                    )
                )
    return jobs


def storm_jobs(
    n_nodes: int = 24, n_lookups: int = 120, trials: int = 2, root_seed: int = 0
) -> list[Job]:
    return [
        Job.make(
            "repro.parallel.sweeps:storm_point",
            {
                "n_nodes": n_nodes,
                "n_lookups": n_lookups,
                "seed": derive_seed(root_seed, "storm", trial),
            },
        )
        for trial in range(trials)
    ]


def chaos_jobs(trials: int = 3, n_ops: int = 10, root_seed: int = 0) -> list[Job]:
    return [
        Job.make(
            "repro.parallel.sweeps:chaos_trial",
            {"seed": derive_seed(root_seed, "chaos", trial), "n_ops": n_ops},
        )
        for trial in range(trials)
    ]


def decision_jobs(
    ks: Optional[Sequence[int]] = None, root_seed: int = 0
) -> list[Job]:
    jobs = []
    for k in ks if ks is not None else DECISION_KS:
        for parallel in (False, True):
            jobs.append(
                Job.make(
                    "repro.parallel.sweeps:decision_point",
                    {
                        "k": k,
                        "parallel": parallel,
                        "seed": derive_seed(root_seed, "decision", k),
                    },
                )
            )
    return jobs


# -- sweep execution and aggregation --------------------------------------


def _value_or_error(result) -> dict:
    if result.ok:
        return result.value
    return {"error": result.error}


def _run_table1(workers, repeats, root_seed, smoke):
    sizes = [1, 10] if smoke else TABLE1_SIZES_MB
    jobs = table1_jobs(sizes, repeats=repeats, root_seed=root_seed)
    results = run_jobs(jobs, workers=workers)
    per_size: dict[str, list] = {str(size): [] for size in sizes}
    for job_index, result in enumerate(results):
        size = sizes[job_index % len(sizes)]
        per_size[str(size)].append(_value_or_error(result))
    return jobs, results, {
        "per_size": {
            size: aggregate_repeats(values) for size, values in per_size.items()
        }
    }


def _run_fig5(workers, repeats, root_seed, smoke):
    sizes = [5, 20] if smoke else FIG5_SIZES_MB
    jobs = fig5_jobs(sizes, repeats=repeats, root_seed=root_seed)
    results = run_jobs(jobs, workers=workers)
    methods: dict[str, dict[str, list]] = {"method1": {}, "method2": {}}
    for job_index, result in enumerate(results):
        point = job_index % (len(sizes) * 2)
        size = sizes[point // 2]
        method = "method1" if point % 2 == 0 else "method2"
        methods[method].setdefault(str(size), []).append(_value_or_error(result))
    return jobs, results, {
        method: {size: aggregate_repeats(vals) for size, vals in sizes_map.items()}
        for method, sizes_map in methods.items()
    }


def _run_storm(workers, repeats, root_seed, smoke):
    jobs = storm_jobs(
        n_nodes=8 if smoke else 24,
        n_lookups=20 if smoke else 120,
        trials=max(1, repeats),
        root_seed=root_seed,
    )
    results = run_jobs(jobs, workers=workers)
    return jobs, results, {"trials": [_value_or_error(r) for r in results]}


def _run_chaos(workers, repeats, root_seed, smoke):
    jobs = chaos_jobs(
        trials=max(1, repeats), n_ops=4 if smoke else 10, root_seed=root_seed
    )
    results = run_jobs(jobs, workers=workers)
    trials = [_value_or_error(r) for r in results]
    ok_trials = [r.value for r in results if r.ok]
    summary = aggregate_repeats(ok_trials) if ok_trials else {}
    return jobs, results, {"trials": trials, "summary": summary}


def _run_decision(workers, repeats, root_seed, smoke):
    ks = [2, 3] if smoke else DECISION_KS
    jobs = decision_jobs(ks, root_seed=root_seed)
    results = run_jobs(jobs, workers=workers)
    per_k: dict[str, dict] = {}
    for job_index, result in enumerate(results):
        k = ks[job_index // 2]
        mode = "serial" if job_index % 2 == 0 else "parallel"
        per_k.setdefault(str(k), {})[mode] = _value_or_error(result)
    for entry in per_k.values():
        serial = entry.get("serial", {}).get("latency_s")
        parallel = entry.get("parallel", {}).get("latency_s")
        if serial and parallel:
            entry["speedup_simulated"] = serial / parallel
    return jobs, results, {"per_k": per_k}


EXPERIMENTS = {
    "table1": _run_table1,
    "fig5": _run_fig5,
    "storm": _run_storm,
    "chaos": _run_chaos,
    "decision": _run_decision,
}


def run_sweep(
    experiment: str,
    workers: int = 0,
    repeats: int = 1,
    root_seed: int = 0,
    smoke: bool = False,
    verify: bool = False,
) -> dict:
    """Run one named sweep (or ``"all"``) and return its payload.

    ``payload["results"]`` is the deterministic section: its canonical
    JSON is byte-identical at every worker count.  ``verify=True``
    additionally re-runs the sweep inline (``workers=0``) and raises if
    the parallel run diverged — the CI smoke path.
    """
    if experiment == "all":
        return {
            "experiment": "all",
            "root_seed": root_seed,
            "smoke": smoke,
            "workers": workers,
            "sweeps": {
                name: run_sweep(
                    name,
                    workers=workers,
                    repeats=repeats,
                    root_seed=root_seed,
                    smoke=smoke,
                    verify=verify,
                )
                for name in EXPERIMENTS
            },
        }
    if experiment not in EXPERIMENTS:
        raise ValueError(
            f"unknown experiment {experiment!r}; pick from "
            f"{sorted(EXPERIMENTS)} or 'all'"
        )
    jobs, results, aggregated = EXPERIMENTS[experiment](
        workers, repeats, root_seed, smoke
    )
    if verify and workers > 1:
        reference = run_jobs(jobs, workers=0)
        if canonical_results(reference) != canonical_results(results):
            raise AssertionError(
                f"{experiment}: parallel run (workers={workers}) diverged "
                "from the serial reference — determinism bug"
            )
    failed = sum(1 for r in results if not r.ok)
    return {
        "experiment": experiment,
        "root_seed": root_seed,
        "smoke": smoke,
        "workers": workers,
        "n_jobs": len(jobs),
        "n_distinct_jobs": len({job.key for job in jobs}),
        "n_failed": failed,
        "verified_vs_serial": bool(verify and workers > 1),
        "results": aggregated,
    }
