"""Structured aggregation of sweep results.

The runner hands back one value per job; experiments want per-point
summaries (merge of metric dicts, ``mean_std`` over repeats) and the
determinism checks want a canonical byte representation that is equal
iff the simulated results are equal — independent of worker count,
completion order, and wall-clock noise.
"""

from __future__ import annotations

import json
import statistics
from typing import Any, Iterable, Sequence

__all__ = [
    "mean_std",
    "merge_metrics",
    "aggregate_repeats",
    "canonical_json",
    "canonical_results",
]


def mean_std(values: Sequence[float]) -> tuple[float, float]:
    """Mean and sample standard deviation of ``values``.

    A single value has zero deviation; an empty sequence is a caller
    bug (a sweep point produced no samples) and raises ``ValueError``.
    """
    if len(values) == 0:
        raise ValueError("mean_std() requires at least one value")
    if len(values) == 1:
        return values[0], 0.0
    return statistics.mean(values), statistics.stdev(values)


def merge_metrics(dicts: Iterable[dict]) -> dict:
    """Merge metric dicts key-wise: ``{key: [value, value, ...]}``.

    Keys missing from some dicts simply contribute fewer samples — a
    failed repeat does not poison the keys the other repeats produced.
    """
    merged: dict[str, list] = {}
    for d in dicts:
        for key, value in d.items():
            merged.setdefault(key, []).append(value)
    return merged


def aggregate_repeats(dicts: Sequence[dict]) -> dict:
    """Per-key summary over repeated metric dicts.

    Numeric keys aggregate to ``{"mean", "std", "n"}``; non-numeric
    keys (labels like ``served_from``) collapse to the value when all
    repeats agree, else to the list of observed values.
    """
    out: dict[str, Any] = {}
    for key, values in merge_metrics(dicts).items():
        if all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in values):
            mean, std = mean_std(values)
            out[key] = {"mean": mean, "std": std, "n": len(values)}
        elif all(v == values[0] for v in values):
            out[key] = values[0]
        else:
            out[key] = values
    return out


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace variance.

    Two runs produced identical simulated results iff their canonical
    JSON strings are byte-identical (floats round-trip through Python's
    shortest-repr, so equal doubles serialize identically).
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def canonical_results(results: Iterable) -> list[dict]:
    """The deterministic projection of a ``run_jobs`` result list.

    Keeps submission order, job identity, and the simulated outcome;
    drops wall-clock fields and tracebacks (worker-dependent paths and
    line numbers would break byte-identity for reasons that are not
    simulated divergence).
    """
    return [
        {"index": r.index, "key": r.key, "ok": r.ok, "value": r.value, "error": r.error}
        for r in results
    ]
