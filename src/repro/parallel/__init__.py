"""Process-parallel experiment harness.

The paper's evaluation is a pile of *independent* simulation jobs —
Table I sweep points, Figure 5/6 workload replications, lookup storms,
chaos trials — and independence is where wide-area storage systems get
their throughput (parallel slices of work, overlapped metadata
operations).  This subsystem applies the same idea to the harness
itself:

* :func:`derive_seed` — stable per-job seeds from a root seed, so a
  sweep's results do not depend on worker count or completion order.
* :class:`Job` / :class:`JobResult` / :func:`run_jobs` — a deterministic
  shard runner over a ``multiprocessing`` pool with failure isolation
  (a crashed job reports its traceback; the pool and the other jobs
  keep going) and memoization of identical deterministic jobs.
* :mod:`repro.parallel.aggregate` — structured merging of metric dicts
  and ``mean_std`` over repeats, plus canonical JSON for byte-identical
  determinism checks.
* :mod:`repro.parallel.sweeps` — the paper-experiment job functions and
  the ``python -m repro sweep`` entry point's sweep definitions.
"""

from repro.parallel.aggregate import (
    aggregate_repeats,
    canonical_json,
    canonical_results,
    mean_std,
    merge_metrics,
)
from repro.parallel.runner import (
    Job,
    JobFailure,
    JobResult,
    execute_job,
    run_jobs,
)
from repro.parallel.seeds import derive_seed

__all__ = [
    "Job",
    "JobResult",
    "JobFailure",
    "run_jobs",
    "execute_job",
    "derive_seed",
    "mean_std",
    "merge_metrics",
    "aggregate_repeats",
    "canonical_json",
    "canonical_results",
]
