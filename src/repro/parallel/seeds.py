"""Deterministic per-job seed derivation.

Every sweep hands each job a seed derived from the sweep's *root seed*
and the job's identity (experiment name, sweep point, repeat index).
The derivation is a cryptographic hash, so:

* it is stable across processes, worker counts, completion order, and
  Python versions (no reliance on ``hash()`` randomization);
* neighbouring jobs get statistically independent streams (no
  ``root_seed + i`` correlation);
* re-running any single job in isolation reproduces it bit-for-bit.
"""

from __future__ import annotations

import hashlib

__all__ = ["derive_seed"]

#: Seeds fit in a non-negative 63-bit int: valid for ``random.Random``,
#: numpy, and JSON round-trips without precision loss concerns.
_SEED_MASK = (1 << 63) - 1


def derive_seed(root_seed: int, *parts: "int | float | str") -> int:
    """A stable job seed from ``root_seed`` and the job's identity.

    ``parts`` is the job's coordinate in the sweep (e.g.
    ``("table1", size_mb, repeat)``).  The same inputs always produce
    the same seed; any change to any part produces an unrelated one.
    """
    material = "/".join([str(int(root_seed))] + [repr(p) for p in parts])
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & _SEED_MASK
