"""Cloud4Home / VStore++ reproduction.

A complete, simulation-backed reimplementation of *Cloud4Home —
Enhancing Data Services with @Home Clouds* (Kannan, Gavrilovska,
Schwan; ICDCS 2011): a virtualized object store whose data placement
and manipulation-service execution span home devices and the remote
public cloud.

Quick start::

    from repro import Cloud4Home, ClusterConfig

    c4h = Cloud4Home(ClusterConfig(seed=1))
    c4h.start()
    device = c4h.device("netbook0")
    c4h.run(device.client.store_file("camera.jpg", 0.5))
    fetch = c4h.run(c4h.device("desktop").client.fetch_object("camera.jpg"))
    print(fetch.total_s, fetch.served_from)

Subpackages (substrates upward): ``sim`` (discrete-event kernel),
``net`` (links/TCP/topology), ``virt`` (Xen-like hypervisor +
XenSocket), ``overlay`` (Chimera-like prefix routing), ``kvstore``
(DHT key-value store), ``monitoring`` (resources + decisions),
``services`` (FDet/FRec/x264 models), ``cloud`` (S3/EC2),
``vstore`` (the VStore++ core), ``cluster`` (assembly),
``workloads`` (trace generators).
"""

from repro.cluster import Cloud4Home, ClusterConfig, DeviceConfig
from repro.monitoring import DecisionPolicy
from repro.vstore import (
    Placement,
    PlacementTarget,
    StorePolicy,
    size_rule,
    tag_rule,
    type_rule,
)

__version__ = "1.0.0"

__all__ = [
    "Cloud4Home",
    "ClusterConfig",
    "DeviceConfig",
    "DecisionPolicy",
    "StorePolicy",
    "Placement",
    "PlacementTarget",
    "size_rule",
    "type_rule",
    "tag_rule",
    "__version__",
]
