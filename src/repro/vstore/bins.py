"""Mandatory and voluntary storage bins.

"On each node, a set of mandatory resources is available for the
execution of services ... on behalf of applications deployed on that
node.  In addition, nodes can contribute voluntary resources to the
aggregate storage pool available to any node in the VStore++ home
cloud." (Section III.)  The mandatory bin serves the node's own
applications; the voluntary bin accepts spill-over from peers.
"""

from __future__ import annotations

from repro.vstore.errors import BinFullError, ObjectNotFoundError

__all__ = ["StorageBin"]


class StorageBin:
    """A capacity-bounded pool of locally stored objects.

    ``manifest`` is an optional durable table (from a
    :class:`repro.storage.IStore` backend) that mirrors the bin's
    name→size map.  Payload *bytes* are not simulated — only the
    manifest is journaled — so recovery restores which objects the bin
    holds, matching how the simulator models objects everywhere else
    (sizes, not contents).
    """

    def __init__(self, name: str, capacity_mb: float, manifest=None) -> None:
        if capacity_mb <= 0:
            raise ValueError("capacity_mb must be positive")
        self.name = name
        self.capacity_mb = float(capacity_mb)
        self._objects: dict[str, float] = {}
        self._manifest = manifest

    @property
    def used_mb(self) -> float:
        return sum(self._objects.values())

    @property
    def free_mb(self) -> float:
        return self.capacity_mb - self.used_mb

    def fits(self, size_mb: float) -> bool:
        return size_mb <= self.free_mb

    def __contains__(self, name: str) -> bool:
        return name in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def names(self) -> list[str]:
        return list(self._objects)

    def size_of(self, name: str) -> float:
        if name not in self._objects:
            raise ObjectNotFoundError(name)
        return self._objects[name]

    def store(self, name: str, size_mb: float) -> None:
        """Place an object (replacing any same-named predecessor)."""
        if size_mb < 0:
            raise ValueError("size_mb must be non-negative")
        previous = self._objects.get(name, 0.0)
        if size_mb - previous > self.free_mb + 1e-9:
            raise BinFullError(self.name, size_mb, self.free_mb + previous)
        self._objects[name] = size_mb
        if self._manifest is not None:
            self._manifest[name] = size_mb

    def remove(self, name: str) -> float:
        """Delete an object, returning its size."""
        if name not in self._objects:
            raise ObjectNotFoundError(name)
        if self._manifest is not None:
            self._manifest.pop(name, None)
        return self._objects.pop(name)

    # -- crash / recovery ---------------------------------------------------

    def lose_contents(self) -> int:
        """RAM loss on crash: wipe the live map, *not* the manifest
        (the backend's ``crash()`` decides what the manifest keeps)."""
        lost = len(self._objects)
        self._objects.clear()
        return lost

    def restore_from_manifest(self) -> int:
        """Adopt the replayed manifest as the bin's contents."""
        if self._manifest is None:
            return 0
        self._objects = {
            name: float(size) for name, size in sorted(self._manifest.items())
        }
        return len(self._objects)
