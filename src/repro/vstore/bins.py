"""Mandatory and voluntary storage bins.

"On each node, a set of mandatory resources is available for the
execution of services ... on behalf of applications deployed on that
node.  In addition, nodes can contribute voluntary resources to the
aggregate storage pool available to any node in the VStore++ home
cloud." (Section III.)  The mandatory bin serves the node's own
applications; the voluntary bin accepts spill-over from peers.
"""

from __future__ import annotations

from repro.vstore.errors import BinFullError, ObjectNotFoundError

__all__ = ["StorageBin"]


class StorageBin:
    """A capacity-bounded pool of locally stored objects."""

    def __init__(self, name: str, capacity_mb: float) -> None:
        if capacity_mb <= 0:
            raise ValueError("capacity_mb must be positive")
        self.name = name
        self.capacity_mb = float(capacity_mb)
        self._objects: dict[str, float] = {}

    @property
    def used_mb(self) -> float:
        return sum(self._objects.values())

    @property
    def free_mb(self) -> float:
        return self.capacity_mb - self.used_mb

    def fits(self, size_mb: float) -> bool:
        return size_mb <= self.free_mb

    def __contains__(self, name: str) -> bool:
        return name in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def names(self) -> list[str]:
        return list(self._objects)

    def size_of(self, name: str) -> float:
        if name not in self._objects:
            raise ObjectNotFoundError(name)
        return self._objects[name]

    def store(self, name: str, size_mb: float) -> None:
        """Place an object (replacing any same-named predecessor)."""
        if size_mb < 0:
            raise ValueError("size_mb must be non-negative")
        previous = self._objects.get(name, 0.0)
        if size_mb - previous > self.free_mb + 1e-9:
            raise BinFullError(self.name, size_mb, self.free_mb + previous)
        self._objects[name] = size_mb

    def remove(self, name: str) -> float:
        """Delete an object, returning its size."""
        if name not in self._objects:
            raise ObjectNotFoundError(name)
        return self._objects.pop(name)
