"""Erasure-coded striping: the codec math and chunk-placement planning.

PR 4's resilience layer ships ``k`` *full* payload copies of every
object, so redundancy costs ``(copies - 1) x 100%`` extra storage and a
fetch moves the whole payload over one flow.  Striping takes the better
point on the curve (the fine-grain, piece-level access scheme of
Nicolae et al., arXiv 0810.2227): split an object into ``k`` data
chunks plus ``m`` parity chunks — a systematic (k, m) erasure code —
and spread the ``k + m`` chunks across distinct nodes (spilling to the
cloud when the home runs out of distinct holders).  Then:

* **any k** of the ``k + m`` chunks reconstruct the object, so up to
  ``m`` holders may be dead or slow without losing availability;
* a fetch becomes a parallel scatter-gather of chunk pulls whose
  latency is the **max of the fastest k** pulls, not one serial
  full-payload transfer;
* redundancy costs ``m / k`` extra storage instead of
  ``(copies - 1) x 100%`` — (4, 2) striping stores 1.5x the payload
  where 3-way replication stores 3.0x, at the same 2-failure tolerance;
* byte ranges map to data chunks, so :meth:`data_chunks_for_range`
  supports partial reads (``FetchRange``) that move only the covering
  chunks.

This module is pure math + planning — no simulation state, no I/O.
The scatter-gather execution lives in :mod:`repro.vstore.node`
(``_fetch_striped`` over ``Simulator.gather``) and the reconstruction
path in :mod:`repro.resilience.repair`.

Determinism contract: chunk order is index order, placement follows the
caller-supplied (already ranked) candidate list, and nothing here may
iterate an unordered set or draw ambient entropy — simlint scopes
SIM104 and SIM106 to this module with zero baseline entries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

__all__ = [
    "StripeCodec",
    "StripingPolicy",
    "chunk_name",
    "plan_chunk_placement",
]

#: Separator between an object name and its chunk suffix.  Object names
#: come from user traces (filenames); the double marker keeps chunk
#: names out of their namespace.
_CHUNK_SEP = "#~"


def chunk_name(name: str, index: int) -> str:
    """The bin/wire name of chunk ``index`` of object ``name``."""
    if index < 0:
        raise ValueError(f"chunk index must be non-negative, got {index!r}")
    return f"{name}{_CHUNK_SEP}{index}"


@dataclass(frozen=True)
class StripeCodec:
    """A systematic (k, m) erasure code over object sizes.

    The simulation moves and accounts for *sizes*, not real bytes, so
    the codec is pure arithmetic: ``k`` equal data chunks, ``m`` parity
    chunks of the same size, any ``k`` of the ``k + m`` reconstruct.
    Chunk indices ``0 .. k-1`` are data (chunk ``i`` covers bytes
    ``[i * chunk, (i+1) * chunk)``); ``k .. k+m-1`` are parity.
    """

    k: int
    m: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k (data chunks) must be >= 1, got {self.k!r}")
        if self.m < 0:
            raise ValueError(f"m (parity chunks) must be >= 0, got {self.m!r}")

    @property
    def n(self) -> int:
        """Total chunk count, data + parity."""
        return self.k + self.m

    @property
    def storage_overhead(self) -> float:
        """Stored bytes per logical byte: (k + m) / k."""
        return self.n / self.k

    def chunk_size_mb(self, size_mb: float) -> float:
        """Size of each chunk (data and parity alike), MB."""
        if size_mb < 0:
            raise ValueError("size_mb must be non-negative")
        return size_mb / self.k

    def stored_mb(self, size_mb: float) -> float:
        """Total MB the stripe occupies across all holders."""
        return self.chunk_size_mb(size_mb) * self.n

    def is_parity(self, index: int) -> bool:
        if not 0 <= index < self.n:
            raise ValueError(f"chunk index {index} out of range for {self}")
        return index >= self.k

    def can_decode(self, available: int) -> bool:
        """Can ``available`` surviving chunks reconstruct the object?"""
        return available >= self.k

    def data_chunks_for_range(
        self, size_mb: float, offset_mb: float, length_mb: float
    ) -> list[int]:
        """Data-chunk indices covering byte range [offset, offset+length).

        Raises :class:`ValueError` when the range falls outside the
        object.  A zero-length range covers no chunks.
        """
        if offset_mb < 0 or length_mb < 0:
            raise ValueError("offset_mb and length_mb must be non-negative")
        if offset_mb + length_mb > size_mb + 1e-9:
            raise ValueError(
                f"range [{offset_mb}, {offset_mb + length_mb}) MB exceeds "
                f"object size {size_mb} MB"
            )
        if length_mb == 0:
            return []
        chunk = self.chunk_size_mb(size_mb)
        if chunk == 0:
            return []
        first = int(offset_mb / chunk)
        last = int(math.ceil((offset_mb + length_mb) / chunk)) - 1
        first = min(first, self.k - 1)
        last = min(last, self.k - 1)
        return list(range(first, last + 1))


@dataclass(frozen=True)
class StripingPolicy:
    """When and how a deployment stripes objects.

    Built by the cluster assembler from
    ``ClusterConfig.striping_tuning``; ``None`` on a
    :class:`~repro.vstore.node.VStoreNode` means striping is off and
    every store takes the replication-era path unchanged.
    """

    codec: StripeCodec = field(default_factory=lambda: StripeCodec(4, 2))
    #: Objects smaller than this keep the replication path — chunking a
    #: tiny object trades one RPC for k + m of them for no bandwidth win.
    min_object_mb: float = 4.0
    #: Erasure encode/decode throughput (MB of logical object data per
    #: second).  Charged at store time (computing parity) and on
    #: degraded reads (reconstructing from a parity chunk).
    codec_mb_s: float = 400.0

    def __post_init__(self) -> None:
        if self.min_object_mb < 0:
            raise ValueError("min_object_mb must be non-negative")
        if self.codec_mb_s <= 0:
            raise ValueError("codec_mb_s must be positive")

    def applies_to(self, size_mb: float) -> bool:
        """Should an object of this size be striped?

        Single-chunk stripes (k == 1, m == 0) would be plain single
        copies with extra bookkeeping, so they are never produced.
        """
        return self.codec.n > 1 and size_mb >= self.min_object_mb

    def codec_time_s(self, size_mb: float) -> float:
        """Seconds to encode (or decode) one object's stripe."""
        return size_mb / self.codec_mb_s


def plan_chunk_placement(
    candidates: Sequence[str], n: int, exclude: Sequence[str] = ()
) -> list[Optional[str]]:
    """Assign ``n`` chunks to distinct holders from a ranked candidate list.

    Each candidate holds at most one chunk — the whole point of
    striping is that one failure costs one chunk, so two chunks on one
    node would silently halve the stripe's failure tolerance.  When the
    ranked list runs out of distinct holders, the remaining slots are
    ``None``: the executor spills those chunks to the remote cloud,
    which is both durable and failure-independent of every home node.

    ``candidates`` must already be ranked (the decision engine's
    output); order is preserved so placement is deterministic for a
    deterministic ranking.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    excluded = frozenset(exclude)
    holders: list[Optional[str]] = []
    seen: set[str] = set()
    for node in candidates:
        if len(holders) == n:
            break
        if node in excluded or node in seen:
            continue
        seen.add(node)
        holders.append(node)
    while len(holders) < n:
        holders.append(None)
    return holders
