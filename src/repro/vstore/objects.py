"""Object model: what VStore++ stores and what its metadata says.

"Internally, it uses a standard file system to represent objects, using
a one-to-one mapping of objects to files.  ...  The object name is
hashed, and the object information is routed to a node with an ID
closest to the hash value. ...  The value entry in the key-value store
is a serialized data containing object location and metadata, such as
tags, access information, etc.  The location field can map to a node in
the local home cloud or to a remote cloud." (Sections III / III-A.)

Objects here carry sizes, not real bytes — the simulation moves and
accounts for the bytes; content identity is tracked by version.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["ObjectMeta", "LOCATION_REMOTE"]

#: Location marker for objects living in the remote cloud.
LOCATION_REMOTE = "@remote-cloud"


@dataclass
class ObjectMeta:
    """An object's entry in the metadata key-value store."""

    name: str
    size_mb: float
    object_type: str = ""
    #: Home node name holding the object, or LOCATION_REMOTE.
    location: str = ""
    #: Which bin on the holding node ("mandatory"/"voluntary"); empty
    #: for remote objects.
    bin_name: str = ""
    #: S3 URL when the object lives in the remote cloud.
    url: Optional[str] = None
    tags: list[str] = field(default_factory=list)
    #: Access level: "private" (only the creating device), "home" (any
    #: device in the home cloud — the default), or "public" (also
    #: federated homes).  The paper stores access information in the
    #: metadata and names richer access control as future work
    #: (Section VII (i)); this reproduction enforces these three levels.
    access: str = "home"
    #: Device that created the object (the subject for "private").
    created_by: str = ""
    created_at: float = 0.0
    version: int = 1
    #: Additional home nodes holding full payload copies (resilience
    #: layer; empty unless ``data_replicas`` placement is enabled).
    replicas: list[str] = field(default_factory=list)
    #: Erasure-code parameters when the object is striped (0/0 for
    #: replication-era full-payload objects): ``stripe_k`` data chunks
    #: plus ``stripe_m`` parity chunks, any k of the k+m reconstruct.
    stripe_k: int = 0
    stripe_m: int = 0
    #: Holder of chunk ``i`` — a home node name, or LOCATION_REMOTE for
    #: chunks spilled to the cloud.  Length k+m when striped, else empty.
    chunk_nodes: list[str] = field(default_factory=list)
    #: Former holders pruned while unreachable (durable-storage
    #: deployments only).  If one comes back with its payload intact,
    #: the Repairer reattaches it instead of re-copying bytes.
    lost_replicas: list[str] = field(default_factory=list)

    VALID_ACCESS = ("private", "home", "public")

    def __post_init__(self) -> None:
        # Sizes arrive as ints from traces and floats from the clients;
        # normalize so equality and wire round-trips are type-stable.
        self.size_mb = float(self.size_mb)
        if not math.isfinite(self.size_mb):
            raise ValueError(f"size_mb must be finite, got {self.size_mb!r}")
        if self.size_mb < 0:
            raise ValueError("size_mb must be non-negative")
        if self.access not in self.VALID_ACCESS:
            raise ValueError(
                f"access must be one of {self.VALID_ACCESS}, got {self.access!r}"
            )
        if not self.object_type and "." in self.name:
            self.object_type = self.name.rsplit(".", 1)[-1].lower()
        if self.stripe_k < 0 or self.stripe_m < 0:
            raise ValueError("stripe_k and stripe_m must be non-negative")
        if (self.stripe_k == 0) != (not self.chunk_nodes):
            raise ValueError(
                "striped metadata needs both stripe_k and chunk_nodes "
                "(or neither)"
            )
        if self.stripe_k and len(self.chunk_nodes) != self.stripe_k + self.stripe_m:
            raise ValueError(
                f"chunk_nodes must list all {self.stripe_k + self.stripe_m} "
                f"holders, got {len(self.chunk_nodes)}"
            )

    def readable_by(self, device: str, same_home: bool = True) -> bool:
        """May ``device`` fetch/process this object?"""
        if self.access == "private":
            return device == self.created_by
        if self.access == "home":
            return same_home
        return True

    @property
    def size_bytes(self) -> float:
        """Size in bytes, as a float.

        Deliberately not an int: ``size_mb`` is itself fractional (trace
        sizes like 0.5 MB), and the transfer models all work in float
        byte counts — rounding here would silently change simulated
        transfer times.
        """
        return self.size_mb * 1024 * 1024

    @property
    def is_remote(self) -> bool:
        return self.location == LOCATION_REMOTE

    @property
    def is_striped(self) -> bool:
        return self.stripe_k > 0

    def wire(self) -> dict:
        data = {
            "name": self.name,
            "size_mb": self.size_mb,
            "object_type": self.object_type,
            "location": self.location,
            "bin_name": self.bin_name,
            "url": self.url,
            "tags": list(self.tags),
            "access": self.access,
            "created_by": self.created_by,
            "created_at": self.created_at,
            "version": self.version,
        }
        # Only on the wire when present: message sizes are derived from
        # the serialized value, so an always-present empty list would
        # change simulated timings for resilience-off deployments.
        if self.replicas:
            data["replicas"] = list(self.replicas)
        if self.lost_replicas:
            data["lost_replicas"] = list(self.lost_replicas)
        if self.stripe_k:
            data["stripe_k"] = self.stripe_k
            data["stripe_m"] = self.stripe_m
            data["chunk_nodes"] = list(self.chunk_nodes)
        return data

    @classmethod
    def from_wire(cls, data: dict) -> "ObjectMeta":
        return cls(**data)
