"""The guest-VM side of VStore++: the application-facing API.

"Applications using VStore++ API reside in guest virtual machines ...
All requests are passed to the VStore++ component residing in the
control domain (i.e., dom0 in Xen) via shared memory-based
communication channels." (Section III.)

Each API call builds a :class:`~repro.vstore.commands.Command` packet
(under 50 bytes) and pushes it through the node's XenSocket channel
before the control-domain operation runs; bulk data movement costs are
charged inside the node operations themselves.

Every API call is also a trace root: when telemetry is attached to the
simulator, each operation opens a ``client.*`` span and threads its
context down through the XenSocket push and the control-domain work, so
one guest request reconstructs as one span tree.
"""

from __future__ import annotations

from typing import Optional

from repro.monitoring import DecisionPolicy
from repro.vstore.commands import Command, CommandType
from repro.vstore.node import VStoreNode

__all__ = ["VStoreClient"]


class VStoreClient:
    """API stub linked into an application running in the guest VM."""

    def __init__(self, node: VStoreNode, domain_id: int = 1) -> None:
        self.node = node
        self.domain_id = domain_id
        self.commands_sent = 0

    @property
    def sim(self):
        return self.node.sim

    def _begin(self, op: str, **attrs):
        """Root a new client span, or (None, None) with telemetry off."""
        tel = self.sim.telemetry
        if tel is None:
            return None, None
        return tel, tel.begin(
            f"client.{op}", layer="client", node=self.node.name, **attrs
        )

    def _run(self, tel, span, gen):
        """Process: run ``gen`` under ``span`` (pass-through when off)."""
        if tel is None:
            result = yield from gen
        else:
            result = yield from tel.wrap(span, gen)
        return result

    def _send_command(self, command_type: CommandType, data=None, service_id="", ctx=None):
        """Process: push one command packet into the control domain."""
        command = Command(
            command_type,
            service_id=service_id,
            domain_id=self.domain_id,
            data=data,
        )
        if self.node.xensocket is not None:
            yield from self.node.xensocket.transfer(command.length, ctx=ctx)
        self.commands_sent += 1
        return command

    # -- API operations ------------------------------------------------------

    def create_object(
        self,
        name: str,
        size_mb: float,
        tags: Optional[list[str]] = None,
        access: str = "home",
    ):
        """Process: CreateObject() — map a file to a named object."""
        tel, span = self._begin("create", object=name)

        def op():
            yield from self._send_command(
                CommandType.CREATE_OBJECT, {"name": name}, ctx=span
            )
            return self.node.create_object(name, size_mb, tags=tags, access=access)

        result = yield from self._run(tel, span, op())
        return result

    def store_object(self, name: str, blocking: bool = True):
        """Process: StoreObject() — place the object per policy."""
        tel, span = self._begin("store", object=name)

        def op():
            yield from self._send_command(
                CommandType.STORE_OBJECT, {"name": name}, ctx=span
            )
            result = yield from self.node.store_object(
                name, blocking=blocking, ctx=span
            )
            return result

        result = yield from self._run(tel, span, op())
        return result

    def fetch_object(self, name: str):
        """Process: FetchObject() — bring the object into this VM."""
        tel, span = self._begin("fetch", object=name)

        def op():
            yield from self._send_command(
                CommandType.FETCH_OBJECT, {"name": name}, ctx=span
            )
            result = yield from self.node.fetch_object(name, ctx=span)
            return result

        result = yield from self._run(tel, span, op())
        return result

    def fetch_range(self, name: str, offset_mb: float, length_mb: float):
        """Process: FetchRange() — bring only a byte range into this VM.

        On erasure-coded objects only the data chunks covering
        ``[offset, offset + length)`` move over the network; the
        XenSocket delivery carries just the requested bytes either way.
        """
        tel, span = self._begin(
            "fetch_range", object=name, offset_mb=offset_mb, length_mb=length_mb
        )

        def op():
            yield from self._send_command(
                CommandType.FETCH_RANGE,
                {"name": name, "offset_mb": offset_mb, "length_mb": length_mb},
                ctx=span,
            )
            result = yield from self.node.fetch_range(
                name, offset_mb, length_mb, ctx=span
            )
            return result

        result = yield from self._run(tel, span, op())
        return result

    def prefetch_object(self, name: str):
        """Process: start an asynchronous fetch; returns its handle.

        "The command based mechanism helps with implementing
        asynchronous fetch and store operations" (Section IV).  The
        returned process event can be awaited later (or ignored); the
        bytes stream in meanwhile.  The root span closes once the fetch
        is launched; the async fetch's spans still attach under it.
        """
        tel, span = self._begin("prefetch", object=name)

        def op():
            yield from self._send_command(
                CommandType.FETCH_OBJECT, {"name": name}, ctx=span
            )
            return self.sim.process(self.node.fetch_object(name, ctx=span))

        handle = yield from self._run(tel, span, op())
        return handle

    def process(
        self,
        name: str,
        qualified_service: str,
        policy: DecisionPolicy = DecisionPolicy.PERFORMANCE,
    ):
        """Process: explicitly run a service over a stored object."""
        tel, span = self._begin("process", object=name, service=qualified_service)

        def op():
            yield from self._send_command(
                CommandType.PROCESS,
                {"name": name},
                service_id=qualified_service,
                ctx=span,
            )
            result = yield from self.node.process(
                name, qualified_service, policy=policy, ctx=span
            )
            return result

        result = yield from self._run(tel, span, op())
        return result

    def process_pipeline(
        self,
        name: str,
        qualified_services: list[str],
        policy: DecisionPolicy = DecisionPolicy.PERFORMANCE,
    ):
        """Process: run a multi-step pipeline (e.g. FDet then FRec) at
        one decision-chosen target, moving the argument only once."""
        tel, span = self._begin(
            "process_pipeline", object=name, services="+".join(qualified_services)
        )

        def op():
            yield from self._send_command(
                CommandType.PROCESS,
                {"name": name, "pipeline": qualified_services},
                service_id="+".join(qualified_services),
                ctx=span,
            )
            result = yield from self.node.process_pipeline(
                name, qualified_services, policy=policy, ctx=span
            )
            return result

        result = yield from self._run(tel, span, op())
        return result

    def fetch_process(self, name: str, qualified_service: str):
        """Process: fetch with an attached manipulation function."""
        tel, span = self._begin("fetch_process", object=name, service=qualified_service)

        def op():
            yield from self._send_command(
                CommandType.FETCH_PROCESS,
                {"name": name},
                service_id=qualified_service,
                ctx=span,
            )
            result = yield from self.node.fetch_process(
                name, qualified_service, ctx=span
            )
            return result

        result = yield from self._run(tel, span, op())
        return result

    def delete_object(self, name: str):
        """Process: remove an object everywhere."""
        tel, span = self._begin("delete", object=name)

        def op():
            yield from self._send_command(
                CommandType.DELETE_OBJECT, {"name": name}, ctx=span
            )
            yield from self.node.delete_object(name, ctx=span)

        yield from self._run(tel, span, op())

    def store_file(self, name: str, size_mb: float, blocking: bool = True, **kwargs):
        """Process: convenience create+store in one call."""
        yield from self.create_object(name, size_mb, **kwargs)
        result = yield from self.store_object(name, blocking=blocking)
        return result
