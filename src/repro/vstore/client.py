"""The guest-VM side of VStore++: the application-facing API.

"Applications using VStore++ API reside in guest virtual machines ...
All requests are passed to the VStore++ component residing in the
control domain (i.e., dom0 in Xen) via shared memory-based
communication channels." (Section III.)

Each API call builds a :class:`~repro.vstore.commands.Command` packet
(under 50 bytes) and pushes it through the node's XenSocket channel
before the control-domain operation runs; bulk data movement costs are
charged inside the node operations themselves.
"""

from __future__ import annotations

from typing import Optional

from repro.monitoring import DecisionPolicy
from repro.vstore.commands import Command, CommandType
from repro.vstore.node import VStoreNode

__all__ = ["VStoreClient"]


class VStoreClient:
    """API stub linked into an application running in the guest VM."""

    def __init__(self, node: VStoreNode, domain_id: int = 1) -> None:
        self.node = node
        self.domain_id = domain_id
        self.commands_sent = 0

    @property
    def sim(self):
        return self.node.sim

    def _send_command(self, command_type: CommandType, data=None, service_id=""):
        """Process: push one command packet into the control domain."""
        command = Command(
            command_type,
            service_id=service_id,
            domain_id=self.domain_id,
            data=data,
        )
        if self.node.xensocket is not None:
            yield from self.node.xensocket.transfer(command.length)
        self.commands_sent += 1
        return command

    # -- API operations ------------------------------------------------------

    def create_object(
        self,
        name: str,
        size_mb: float,
        tags: Optional[list[str]] = None,
        access: str = "home",
    ):
        """Process: CreateObject() — map a file to a named object."""
        yield from self._send_command(CommandType.CREATE_OBJECT, {"name": name})
        return self.node.create_object(name, size_mb, tags=tags, access=access)

    def store_object(self, name: str, blocking: bool = True):
        """Process: StoreObject() — place the object per policy."""
        yield from self._send_command(CommandType.STORE_OBJECT, {"name": name})
        result = yield from self.node.store_object(name, blocking=blocking)
        return result

    def fetch_object(self, name: str):
        """Process: FetchObject() — bring the object into this VM."""
        yield from self._send_command(CommandType.FETCH_OBJECT, {"name": name})
        result = yield from self.node.fetch_object(name)
        return result

    def prefetch_object(self, name: str):
        """Process: start an asynchronous fetch; returns its handle.

        "The command based mechanism helps with implementing
        asynchronous fetch and store operations" (Section IV).  The
        returned process event can be awaited later (or ignored); the
        bytes stream in meanwhile.
        """
        yield from self._send_command(CommandType.FETCH_OBJECT, {"name": name})
        handle = self.sim.process(self.node.fetch_object(name))
        return handle

    def process(
        self,
        name: str,
        qualified_service: str,
        policy: DecisionPolicy = DecisionPolicy.PERFORMANCE,
    ):
        """Process: explicitly run a service over a stored object."""
        yield from self._send_command(
            CommandType.PROCESS, {"name": name}, service_id=qualified_service
        )
        result = yield from self.node.process(name, qualified_service, policy=policy)
        return result

    def process_pipeline(
        self,
        name: str,
        qualified_services: list[str],
        policy: DecisionPolicy = DecisionPolicy.PERFORMANCE,
    ):
        """Process: run a multi-step pipeline (e.g. FDet then FRec) at
        one decision-chosen target, moving the argument only once."""
        yield from self._send_command(
            CommandType.PROCESS,
            {"name": name, "pipeline": qualified_services},
            service_id="+".join(qualified_services),
        )
        result = yield from self.node.process_pipeline(
            name, qualified_services, policy=policy
        )
        return result

    def fetch_process(self, name: str, qualified_service: str):
        """Process: fetch with an attached manipulation function."""
        yield from self._send_command(
            CommandType.FETCH_PROCESS, {"name": name}, service_id=qualified_service
        )
        result = yield from self.node.fetch_process(name, qualified_service)
        return result

    def delete_object(self, name: str):
        """Process: remove an object everywhere."""
        yield from self._send_command(CommandType.DELETE_OBJECT, {"name": name})
        yield from self.node.delete_object(name)

    def store_file(self, name: str, size_mb: float, blocking: bool = True, **kwargs):
        """Process: convenience create+store in one call."""
        yield from self.create_object(name, size_mb, **kwargs)
        result = yield from self.store_object(name, blocking=blocking)
        return result
