"""Exception types for the VStore++ layer."""

from __future__ import annotations


class VStoreError(Exception):
    """Base class for VStore++ errors."""


class ObjectNotFoundError(VStoreError):
    """No object with this name exists anywhere in the store."""

    def __init__(self, name: str) -> None:
        super().__init__(f"object {name!r} not found")
        self.name = name


class ObjectExistsError(VStoreError):
    """CreateObject on a name that is already mapped."""

    def __init__(self, name: str) -> None:
        super().__init__(f"object {name!r} already exists")
        self.name = name


class BinFullError(VStoreError):
    """A storage bin cannot hold the object."""

    def __init__(self, bin_name: str, needed_mb: float, free_mb: float) -> None:
        super().__init__(
            f"bin {bin_name!r} full: need {needed_mb:.1f} MB, "
            f"only {free_mb:.1f} MB free"
        )
        self.bin_name = bin_name
        self.needed_mb = needed_mb
        self.free_mb = free_mb


class ServiceUnavailableError(VStoreError):
    """No node can currently execute the requested service."""

    def __init__(self, service: str) -> None:
        super().__init__(f"no node available to run service {service!r}")
        self.service = service


class PlacementError(VStoreError):
    """No placement target satisfies the store policy."""


class ChunksLostError(VStoreError):
    """Too few chunks of an erasure-coded stripe survive to decode.

    Raised when fewer than ``k`` of an object's ``k + m`` chunks are
    reachable and no cloud backstop copy exists.
    """

    def __init__(self, name: str, available: int, needed: int) -> None:
        super().__init__(
            f"object {name!r} unrecoverable: only {available} of the "
            f"required {needed} chunks reachable"
        )
        self.name = name
        self.available = available
        self.needed = needed


class AccessDeniedError(VStoreError):
    """The requesting device may not read this object.

    Enforcement of the metadata's access field — the paper's future-work
    item (i), "richer access control methods and policies".
    """

    def __init__(self, name: str, device: str) -> None:
        super().__init__(f"device {device!r} may not access object {name!r}")
        self.name = name
        self.device = device
