"""VStore++: the virtualized object storage and manipulation service.

Public surface:

* :class:`VStoreNode` — the control-domain (dom0) component.
* :class:`VStoreClient` — the guest-VM application API
  (CreateObject / StoreObject / FetchObject / Process / FetchProcess).
* :class:`ObjectMeta`, :class:`StorageBin` — the object model.
* :class:`StorePolicy`, :class:`Placement`, :class:`PlacementTarget`,
  rule helpers — placement policies.
* :class:`StoreResult`, :class:`FetchResult`, :class:`ProcessResult` —
  operation outcomes with timing breakdowns.
* :func:`estimate_completion` — the process-placement cost model.
* Errors under :class:`VStoreError`.
"""

from repro.vstore.bins import StorageBin
from repro.vstore.client import VStoreClient
from repro.vstore.commands import Command, CommandType
from repro.vstore.errors import (
    BinFullError,
    ChunksLostError,
    ObjectExistsError,
    ObjectNotFoundError,
    PlacementError,
    ServiceUnavailableError,
    VStoreError,
)
from repro.vstore.node import (
    FetchResult,
    ProcessResult,
    StoreResult,
    VStoreNode,
    object_key,
)
from repro.vstore.objects import LOCATION_REMOTE, ObjectMeta
from repro.vstore.placement import PlacementEstimate, estimate_completion
from repro.vstore.policies import (
    Placement,
    PlacementTarget,
    Rule,
    StorePolicy,
    size_rule,
    tag_rule,
    type_rule,
)
from repro.vstore.striping import (
    StripeCodec,
    StripingPolicy,
    chunk_name,
    plan_chunk_placement,
)

__all__ = [
    "VStoreNode",
    "VStoreClient",
    "ObjectMeta",
    "LOCATION_REMOTE",
    "StorageBin",
    "Command",
    "CommandType",
    "StorePolicy",
    "Placement",
    "PlacementTarget",
    "Rule",
    "size_rule",
    "type_rule",
    "tag_rule",
    "StoreResult",
    "FetchResult",
    "ProcessResult",
    "StripeCodec",
    "StripingPolicy",
    "chunk_name",
    "plan_chunk_placement",
    "PlacementEstimate",
    "estimate_completion",
    "object_key",
    "VStoreError",
    "ObjectNotFoundError",
    "ObjectExistsError",
    "BinFullError",
    "PlacementError",
    "ChunksLostError",
    "ServiceUnavailableError",
]
