"""The command protocol between guest VMs and the VStore++ domain.

"Every method call in VStore++ is converted into a command.  The
command based interface is used for communicating between virtual
machines and remote nodes.  Each command packet consists of packet
length, command type, the requesting service ID, VMs domain ID, shared
memory reference and command data.  ...  Commands are usually less than
50 bytes." (Section IV.)
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

__all__ = ["CommandType", "Command"]


class CommandType(Enum):
    CREATE_OBJECT = "create"
    STORE_OBJECT = "store"
    FETCH_OBJECT = "fetch"
    FETCH_RANGE = "fetch-range"
    PROCESS = "process"
    FETCH_PROCESS = "fetch-process"
    DELETE_OBJECT = "delete"
    ACK = "ack"


@dataclass
class Command:
    """One command packet."""

    command_type: CommandType
    service_id: str = ""
    domain_id: int = 0
    #: Reference to the shared-memory region carrying bulk data (the
    #: XenSocket grant, in the prototype); 0 when none is attached.
    shm_ref: int = 0
    data: Any = None
    #: Wire length, bytes; computed on construction.
    length: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.length = self._encoded_length()

    def _encoded_length(self) -> int:
        # Fixed header: length(4) + type(1) + service id(8) + domain(2)
        # + shm ref(4); plus the command data.
        header = 19
        try:
            body = len(json.dumps(self.data, default=str)) if self.data else 0
        except (TypeError, ValueError):
            body = 32
        return header + body

    @property
    def is_small(self) -> bool:
        """Commands are usually under 50 bytes (sanity check hook)."""
        return self.length < 50
