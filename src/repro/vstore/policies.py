"""Store-placement policies: statically encoded rule sets.

"The target location for the store operation is determined via the
policy associated with the store.  The service policy describes a set
of rules which 'guide' the routing of the store request.  For instance,
in the home surveillance application, we may specify a service policy
where objects (i.e., images) are stored on a desktop in the home cloud
vs. in the remote cloud based on their size. ...  In our current
implementation, these policies are represented as a set of statically
encoded rules." (Section III-B.)

A :class:`StorePolicy` evaluates its rules in order against an
:class:`~repro.vstore.objects.ObjectMeta`; the first matching rule's
target wins, with a configurable default.  Helper constructors cover
the rule shapes the paper's evaluation uses: size-based placement
(Figure 5/7 discussions) and privacy/type-based placement ("a policy
that stores private data (in our case all .mp3 files) locally and
shareable data ... remotely", Section V-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Optional

from repro.vstore.objects import ObjectMeta

__all__ = [
    "PlacementTarget",
    "Placement",
    "Rule",
    "StorePolicy",
    "size_rule",
    "type_rule",
    "tag_rule",
]


class PlacementTarget(Enum):
    """Where a store request may land."""

    #: This node's mandatory bin (the default).
    LOCAL_MANDATORY = "local-mandatory"
    #: Another home node's voluntary bin (decision-engine selected).
    HOME_VOLUNTARY = "home-voluntary"
    #: The remote public cloud (S3).
    REMOTE_CLOUD = "remote-cloud"
    #: A specific named node's voluntary bin.
    NAMED_NODE = "named-node"


@dataclass(frozen=True)
class Placement:
    """A concrete placement decision (target kind + optional node)."""

    target: PlacementTarget
    node: Optional[str] = None

    def __post_init__(self) -> None:
        if self.target is PlacementTarget.NAMED_NODE and not self.node:
            raise ValueError("NAMED_NODE placement requires a node name")


@dataclass(frozen=True)
class Rule:
    """One statically encoded placement rule."""

    description: str
    predicate: Callable[[ObjectMeta], bool]
    placement: Placement

    def matches(self, meta: ObjectMeta) -> bool:
        return bool(self.predicate(meta))


class StorePolicy:
    """An ordered rule list with a default placement."""

    def __init__(
        self,
        rules: Optional[list[Rule]] = None,
        default: Placement = Placement(PlacementTarget.LOCAL_MANDATORY),
    ) -> None:
        self.rules = list(rules or [])
        self.default = default

    def add_rule(self, rule: Rule) -> "StorePolicy":
        self.rules.append(rule)
        return self

    def decide(self, meta: ObjectMeta) -> Placement:
        """First matching rule wins; otherwise the default."""
        for rule in self.rules:
            if rule.matches(meta):
                return rule.placement
        return self.default

    def explain(self, meta: ObjectMeta) -> str:
        """Human-readable reason for the decision (for diagnostics)."""
        for rule in self.rules:
            if rule.matches(meta):
                return rule.description
        return "default placement"


def size_rule(
    placement: Placement,
    min_mb: float = 0.0,
    max_mb: float = float("inf"),
) -> Rule:
    """Place objects whose size falls in [min_mb, max_mb)."""
    if min_mb < 0 or max_mb <= min_mb:
        raise ValueError("need 0 <= min_mb < max_mb")
    return Rule(
        description=f"size in [{min_mb:g}, {max_mb:g}) MB -> {placement.target.value}",
        predicate=lambda meta: min_mb <= meta.size_mb < max_mb,
        placement=placement,
    )


def type_rule(placement: Placement, extensions: list[str]) -> Rule:
    """Place objects by file type (e.g. keep '.mp3' private at home)."""
    normalized = {ext.lstrip(".").lower() for ext in extensions}
    return Rule(
        description=f"type in {sorted(normalized)} -> {placement.target.value}",
        predicate=lambda meta: meta.object_type in normalized,
        placement=placement,
    )


def tag_rule(placement: Placement, tag: str) -> Rule:
    """Place objects carrying a given tag (e.g. 'private')."""
    return Rule(
        description=f"tag {tag!r} -> {placement.target.value}",
        predicate=lambda meta: tag in meta.tags,
        placement=placement,
    )
