"""The VStore++ control-domain component: store, fetch, and process.

This is the paper's core contribution (Section III-B): a virtualized
object store whose operations name only the object and/or service —
*where* the object lives and *where* manipulation functions run is
decided at the metadata layer, using placement policies and the
resource-monitoring state in the DHT key-value store.

One :class:`VStoreNode` runs in each device's control domain (dom0).
It composes every substrate in this reproduction:

* the Chimera overlay + KV store for metadata and discovery,
* the decision engine for resource-aware target selection,
* XenSocket channels for guest↔dom0 data movement,
* the zero-copy transfer engine for node↔node object movement,
* the public-cloud interface (S3) and optional EC2 instances.

All operation methods are generators intended to be driven as
simulation processes; they return result objects carrying the timing
breakdowns the paper's Table I and Figures 4-8 report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.cloud import Ec2Instance, PublicCloudInterface
from repro.kvstore import DhtKeyValueStore, KeyNotFoundError
from repro.monitoring import DecisionEngine, DecisionPolicy, ResourceSnapshot
from repro.net import HostDownError, RemoteError, Request, RpcTimeoutError
from repro.overlay import ChimeraNode
from repro.services import Service, ServiceRegistry
from repro.telemetry.spans import wire_ctx
from repro.virt import Domain, TransferEngine, XenSocketChannel
from repro.vstore.bins import StorageBin
from repro.vstore.errors import (
    AccessDeniedError,
    BinFullError,
    ChunksLostError,
    ObjectExistsError,
    ObjectNotFoundError,
    PlacementError,
    ServiceUnavailableError,
    VStoreError,
)
from repro.vstore.objects import LOCATION_REMOTE, ObjectMeta
from repro.vstore.placement import PlacementEstimate, estimate_completion
from repro.vstore.policies import Placement, PlacementTarget, StorePolicy
from repro.vstore.striping import (
    StripeCodec,
    StripingPolicy,
    chunk_name,
    plan_chunk_placement,
)

__all__ = ["VStoreNode", "StoreResult", "FetchResult", "ProcessResult"]

MSG_STORE_VOLUNTARY = "vstore.store-voluntary"
MSG_FETCH = "vstore.fetch"
MSG_PROCESS_REMOTE = "vstore.process-remote"
MSG_PROCESS_PIPELINE = "vstore.process-pipeline"
MSG_DELETE = "vstore.delete"
#: Liveness/holdership probe (resilience layer; reply says whether the
#: payload is physically here).
MSG_PING = "vstore.ping"
#: Command a holder to push payload copies to the listed targets.
MSG_REPLICATE = "vstore.replicate"


def object_key(name: str) -> str:
    """KV-store key for an object's metadata entry."""
    return f"object:{name}"


@dataclass
class StoreResult:
    """Outcome and cost breakdown of a store operation."""

    meta: ObjectMeta
    placement: Placement
    total_s: float
    inter_domain_s: float = 0.0
    placement_s: float = 0.0
    metadata_s: float = 0.0
    blocking: bool = True


@dataclass
class FetchResult:
    """Outcome and cost breakdown of a fetch (Table I's columns)."""

    meta: ObjectMeta
    total_s: float
    dht_lookup_s: float = 0.0
    inter_node_s: float = 0.0
    inter_domain_s: float = 0.0
    remote_cloud_s: float = 0.0
    served_from: str = ""


@dataclass
class ProcessResult:
    """Outcome of a process / fetch-and-process operation."""

    object_name: str
    service: str
    executed_on: str
    output_mb: float
    total_s: float
    decision_s: float = 0.0
    move_s: float = 0.0
    execute_s: float = 0.0
    estimates: list = field(default_factory=list)


class VStoreNode:
    """The per-device VStore++ service (dom0 component)."""

    def __init__(
        self,
        chimera: ChimeraNode,
        kv: DhtKeyValueStore,
        registry: ServiceRegistry,
        decision: DecisionEngine,
        transfer: TransferEngine,
        mandatory_mb: float = 2048.0,
        voluntary_mb: float = 4096.0,
        store_policy: Optional[StorePolicy] = None,
        guest_domain: Optional[Domain] = None,
        dom0_domain: Optional[Domain] = None,
        xensocket: Optional[XenSocketChannel] = None,
        cloud: Optional[PublicCloudInterface] = None,
        ec2: Optional[Ec2Instance] = None,
        snapshot_fn: Optional[Callable[[], ResourceSnapshot]] = None,
        op_overhead_s: float = 0.002,
        disk_mb_s: float = 80.0,
        caller=None,
        data_replicas: int = 0,
        striping: Optional[StripingPolicy] = None,
        metrics=None,
        storage=None,
    ) -> None:
        self.chimera = chimera
        self.kv = kv
        self.registry = registry
        self.decision = decision
        self.transfer = transfer
        #: Optional :class:`repro.storage.IStore` backend shared with
        #: the KV store.  When set, the bins journal their manifests
        #: through it so a crashed node can recover its holdings.
        self.storage = storage
        self.mandatory = StorageBin(
            "mandatory",
            mandatory_mb,
            manifest=storage.table("bin.mandatory") if storage is not None else None,
        )
        self.voluntary = StorageBin(
            "voluntary",
            voluntary_mb,
            manifest=storage.table("bin.voluntary") if storage is not None else None,
        )
        self.store_policy = store_policy or StorePolicy()
        self.guest_domain = guest_domain
        self.dom0_domain = dom0_domain
        self.xensocket = xensocket
        self.cloud = cloud
        self.ec2 = ec2
        self.snapshot_fn = snapshot_fn
        self.op_overhead_s = op_overhead_s
        self.disk_mb_s = disk_mb_s
        #: Optional :class:`repro.resilience.ResilientCaller`; when set,
        #: peer RPCs gain retries, deadlines, and circuit breaking.
        self.caller = caller
        if data_replicas < 0:
            raise ValueError("data_replicas must be >= 0")
        #: Extra payload copies placed at store time (0 = single-homed,
        #: the pre-resilience behaviour).
        self.data_replicas = data_replicas
        #: Optional :class:`repro.vstore.striping.StripingPolicy`; when
        #: set, qualifying objects are split into (k, m) erasure-coded
        #: chunks scattered across distinct holders instead of stored
        #: (and replicated) whole.  ``None`` keeps every store on the
        #: replication-era path unchanged.
        self.striping = striping
        self.metrics = metrics
        #: Objects created but not yet stored (CreateObject staging).
        self.staged: dict[str, ObjectMeta] = {}
        self._register_handlers()

    # -- identity ------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.chimera.name

    @property
    def sim(self):
        return self.chimera.sim

    @property
    def endpoint(self):
        return self.chimera.endpoint

    def snapshot(self) -> Optional[ResourceSnapshot]:
        """This node's current resource state (None if no sampler)."""
        return self.snapshot_fn() if self.snapshot_fn else None

    # -- durability: crash / recovery ---------------------------------------

    def lose_memory(self) -> None:
        """RAM loss on crash: wipe staged objects and live bin maps."""
        self.staged.clear()
        self.mandatory.lose_contents()
        self.voluntary.lose_contents()

    def recover(self) -> dict:
        """Adopt replayed bin manifests after the shared backend's WAL
        replay (driven by ``kv.recover()``); returns restored counts."""
        return {
            "mandatory": self.mandatory.restore_from_manifest(),
            "voluntary": self.voluntary.restore_from_manifest(),
        }

    def _span(self, name: str, ctx, **attrs):
        """(telemetry, span) pair; (None, None) when telemetry is off."""
        tel = self.sim.telemetry
        if tel is None:
            return None, None
        return tel, tel.begin(name, layer="vstore", node=self.name, parent=ctx, **attrs)

    def _count(self, metric: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(metric, node=self.name).inc()

    def _call(self, dst: str, msg_type: str, body, timeout: float, size: int = 64):
        """Process: one peer RPC, through the resilient caller when set.

        Without a caller this is exactly ``endpoint.call`` — same event,
        same timing — so resilience-off runs are unchanged.
        """
        if self.caller is not None:
            return (
                yield from self.caller.call(
                    dst, msg_type, body, timeout=timeout, size=size
                )
            )
        return (
            yield self.endpoint.call(dst, msg_type, body, timeout=timeout, size=size)
        )

    # -- object lifecycle -----------------------------------------------------

    def create_object(
        self,
        name: str,
        size_mb: float,
        tags: Optional[list[str]] = None,
        access: str = "home",
    ) -> ObjectMeta:
        """Map a file to an object and create its mandatory metadata.

        Purely local; :meth:`store_object` performs the distributed
        placement and the KV-store update.
        """
        if name in self.staged or name in self.mandatory or name in self.voluntary:
            raise ObjectExistsError(name)
        meta = ObjectMeta(
            name=name,
            size_mb=size_mb,
            tags=list(tags or []),
            access=access,
            created_by=self.name,
            created_at=self.sim.now,
        )
        self.staged[name] = meta
        return meta

    def store_object(
        self, name: str, blocking: bool = True, from_guest: bool = True, ctx=None
    ):
        """Process: place a created object and publish its metadata.

        Blocking stores wait for placement and the metadata update (and
        pay the acknowledgement); non-blocking stores return right
        after the object reaches the control domain, with placement
        completing in the background.
        """
        meta = self.staged.get(name)
        if meta is None:
            raise ObjectNotFoundError(name)
        tel, span = self._span("vstore.store", ctx, object=name, size_mb=meta.size_mb)
        started = self.sim.now
        yield self.sim.timeout(self.op_overhead_s)
        inter_domain_s = 0.0
        if from_guest and self.xensocket is not None:
            t0 = self.sim.now
            yield from self.xensocket.transfer(meta.size_bytes, ctx=span)
            inter_domain_s = self.sim.now - t0
        del self.staged[name]

        if not blocking:
            self.sim.process(self._place_and_publish(meta, ctx=span))
            if span is not None:
                tel.end(span, blocking=False)
            return StoreResult(
                meta=meta,
                placement=self.store_policy.decide(meta),
                total_s=self.sim.now - started,
                inter_domain_s=inter_domain_s,
                blocking=False,
            )

        placement, placement_s, metadata_s = yield from self._place_and_publish(
            meta, ctx=span
        )
        # Blocking stores "incur the cost of an additional
        # acknowledgement" back to the guest.
        if self.xensocket is not None:
            yield from self.xensocket.transfer(64, ctx=span)
        if span is not None:
            tel.end(span, target=placement.target.name, location=meta.location)
        return StoreResult(
            meta=meta,
            placement=placement,
            total_s=self.sim.now - started,
            inter_domain_s=inter_domain_s,
            placement_s=placement_s,
            metadata_s=metadata_s,
            blocking=True,
        )

    def _place_and_publish(self, meta: ObjectMeta, ctx=None):
        tel, span = self._span("vstore.place", ctx, object=meta.name)
        t0 = self.sim.now
        if self.striping is not None and self.striping.applies_to(meta.size_mb):
            placement = yield from self._stripe_and_place(meta, ctx=span)
        else:
            placement = yield from self._place(meta, ctx=span)
            if self.data_replicas > 0:
                yield from self._replicate_payload(meta, ctx=span)
        placement_s = self.sim.now - t0
        if span is not None:
            tel.end(span, target=placement.target.name)
        t1 = self.sim.now
        yield from self.kv.put(object_key(meta.name), meta.wire(), ctx=ctx)
        metadata_s = self.sim.now - t1
        return placement, placement_s, metadata_s

    def _replicate_payload(self, meta: ObjectMeta, ctx=None):
        """Process: place ``data_replicas`` extra payload copies.

        Copies land in peers' voluntary bins, chosen by the decision
        engine; when fewer than the requested count fit in the home
        cloud, one cloud spill copy backstops durability instead.
        """
        if meta.is_remote:
            return  # the cloud already is the redundancy
        tel, span = self._span(
            "vstore.replicate", ctx, object=meta.name, want=self.data_replicas
        )
        exclude = {meta.location}
        try:
            candidates = yield from self.decision.decide(
                DecisionPolicy.BALANCED,
                require=lambda s: s.voluntary_free_mb >= meta.size_mb,
                ctx=span,
            )
        except (HostDownError, RpcTimeoutError, RemoteError):
            candidates = []
        for candidate in candidates:
            if len(meta.replicas) >= self.data_replicas:
                break
            node = candidate.node
            if node in exclude or node in meta.replicas:
                continue
            if node == self.name:
                if meta.name not in self.voluntary and self.voluntary.fits(
                    meta.size_mb
                ):
                    self.voluntary.store(meta.name, meta.size_mb)
                    meta.replicas.append(node)
                continue
            # The storing node still has the bytes in its control
            # domain, so it streams every copy itself.
            body = {"name": meta.name, "size_mb": meta.size_mb, "src": self.name}
            if span is not None:
                body["span"] = span.ctx_wire()
            try:
                yield from self._call(
                    node, MSG_STORE_VOLUNTARY, body, timeout=120.0
                )
            except (HostDownError, RpcTimeoutError, RemoteError):
                continue
            meta.replicas.append(node)
        if len(meta.replicas) < self.data_replicas:
            self._count("vstore.replicate.short")
            if self.cloud is not None and meta.url is None:
                # Cloud spill: one durable copy stands in for the home
                # replicas we could not place.
                meta.url = yield from self.cloud.store_remote(
                    meta.name, meta.size_bytes, ctx=span
                )
        if span is not None:
            tel.end(span, placed=len(meta.replicas), spilled=meta.url is not None)

    def _place(self, meta: ObjectMeta, ctx=None):
        """Execute the policy decision, with the paper's fallbacks."""
        placement = self.store_policy.decide(meta)
        target = placement.target
        if target is PlacementTarget.LOCAL_MANDATORY:
            if self.mandatory.fits(meta.size_mb):
                self.mandatory.store(meta.name, meta.size_mb)
                meta.location = self.name
                meta.bin_name = "mandatory"
                return placement
            # Mandatory bin full: spill to voluntary space elsewhere,
            # then to the remote cloud.
            target = PlacementTarget.HOME_VOLUNTARY

        if target is PlacementTarget.NAMED_NODE:
            stored = yield from self._store_on_peer(meta, placement.node, ctx=ctx)
            if stored:
                return placement
            target = PlacementTarget.HOME_VOLUNTARY

        if target is PlacementTarget.HOME_VOLUNTARY:
            candidates = yield from self.decision.decide(
                DecisionPolicy.BALANCED,
                require=lambda s: s.voluntary_free_mb >= meta.size_mb,
                ctx=ctx,
            )
            for candidate in candidates:
                if candidate.node == self.name:
                    if self.voluntary.fits(meta.size_mb):
                        self.voluntary.store(meta.name, meta.size_mb)
                        meta.location = self.name
                        meta.bin_name = "voluntary"
                        return Placement(PlacementTarget.HOME_VOLUNTARY, self.name)
                    continue
                stored = yield from self._store_on_peer(meta, candidate.node, ctx=ctx)
                if stored:
                    return Placement(PlacementTarget.HOME_VOLUNTARY, candidate.node)
            target = PlacementTarget.REMOTE_CLOUD

        if target is PlacementTarget.REMOTE_CLOUD:
            if self.cloud is None:
                raise PlacementError(
                    f"object {meta.name!r}: no home capacity and no "
                    "public-cloud interface configured"
                )
            url = yield from self.cloud.store_remote(
                meta.name, meta.size_bytes, ctx=ctx
            )
            meta.location = LOCATION_REMOTE
            meta.bin_name = ""
            meta.url = url
            return Placement(PlacementTarget.REMOTE_CLOUD)

        raise PlacementError(f"unhandled placement target {target!r}")

    def _store_on_peer(self, meta: ObjectMeta, peer: str, ctx=None):
        tel, span = self._span("vstore.store_peer", ctx, peer=peer, object=meta.name)
        body = {"name": meta.name, "size_mb": meta.size_mb, "src": self.name}
        if span is not None:
            body["span"] = span.ctx_wire()
        try:
            yield self.endpoint.call(peer, MSG_STORE_VOLUNTARY, body, timeout=120.0)
        except (HostDownError, RpcTimeoutError, RemoteError) as exc:
            if span is not None:
                tel.fail(span, exc)
            return False
        if span is not None:
            tel.end(span)
        meta.location = peer
        meta.bin_name = "voluntary"
        return True

    # -- erasure-coded striping -------------------------------------------------

    def _stripe_and_place(self, meta: ObjectMeta, ctx=None):
        """Process: encode a stripe and scatter its chunks in parallel.

        The object is split into ``k`` data + ``m`` parity chunks;
        holders come from the decision engine's ranking, one chunk per
        distinct node (anything the home cloud cannot hold spills to
        the remote cloud).  All pushes run concurrently — the store
        cost is dominated by the slowest chunk, not the sum.  The
        coordinator (this node) is recorded as ``meta.location`` purely
        as the metadata anchor; the payload lives only in the chunks.
        """
        policy = self.striping
        codec = policy.codec
        tel, span = self._span(
            "vstore.stripe", ctx, object=meta.name, k=codec.k, m=codec.m
        )
        # Encoding: compute the m parity chunks over the k data slices.
        yield self.sim.timeout(policy.codec_time_s(meta.size_mb))
        chunk_mb = codec.chunk_size_mb(meta.size_mb)
        try:
            candidates = yield from self.decision.decide(
                DecisionPolicy.BALANCED,
                require=lambda s: s.voluntary_free_mb >= chunk_mb,
                ctx=span,
            )
        except (HostDownError, RpcTimeoutError, RemoteError):
            candidates = []
        plan = plan_chunk_placement([c.node for c in candidates], codec.n)
        pushes = [
            self._push_chunk(meta.name, index, chunk_mb, target, span)
            for index, target in enumerate(plan)
            if target is not None
        ]
        outcomes = yield self.sim.gather(pushes, return_exceptions=True)
        pushed: list = []
        pos = 0
        for target in plan:
            pushed.append(outcomes[pos] if target is not None else None)
            pos += target is not None
        holders: list[str] = []
        spilled = 0
        for index, target in enumerate(plan):
            if target is not None and not isinstance(pushed[index], BaseException):
                holders.append(target)
                self._count("stripe.store.placed")
                continue
            # No distinct home holder (or the push failed): the chunk
            # spills to the remote cloud, which is failure-independent
            # of every home node.
            if self.cloud is None:
                raise PlacementError(
                    f"object {meta.name!r}: chunk {index} has no home "
                    "holder and no public-cloud interface is configured"
                )
            yield from self.cloud.store_remote(
                chunk_name(meta.name, index), chunk_mb * 1024 * 1024, ctx=span
            )
            holders.append(LOCATION_REMOTE)
            spilled += 1
            self._count("stripe.store.spilled")
        meta.stripe_k = codec.k
        meta.stripe_m = codec.m
        meta.chunk_nodes = holders
        meta.location = self.name
        meta.bin_name = ""
        if span is not None:
            tel.end(span, spilled=spilled)
        return Placement(PlacementTarget.HOME_VOLUNTARY, self.name)

    def _push_chunk(self, name: str, index: int, chunk_mb: float, target, span):
        """Process: stream one chunk to its holder's voluntary bin."""
        cname = chunk_name(name, index)
        if target == self.name:
            yield self.sim.timeout(chunk_mb / self.disk_mb_s)
            if not self.voluntary.fits(chunk_mb):
                raise BinFullError("voluntary", chunk_mb, self.voluntary.free_mb)
            self.voluntary.store(cname, chunk_mb)
            return target
        body = {"name": cname, "size_mb": chunk_mb, "src": self.name}
        if span is not None:
            body["span"] = span.ctx_wire()
        yield from self._call(target, MSG_STORE_VOLUNTARY, body, timeout=120.0)
        return target

    def _pull_chunk(self, meta: ObjectMeta, index: int, span):
        """Process: bring chunk ``index`` of a stripe to this node.

        Each pull is its own telemetry span, so a scatter-gather fetch
        reconstructs as one parent with k+m ``vstore.chunk_pull``
        children.  Returns the chunk index; raises on unreachable
        holders (the gather's ``return_exceptions`` captures those).
        """
        cname = chunk_name(meta.name, index)
        holder = meta.chunk_nodes[index]
        chunk_mb = meta.size_mb / meta.stripe_k
        tel, cspan = self._span(
            "vstore.chunk_pull", span, object=meta.name, chunk=index, holder=holder
        )
        try:
            if holder == LOCATION_REMOTE:
                if self.cloud is None:
                    raise VStoreError(
                        f"chunk {cname!r} is in the remote cloud but this "
                        "node has no public-cloud interface"
                    )
                yield from self.cloud.fetch_remote(cname, ctx=cspan)
            elif holder == self.name:
                if not self.holds(cname):
                    raise ObjectNotFoundError(cname)
                yield self.sim.timeout(chunk_mb / self.disk_mb_s)
            else:
                body = {"name": cname, "to": self.name}
                if cspan is not None:
                    body["span"] = cspan.ctx_wire()
                yield from self._call(holder, MSG_FETCH, body, timeout=600.0)
        except Exception as exc:
            if cspan is not None:
                tel.fail(cspan, exc)
            raise
        if cspan is not None:
            tel.end(cspan)
        return index

    def _fetch_striped(self, meta: ObjectMeta, span):
        """Process: scatter-gather chunk pulls, first k of k+m win.

        All ``k + m`` pulls launch together; the join fires at the
        k-th success, so fetch latency is the max of the *fastest* k
        pulls and up to ``m`` dead or slow holders cost nothing but
        their parity.  Decoding is only charged when a parity chunk had
        to stand in for data (a degraded read).  When fewer than k
        chunks are reachable the full-object cloud copy (if any)
        backstops; otherwise the typed :class:`ChunksLostError` names
        the shortfall.  Returns ``(served_from, inter_node_s,
        remote_cloud_s)`` like :meth:`_fetch_with_failover`.
        """
        codec = StripeCodec(meta.stripe_k, meta.stripe_m)
        t_start = self.sim.now
        pulls = [self._pull_chunk(meta, i, span) for i in range(codec.n)]
        outcomes = yield self.sim.gather(
            pulls, count=codec.k, return_exceptions=True
        )
        arrived = [
            i for i, outcome in enumerate(outcomes) if isinstance(outcome, int)
        ]
        if codec.can_decode(len(arrived)):
            if any(codec.is_parity(i) for i in arrived):
                # Parity chunks were among the first k (they won the
                # race, or stood in for failed data holders): the
                # missing data slices must be reconstructed.
                mb_s = (
                    self.striping.codec_mb_s
                    if self.striping is not None
                    else StripingPolicy().codec_mb_s
                )
                yield self.sim.timeout(meta.size_mb / mb_s)
            # Degraded means holders actually failed, not that parity
            # merely out-raced data on a healthy cluster.
            degraded = any(
                isinstance(outcome, BaseException) for outcome in outcomes
            )
            if degraded:
                self._count("stripe.fetch.degraded")
            served_from = "stripe-degraded" if degraded else "stripe"
            return served_from, self.sim.now - t_start, 0.0
        if meta.url is not None and self.cloud is not None:
            t0 = self.sim.now
            yield from self.cloud.fetch_remote(meta.name, ctx=span)
            self._count("stripe.fetch.cloud_backstop")
            return "remote-cloud", t0 - t_start, self.sim.now - t0
        self._count("stripe.fetch.lost")
        raise ChunksLostError(meta.name, len(arrived), codec.k)

    def fetch_range(
        self,
        name: str,
        offset_mb: float,
        length_mb: float,
        to_guest: bool = True,
        ctx=None,
    ):
        """Process: FetchRange — bring only bytes [offset, offset+length).

        On a striped object just the data chunks covering the range
        move (a suffix read of a 32 MB object touches 1-2 chunks, not
        32 MB); if a covering chunk's holder is unreachable the read
        degrades to a full k-of-(k+m) decode.  Un-striped objects fall
        back to a whole-object fetch with only the range delivered to
        the guest.
        """
        tel, span = self._span(
            "vstore.fetch_range",
            ctx,
            object=name,
            offset_mb=offset_mb,
            length_mb=length_mb,
        )
        started = self.sim.now
        yield self.sim.timeout(self.op_overhead_s)
        meta, dht_s = yield from self._lookup_meta(name, ctx=span)
        self._check_access(meta)
        if offset_mb < 0 or length_mb < 0 or offset_mb + length_mb > meta.size_mb:
            raise ValueError(
                f"range [{offset_mb}, {offset_mb + length_mb}) MB outside "
                f"object {name!r} ({meta.size_mb} MB)"
            )
        self._count("stripe.fetch.range")

        inter_node_s = 0.0
        remote_s = 0.0
        if meta.is_striped:
            codec = StripeCodec(meta.stripe_k, meta.stripe_m)
            indices = codec.data_chunks_for_range(
                meta.size_mb, offset_mb, length_mb
            )
            t0 = self.sim.now
            pulls = [self._pull_chunk(meta, i, span) for i in indices]
            outcomes = yield self.sim.gather(pulls, return_exceptions=True)
            served_from = "stripe-range"
            if any(isinstance(outcome, BaseException) for outcome in outcomes):
                # A covering chunk is lost: any k of the k+m chunks
                # reconstruct every byte, so degrade to a full decode.
                self._count("stripe.fetch.range_degraded")
                served_from, _, remote_s = yield from self._fetch_striped(
                    meta, span
                )
            inter_node_s = self.sim.now - t0 - remote_s
        else:
            fetch = yield from self.fetch_object(name, to_guest=False, ctx=span)
            inter_node_s = fetch.inter_node_s
            remote_s = fetch.remote_cloud_s
            served_from = fetch.served_from

        inter_domain_s = 0.0
        if to_guest and self.xensocket is not None:
            t0 = self.sim.now
            yield from self.xensocket.transfer(length_mb * 1024 * 1024, ctx=span)
            inter_domain_s = self.sim.now - t0

        if span is not None:
            tel.end(span, served_from=served_from)
        return FetchResult(
            meta=meta,
            total_s=self.sim.now - started,
            dht_lookup_s=dht_s,
            inter_node_s=inter_node_s,
            inter_domain_s=inter_domain_s,
            remote_cloud_s=remote_s,
            served_from=served_from,
        )

    def _delete_stripe(self, meta: ObjectMeta, span):
        """Process: remove every chunk of a stripe from its holders."""
        for index, holder in enumerate(meta.chunk_nodes):
            cname = chunk_name(meta.name, index)
            if holder == LOCATION_REMOTE:
                if self.cloud is not None:
                    self.cloud.s3.delete_object(cname)
            elif holder == self.name:
                self._remove_local(cname)
            else:
                body = {"name": cname}
                if span is not None:
                    body["span"] = span.ctx_wire()
                try:
                    yield self.endpoint.call(holder, MSG_DELETE, body)
                except (HostDownError, RpcTimeoutError, RemoteError):
                    pass
        if meta.url is not None and self.cloud is not None:
            self.cloud.s3.delete_object(meta.name)

    # -- fetch ------------------------------------------------------------------

    def fetch_object(self, name: str, to_guest: bool = True, ctx=None):
        """Process: bring an object to this node (and its guest VM).

        Returns a :class:`FetchResult` with the Table I cost breakdown:
        DHT lookup, inter-node transfer (or remote-cloud download), and
        inter-domain (XenSocket) delivery.
        """
        tel, span = self._span("vstore.fetch", ctx, object=name)
        started = self.sim.now
        yield self.sim.timeout(self.op_overhead_s)
        meta, dht_s = yield from self._lookup_meta(name, ctx=span)
        self._check_access(meta)

        inter_node_s = 0.0
        remote_s = 0.0
        if meta.is_striped:
            served_from, inter_node_s, remote_s = yield from self._fetch_striped(
                meta, span
            )
        elif meta.is_remote:
            t0 = self.sim.now
            if self.cloud is None:
                raise VStoreError(
                    f"object {name!r} is in the remote cloud but this node "
                    "has no public-cloud interface"
                )
            yield from self.cloud.fetch_remote(name, ctx=span)
            remote_s = self.sim.now - t0
            served_from = "remote-cloud"
        elif meta.location == self.name and self.holds(name):
            # Local disk read.  The holds() guard matters after a
            # crash: metadata can outlive the payload (a revived node
            # without a durable backend rejoins with empty bins), and a
            # phantom local serve must fail over, not fabricate bytes.
            yield self.sim.timeout(meta.size_mb / self.disk_mb_s)
            served_from = "local"
        elif self.caller is None and not meta.replicas and meta.location != self.name:
            # Single-homed, resilience off: the original one-shot path.
            t0 = self.sim.now
            body = {"name": name, "to": self.name}
            if span is not None:
                body["span"] = span.ctx_wire()
            yield self.endpoint.call(
                meta.location,
                MSG_FETCH,
                body,
                timeout=600.0,
            )
            inter_node_s = self.sim.now - t0
            served_from = meta.location
        else:
            served_from, inter_node_s, remote_s = yield from (
                self._fetch_with_failover(meta, span)
            )

        inter_domain_s = 0.0
        if to_guest and self.xensocket is not None:
            t0 = self.sim.now
            yield from self.xensocket.transfer(meta.size_bytes, ctx=span)
            inter_domain_s = self.sim.now - t0

        if span is not None:
            tel.end(span, served_from=served_from)
        return FetchResult(
            meta=meta,
            total_s=self.sim.now - started,
            dht_lookup_s=dht_s,
            inter_node_s=inter_node_s,
            inter_domain_s=inter_domain_s,
            remote_cloud_s=remote_s,
            served_from=served_from,
        )

    def _fetch_with_failover(self, meta: ObjectMeta, span):
        """Process: pull the payload from the first source that answers.

        Tries the primary holder, then each payload replica, then the
        remote-cloud copy when one exists.  Returns ``(served_from,
        inter_node_s, remote_cloud_s)``; failed attempts stay inside
        ``inter_node_s`` so the Table I breakdown still sums to total.
        """
        t_start = self.sim.now
        sources = [meta.location]
        sources.extend(r for r in meta.replicas if r not in sources)
        if self.name in sources and self.holds(meta.name):
            # Serve our own copy before asking anyone else — a replica
            # holder should never pull the payload over the network.
            sources.remove(self.name)
            sources.insert(0, self.name)
        last_exc = None
        for src in sources:
            if src == self.name:
                if not self.holds(meta.name):
                    continue
                yield self.sim.timeout(meta.size_mb / self.disk_mb_s)
                if src != meta.location:
                    self._count("vstore.fetch.served_replica")
                return src, self.sim.now - t_start, 0.0
            body = {"name": meta.name, "to": self.name}
            if span is not None:
                body["span"] = span.ctx_wire()
            try:
                yield from self._call(src, MSG_FETCH, body, timeout=600.0)
            except (HostDownError, RpcTimeoutError, RemoteError) as exc:
                last_exc = exc
                self._count("vstore.fetch.failover")
                # An unreachable source is evidence the metadata we
                # routed on may be a stale cached copy whose owner (the
                # node that would push us updates) is gone.  Drop it so
                # the next lookup re-routes to the live owner instead
                # of failing over forever.
                if self.kv.invalidate_cached(object_key(meta.name)):
                    self._count("vstore.fetch.meta_invalidated")
                continue
            if src != meta.location:
                self._count("vstore.fetch.served_replica")
            return src, self.sim.now - t_start, 0.0
        if meta.url is not None and self.cloud is not None:
            t0 = self.sim.now
            yield from self.cloud.fetch_remote(meta.name, ctx=span)
            self._count("vstore.fetch.served_cloud")
            return "remote-cloud", t0 - t_start, self.sim.now - t0
        if last_exc is None:
            raise ObjectNotFoundError(meta.name)
        raise last_exc

    def delete_object(self, name: str, ctx=None):
        """Process: remove an object and its metadata everywhere."""
        tel, span = self._span("vstore.delete", ctx, object=name)
        meta, _ = yield from self._lookup_meta(name, ctx=span)
        if meta.is_striped:
            yield from self._delete_stripe(meta, span)
        elif meta.is_remote:
            if self.cloud is not None:
                self.cloud.s3.delete_object(name)
        elif meta.location == self.name:
            self._remove_local(name)
        else:
            body = {"name": name}
            if span is not None:
                body["span"] = span.ctx_wire()
            try:
                yield self.endpoint.call(meta.location, MSG_DELETE, body)
            except (HostDownError, RpcTimeoutError, RemoteError):
                pass
        yield from self.kv.delete(object_key(name), ctx=span)
        if span is not None:
            tel.end(span)

    def _lookup_meta(self, name: str, ctx=None):
        t0 = self.sim.now
        try:
            value = yield from self.kv.get(object_key(name), ctx=ctx)
        except KeyNotFoundError:
            raise ObjectNotFoundError(name) from None
        return ObjectMeta.from_wire(value), self.sim.now - t0

    def _check_access(self, meta: ObjectMeta) -> None:
        """Enforce the object's access level for this requesting device.

        Devices within one home cloud share the "home" level; "private"
        objects are only readable by their creating device.  (Cross-home
        federation performs its own "public"-only check.)
        """
        if not meta.readable_by(self.name, same_home=True):
            raise AccessDeniedError(meta.name, self.name)

    def _remove_local(self, name: str) -> None:
        if name in self.mandatory:
            self.mandatory.remove(name)
        elif name in self.voluntary:
            self.voluntary.remove(name)

    def holds(self, name: str) -> bool:
        """Is the object physically stored in one of this node's bins?"""
        return name in self.mandatory or name in self.voluntary

    def inventory(self) -> dict:
        """What this node physically stores, by bin."""
        return {
            "mandatory": {
                name: self.mandatory.size_of(name)
                for name in self.mandatory.names()
            },
            "voluntary": {
                name: self.voluntary.size_of(name)
                for name in self.voluntary.names()
            },
            "mandatory_free_mb": self.mandatory.free_mb,
            "voluntary_free_mb": self.voluntary.free_mb,
            "staged": list(self.staged),
        }

    # -- process -----------------------------------------------------------------

    def process(
        self,
        name: str,
        qualified_service: str,
        policy: DecisionPolicy = DecisionPolicy.PERFORMANCE,
        return_output: bool = True,
        ctx=None,
    ):
        """Process: run a service on a stored object (Section III-B).

        Placement follows the paper's fetch-and-process decision:

        1. if the requesting node hosts the service and has the
           resources, the object is fetched and processed here;
        2. otherwise, if the object's owner hosts the service, it runs
           there;
        3. otherwise the service's registry entry supplies the
           candidate set (including EC2 when configured) and the
           completion-time estimate picks the target.

        Returns a :class:`ProcessResult`; all timing includes the
        decision process itself, as the paper's results do.
        """
        tel, span = self._span(
            "vstore.process", ctx, object=name, service=qualified_service
        )
        started = self.sim.now
        yield self.sim.timeout(self.op_overhead_s)
        meta, dht_s = yield from self._lookup_meta(name, ctx=span)
        self._check_access(meta)
        decision_t0 = self.sim.now
        target, estimates, _snapshots = yield from self._choose_processing_target(
            meta, qualified_service, policy, ctx=span
        )
        decision_s = self.sim.now - decision_t0

        move_t0 = self.sim.now
        if target == "@ec2":
            result = yield from self._process_on_ec2(
                meta, qualified_service, return_output
            )
            move_s = result.pop("move_s")
            executed_on = self.ec2.name
            output_mb = result["output_mb"]
            execute_s = result["execute_s"]
        elif target == self.name:
            yield from self._ensure_local(meta, ctx=span)
            move_s = self.sim.now - move_t0
            exec_t0 = self.sim.now
            service = self.registry.local[qualified_service]
            domain = self.guest_domain or self.dom0_domain
            if domain is None:
                raise VStoreError(f"{self.name} has no domain to execute in")
            svc_result = yield from service.execute(domain, meta.size_mb, ctx=span)
            execute_s = self.sim.now - exec_t0
            executed_on = self.name
            output_mb = svc_result.output_mb
        else:
            body = {
                "name": name,
                "service": qualified_service,
                "owner": meta.location,
                "size_mb": meta.size_mb,
                "reply_to": self.name if return_output else None,
            }
            if meta.replicas:
                body["replicas"] = list(meta.replicas)
            if meta.is_striped:
                body["stripe"] = {
                    "k": meta.stripe_k,
                    "m": meta.stripe_m,
                    "chunk_nodes": list(meta.chunk_nodes),
                    "url": meta.url,
                }
            if span is not None:
                body["span"] = span.ctx_wire()
            reply = yield from self._call(
                target,
                MSG_PROCESS_REMOTE,
                body,
                timeout=3600.0,
            )
            move_s = reply["move_s"]
            execute_s = reply["execute_s"]
            output_mb = reply["output_mb"]
            executed_on = target

        if span is not None:
            tel.end(span, executed_on=executed_on)
        return ProcessResult(
            object_name=name,
            service=qualified_service,
            executed_on=executed_on,
            output_mb=output_mb,
            total_s=self.sim.now - started,
            decision_s=decision_s + dht_s,
            move_s=move_s,
            execute_s=execute_s,
            estimates=estimates,
        )

    def process_pipeline(
        self,
        name: str,
        qualified_services: list[str],
        policy: DecisionPolicy = DecisionPolicy.PERFORMANCE,
        return_output: bool = True,
        ctx=None,
    ):
        """Process: run a multi-step pipeline over one stored object.

        The surveillance use case invokes "a process operation ... on a
        set of stored images, to first perform face detection, and next
        face recognition processing on each image" (Section III-B).
        The argument object moves to the chosen target *once*; the
        steps execute back to back there.  The target minimizes the
        summed completion-time estimate across all steps.
        """
        if not qualified_services:
            raise ValueError("pipeline needs at least one service")
        tel, span = self._span(
            "vstore.process_pipeline",
            ctx,
            object=name,
            services="+".join(qualified_services),
        )
        started = self.sim.now
        yield self.sim.timeout(self.op_overhead_s)
        meta, dht_s = yield from self._lookup_meta(name, ctx=span)
        self._check_access(meta)
        decision_t0 = self.sim.now
        per_service = []
        all_snapshots: dict[str, ResourceSnapshot] = {}
        for qs in qualified_services:
            target, estimates, snapshots = yield from self._choose_processing_target(
                meta, qs, policy, ctx=span
            )
            per_service.append((qs, target, estimates))
            all_snapshots.update(snapshots)
        # One target for the whole pipeline: the policy-preferred node
        # minimizing the summed estimates (falling back to the first
        # step's choice when estimates are unavailable).
        # The argument moves to the pipeline target once, so movement
        # and locate costs count once per candidate; execution and
        # setup accumulate across the steps.
        base: dict[str, float] = {}
        work: dict[str, float] = {}
        counts: dict[str, int] = {}
        for _qs, target, estimates in per_service:
            for est in estimates:
                base[est.node] = max(
                    base.get(est.node, 0.0), est.move_s + est.locate_s
                )
                work[est.node] = (
                    work.get(est.node, 0.0) + est.execute_s + est.setup_s
                )
                counts[est.node] = counts.get(est.node, 0) + 1
        totals = {n: base[n] + work[n] for n in base}
        # Only nodes able to run every step qualify.
        eligible = [n for n, c in counts.items() if c == len(qualified_services)]
        if eligible:
            target = min(
                eligible,
                key=lambda n: self._policy_rank(
                    policy, all_snapshots[n], totals[n]
                ),
            )
        else:
            target = per_service[0][1]
        decision_s = self.sim.now - decision_t0

        if target == "@ec2":
            move_t0 = self.sim.now
            source = meta.location if not meta.is_remote else self.name
            if meta.is_remote:
                yield self.sim.timeout(meta.size_mb / 200.0)
            else:
                yield from self.ec2.upload_input(source, meta.size_bytes)
            move_s = self.sim.now - move_t0
            exec_t0 = self.sim.now
            output_mb = meta.size_mb
            for qs in qualified_services:
                result = yield from self.ec2.run_service(qs, meta.size_mb)
                output_mb = result.output_mb
            execute_s = self.sim.now - exec_t0
            if return_output:
                yield from self.ec2.download_output(
                    self.name, output_mb * 1024 * 1024
                )
            executed_on = self.ec2.name
        elif target == self.name:
            move_t0 = self.sim.now
            yield from self._ensure_local(meta, ctx=span)
            move_s = self.sim.now - move_t0
            exec_t0 = self.sim.now
            domain = self.guest_domain or self.dom0_domain
            output_mb = meta.size_mb
            for qs in qualified_services:
                service = self.registry.local[qs]
                result = yield from service.execute(domain, meta.size_mb, ctx=span)
                output_mb = result.output_mb
            execute_s = self.sim.now - exec_t0
            executed_on = self.name
        else:
            body = {
                "name": name,
                "services": qualified_services,
                "owner": meta.location,
                "size_mb": meta.size_mb,
                "reply_to": self.name if return_output else None,
            }
            if meta.replicas:
                body["replicas"] = list(meta.replicas)
            if meta.is_striped:
                body["stripe"] = {
                    "k": meta.stripe_k,
                    "m": meta.stripe_m,
                    "chunk_nodes": list(meta.chunk_nodes),
                    "url": meta.url,
                }
            if span is not None:
                body["span"] = span.ctx_wire()
            reply = yield from self._call(
                target,
                MSG_PROCESS_PIPELINE,
                body,
                timeout=3600.0,
            )
            move_s = reply["move_s"]
            execute_s = reply["execute_s"]
            output_mb = reply["output_mb"]
            executed_on = target

        if span is not None:
            tel.end(span, executed_on=executed_on)
        return ProcessResult(
            object_name=name,
            service="+".join(qualified_services),
            executed_on=executed_on,
            output_mb=output_mb,
            total_s=self.sim.now - started,
            decision_s=decision_s + dht_s,
            move_s=move_s,
            execute_s=execute_s,
        )

    def fetch_process(self, name: str, qualified_service: str, ctx=None):
        """Process: fetch an object with processing attached.

        "When the node storing the object receives the request, it uses
        the service identifier to first determine if the requesting
        node is capable of executing the service itself" — in which
        case the object is simply fetched and processed in the
        requester's guest domain; otherwise the processing is placed
        like a regular process operation and only the (usually smaller)
        output moves.
        """
        started = self.sim.now
        snapshot = self.snapshot()
        service = self.registry.local.get(qualified_service)
        if (
            service is not None
            and snapshot is not None
            and service.profile.admits(snapshot)
        ):
            fetch = yield from self.fetch_object(name, ctx=ctx)
            domain = self.guest_domain or self.dom0_domain
            svc_result = yield from service.execute(domain, fetch.meta.size_mb, ctx=ctx)
            return ProcessResult(
                object_name=name,
                service=qualified_service,
                executed_on=self.name,
                output_mb=svc_result.output_mb,
                total_s=self.sim.now - started,
                move_s=fetch.total_s,
                execute_s=svc_result.elapsed_s,
            )
        return (yield from self.process(name, qualified_service, ctx=ctx))

    # -- processing-target selection -------------------------------------------

    def _choose_processing_target(
        self,
        meta: ObjectMeta,
        qualified_service: str,
        policy: DecisionPolicy,
        ctx=None,
    ):
        """Pick where to run a service, returning (target, estimates).

        "The destination of the service execution is chosen ... by
        selecting the most suitable of all possible locations that
        support the service" (Section III-B): every node advertising
        the service in the registry (plus EC2 when configured) gets a
        completion-time estimate — locate + argument movement +
        execution — and the minimum wins.  ``"@ec2"`` is the marker for
        the configured EC2 instance.
        """
        service = self.registry.local.get(qualified_service)
        ec2_has_it = self.ec2 is not None and qualified_service in self.ec2.services
        try:
            entry = yield from self.registry.lookup(qualified_service, ctx=ctx)
            hosts = list(entry["nodes"])
            profile = self.registry.profile_of(entry)
            admits = self.registry.admitter(entry)
        except KeyNotFoundError:
            # Never registered in the home cloud; EC2 (or a local
            # deployment) may still carry it.
            if not ec2_has_it:
                if service is not None:
                    return self.name, [], {}
                raise ServiceUnavailableError(qualified_service) from None
            hosts = []
            profile = service.profile if service is not None else None
            if profile is None:
                from repro.services import ServiceProfile

                profile = ServiceProfile()
            admits = service.admits if service is not None else profile.admits

        estimates: list[PlacementEstimate] = []
        snapshots: dict[str, ResourceSnapshot] = {}
        reference = self._service_for_estimation(qualified_service, profile)
        candidates = yield from self.decision.decide(
            policy, require=admits, among=hosts, ctx=ctx
        )
        # Movement rides the same network we have been observing: cap
        # every candidate's advertised bandwidth by our own recent
        # experience, so the decision adapts to degraded conditions
        # even before the candidates republish (future work iv).
        own = self.snapshot()
        observed_mbps = own.bandwidth_mbps if own is not None else None
        for candidate in candidates:
            snapshot = candidate.snapshot
            if (
                observed_mbps is not None
                and snapshot.bandwidth_mbps > observed_mbps
            ):
                from dataclasses import replace

                snapshot = replace(snapshot, bandwidth_mbps=observed_mbps)
            estimates.append(
                estimate_completion(
                    reference,
                    meta.size_mb,
                    snapshot,
                    meta.location,
                    setup_s=self._setup_estimate_s(
                        reference, candidate.node, qualified_service
                    ),
                )
            )
            snapshots[candidate.node] = snapshot
        if ec2_has_it:
            ec2_snapshot = ResourceSnapshot(
                node="@ec2",
                cpu_cores=self.ec2.profile.cpu_cores,
                cpu_ghz=self.ec2.profile.cpu_ghz,
                cpu_load=self.ec2.hypervisor.instantaneous_load(),
                mem_total_mb=self.ec2.profile.mem_mb,
                mem_free_mb=self.ec2.profile.mem_mb,
                bandwidth_mbps=self._uplink_mbps(),
                taken_at=self.sim.now,
            )
            ec2_service = self.ec2.services[qualified_service]
            ec2_setup = (
                0.0
                if ec2_service.is_warm(self.ec2.domain)
                else ec2_service.setup_mb / self.ec2.profile.disk_mb_s
            )
            estimates.append(
                estimate_completion(
                    reference,
                    meta.size_mb,
                    ec2_snapshot,
                    meta.location,
                    setup_s=ec2_setup,
                )
            )
            snapshots["@ec2"] = ec2_snapshot
        if not estimates:
            if service is not None:
                # Last resort: run it here even if resources are tight.
                return self.name, [], {}
            raise ServiceUnavailableError(qualified_service)
        best = min(
            estimates,
            key=lambda e: self._policy_rank(policy, snapshots[e.node], e.total_s),
        )
        return best.node, estimates, snapshots

    @staticmethod
    def _policy_rank(
        policy: DecisionPolicy, snapshot: ResourceSnapshot, total_s: float
    ) -> tuple:
        """Final-selection ordering under a decision policy.

        PERFORMANCE minimizes estimated completion time; BALANCED
        prefers lightly loaded nodes; BATTERY refuses to drain portable
        devices before considering speed.
        """
        if policy is DecisionPolicy.BALANCED:
            return (round(snapshot.cpu_load, 2), total_s)
        if policy is DecisionPolicy.BATTERY:
            return (0 if snapshot.on_mains else 1, total_s)
        return (0, total_s)

    def _setup_estimate_s(
        self, reference: Service, candidate: str, qualified_service: str
    ) -> float:
        """Cold-start cost expected at a candidate.

        We know our own warmth exactly; for remote candidates the
        conservative assumption is a cold model load (the surveillance
        node that runs the pipeline continuously is the one that
        benefits — Figure 7's S1).
        """
        if reference.setup_mb <= 0:
            return 0.0
        if candidate == self.name:
            service = self.registry.local.get(qualified_service)
            domain = self.guest_domain or self.dom0_domain
            if service is not None and domain is not None and service.is_warm(domain):
                return 0.0
        return reference.setup_mb / self.disk_mb_s

    def _service_for_estimation(self, qualified_service, profile) -> Service:
        local = self.registry.local.get(qualified_service)
        if local is not None:
            return local
        # Estimate with a generic model scaled by the profile when the
        # service is not deployed locally; candidates that host it will
        # execute the real model.
        from repro.services import ComputeModel

        return Service(
            qualified_service.split("#")[0],
            ComputeModel(cycles_per_mb=2e9),
            profile=profile,
            service_id=qualified_service.split("#")[-1],
        )

    def _snapshot_of(self, node_name: str):
        from repro.monitoring import resource_key

        try:
            value = yield from self.kv.get(resource_key(node_name))
        except (KeyNotFoundError, HostDownError, RpcTimeoutError, RemoteError):
            return None
        return ResourceSnapshot.from_wire(value)

    def _uplink_mbps(self) -> float:
        """Rough uplink estimate used for EC2 placement estimates."""
        snapshot = self.snapshot()
        if snapshot is not None:
            return min(snapshot.bandwidth_mbps, 4.5)
        return 1.5

    def _ensure_local(self, meta: ObjectMeta, ctx=None):
        """Bring the argument object to this node if it is elsewhere."""
        if meta.is_striped:
            yield from self._fetch_striped(meta, ctx)
            return
        if meta.location == self.name:
            yield self.sim.timeout(meta.size_mb / self.disk_mb_s)
            return
        if meta.is_remote:
            if self.cloud is None:
                raise VStoreError(f"cannot reach remote object {meta.name!r}")
            yield from self.cloud.fetch_remote(meta.name, ctx=ctx)
            return
        if self.caller is not None or meta.replicas:
            yield from self._fetch_with_failover(meta, ctx)
            return
        body = {"name": meta.name, "to": self.name}
        if self.sim.telemetry is not None and ctx is not None:
            body["span"] = wire_ctx(ctx)
        yield self.endpoint.call(
            meta.location,
            MSG_FETCH,
            body,
            timeout=600.0,
        )

    def _process_on_ec2(self, meta: ObjectMeta, qualified_service, return_output):
        move_t0 = self.sim.now
        source = meta.location if not meta.is_remote else self.name
        if meta.is_remote:
            # The instance pulls from S3 — both sit in the cloud, so the
            # movement is cloud-internal and fast.
            yield self.sim.timeout(meta.size_mb / 200.0)
        else:
            yield from self.ec2.upload_input(source, meta.size_bytes)
        move_s = self.sim.now - move_t0
        exec_t0 = self.sim.now
        result = yield from self.ec2.run_service(qualified_service, meta.size_mb)
        execute_s = self.sim.now - exec_t0
        if return_output:
            yield from self.ec2.download_output(
                self.name, result.output_mb * 1024 * 1024
            )
        return {
            "output_mb": result.output_mb,
            "execute_s": execute_s,
            "move_s": move_s,
        }

    def _pull_argument(self, body, span):
        """Process: bring a process argument here from its holders.

        Tries the recorded owner first, then any payload replicas the
        requester passed along (resilience on); owners in the remote
        cloud download directly.
        """
        stripe = body.get("stripe")
        if stripe is not None:
            # The argument is erasure-coded: reassemble it here from
            # the chunk map the requester passed along.
            meta = ObjectMeta(
                name=body["name"],
                size_mb=body["size_mb"],
                location=body["owner"],
                url=stripe.get("url"),
                stripe_k=stripe["k"],
                stripe_m=stripe["m"],
                chunk_nodes=list(stripe["chunk_nodes"]),
            )
            yield from self._fetch_striped(meta, span)
            return
        owner = body["owner"]
        if owner == LOCATION_REMOTE:
            if self.cloud is None:
                raise VStoreError("no cloud interface for remote argument")
            yield from self.cloud.fetch_remote(body["name"], ctx=span)
            return
        sources = [owner]
        sources.extend(r for r in body.get("replicas", []) if r not in sources)
        last_exc = None
        for src in sources:
            if src == self.name:
                continue
            fetch_body = {"name": body["name"], "to": self.name}
            if span is not None:
                fetch_body["span"] = span.ctx_wire()
            try:
                yield from self._call(src, MSG_FETCH, fetch_body, timeout=600.0)
            except (HostDownError, RpcTimeoutError, RemoteError) as exc:
                last_exc = exc
                continue
            return
        if last_exc is None:
            raise VStoreError(
                f"no reachable source for argument {body['name']!r}"
            )
        raise last_exc

    # -- resilience: payload replication --------------------------------------

    def replicate_local(self, name: str, size_mb: float, targets: list[str], ctx=None):
        """Process: push copies of a locally held object to ``targets``.

        The payload is read from disk once, then streamed to each
        target's voluntary bin.  Returns ``{"stored": [...]}`` naming
        the targets that accepted a copy (the repairer's contract).
        """
        if not self.holds(name):
            raise ObjectNotFoundError(name)
        yield self.sim.timeout(size_mb / self.disk_mb_s)
        stored = []
        for target in targets:
            if target == self.name:
                continue
            body = {"name": name, "size_mb": size_mb, "src": self.name}
            if ctx is not None:
                body["span"] = wire_ctx(ctx)
            try:
                yield from self._call(
                    target, MSG_STORE_VOLUNTARY, body, timeout=120.0
                )
            except (HostDownError, RpcTimeoutError, RemoteError):
                continue
            stored.append(target)
        return {"stored": stored}

    # -- RPC handlers ---------------------------------------------------------------

    def _register_handlers(self) -> None:
        ep = self.endpoint
        ep.register(MSG_STORE_VOLUNTARY, self._handle_store_voluntary)
        ep.register(MSG_FETCH, self._handle_fetch)
        ep.register(MSG_PROCESS_REMOTE, self._handle_process_remote)
        ep.register(MSG_PROCESS_PIPELINE, self._handle_process_pipeline)
        ep.register(MSG_DELETE, self._handle_delete)
        ep.register(MSG_PING, self._handle_ping)
        ep.register(MSG_REPLICATE, self._handle_replicate)

    def _handle_store_voluntary(self, request: Request):
        body = request.body
        tel, span = self._span(
            "vstore.serve_store", body.get("span"), src=body["src"]
        )
        if not self.voluntary.fits(body["size_mb"]):
            exc = BinFullError("voluntary", body["size_mb"], self.voluntary.free_mb)
            if span is not None:
                tel.fail(span, exc)
            raise exc
        yield from self.transfer.send(
            body["src"], self.name, body["size_mb"] * 1024 * 1024, ctx=span
        )
        self.voluntary.store(body["name"], body["size_mb"])
        if span is not None:
            tel.end(span)
        return {"stored": True, "bin": "voluntary"}

    def _handle_fetch(self, request: Request):
        body = request.body
        name = body["name"]
        tel, span = self._span("vstore.serve_fetch", body.get("span"), object=name)
        if name in self.mandatory:
            size_mb = self.mandatory.size_of(name)
        elif name in self.voluntary:
            size_mb = self.voluntary.size_of(name)
        else:
            exc = ObjectNotFoundError(name)
            if span is not None:
                tel.fail(span, exc)
            raise exc
        # Disk read, then the zero-copy push to the requester.
        yield self.sim.timeout(size_mb / self.disk_mb_s)
        yield from self.transfer.send(
            self.name, body["to"], size_mb * 1024 * 1024, ctx=span
        )
        if span is not None:
            tel.end(span)
        return {"size_mb": size_mb}

    def _handle_process_remote(self, request: Request):
        body = request.body
        tel, span = self._span(
            "vstore.serve_process", body.get("span"), service=body["service"]
        )
        service = self.registry.local.get(body["service"])
        if service is None:
            exc = ServiceUnavailableError(body["service"])
            if span is not None:
                tel.fail(span, exc)
            raise exc
        move_t0 = self.sim.now
        if not self.holds(body["name"]):
            yield from self._pull_argument(body, span)
        move_s = self.sim.now - move_t0
        exec_t0 = self.sim.now
        domain = self.guest_domain or self.dom0_domain
        if domain is None:
            raise VStoreError(f"{self.name} has no domain to execute in")
        result = yield from service.execute(domain, body["size_mb"], ctx=span)
        execute_s = self.sim.now - exec_t0
        reply_to = body.get("reply_to")
        if reply_to and reply_to != self.name and result.output_mb > 0:
            yield from self.transfer.send(
                self.name, reply_to, result.output_mb * 1024 * 1024, ctx=span
            )
        if span is not None:
            tel.end(span)
        return {
            "output_mb": result.output_mb,
            "execute_s": execute_s,
            "move_s": move_s,
        }

    def _handle_process_pipeline(self, request: Request):
        body = request.body
        tel, span = self._span(
            "vstore.serve_pipeline",
            body.get("span"),
            services="+".join(body["services"]),
        )
        services = []
        for qs in body["services"]:
            service = self.registry.local.get(qs)
            if service is None:
                exc = ServiceUnavailableError(qs)
                if span is not None:
                    tel.fail(span, exc)
                raise exc
            services.append(service)
        move_t0 = self.sim.now
        if not self.holds(body["name"]):
            yield from self._pull_argument(body, span)
        move_s = self.sim.now - move_t0
        exec_t0 = self.sim.now
        domain = self.guest_domain or self.dom0_domain
        if domain is None:
            raise VStoreError(f"{self.name} has no domain to execute in")
        output_mb = body["size_mb"]
        for service in services:
            result = yield from service.execute(domain, body["size_mb"], ctx=span)
            output_mb = result.output_mb
        execute_s = self.sim.now - exec_t0
        reply_to = body.get("reply_to")
        if reply_to and reply_to != self.name and output_mb > 0:
            yield from self.transfer.send(
                self.name, reply_to, output_mb * 1024 * 1024, ctx=span
            )
        if span is not None:
            tel.end(span)
        return {
            "output_mb": output_mb,
            "execute_s": execute_s,
            "move_s": move_s,
        }

    def _handle_delete(self, request: Request) -> dict:
        self._remove_local(request.body["name"])
        return {"deleted": True}

    def _handle_ping(self, request: Request) -> dict:
        """Cheap liveness + holdership probe (repairer's health check)."""
        return {"alive": True, "holds": self.holds(request.body["name"])}

    def _handle_replicate(self, request: Request):
        """Serve a repairer's command to push payload copies out."""
        body = request.body
        tel, span = self._span(
            "vstore.serve_replicate",
            body.get("span"),
            object=body["name"],
            targets=len(body["targets"]),
        )
        try:
            reply = yield from self.replicate_local(
                body["name"], body["size_mb"], body["targets"], ctx=span
            )
        except ObjectNotFoundError as exc:
            if span is not None:
                tel.fail(span, exc)
            raise
        if span is not None:
            tel.end(span, stored=len(reply["stored"]))
        return reply
