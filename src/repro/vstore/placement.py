"""Completion-time estimation for service placement.

Choosing where a ``process`` operation runs "considers the time to
locate the target node, the associated data movement costs for the
argument and resulting object, and the service processing requirements
and execution time ...  In our current implementation, we assume
constant target-location time and we approximate the data movement
costs by considering the movement of the argument object only."
(Section III-B.)

:func:`estimate_completion` mirrors that model: a constant locate cost,
argument movement at the candidate's advertised bandwidth, and an
execution estimate from the candidate's resource snapshot (idle compute
plus the memory-thrash factor its free memory implies).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.monitoring import ResourceSnapshot
from repro.services import Service

__all__ = ["PlacementEstimate", "estimate_completion"]

#: The paper's "constant target-location time" assumption, seconds.
DEFAULT_LOCATE_S = 0.05


@dataclass
class PlacementEstimate:
    """Breakdown of a candidate's estimated completion time."""

    node: str
    locate_s: float
    move_s: float
    execute_s: float
    #: Model/cascade load for a cold target (0 when assumed warm).
    setup_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.locate_s + self.move_s + self.execute_s + self.setup_s


def estimate_completion(
    service: Service,
    input_mb: float,
    snapshot: ResourceSnapshot,
    local_node: str,
    locate_s: float = DEFAULT_LOCATE_S,
    thrash_coefficient: float = 3.0,
    setup_s: float = 0.0,
) -> PlacementEstimate:
    """Estimate how long ``service`` over ``input_mb`` takes on a node.

    Data movement is free when the candidate is the node already
    holding the argument object (``local_node``); otherwise the
    argument moves at the candidate's advertised bandwidth.  Execution
    divides the cycle count across the lesser of the service's
    parallelism and the node's execution width (the guest VM's VCPUs
    when published, else physical cores), derated by current load, and
    multiplies in the thrash factor when the candidate's free memory
    cannot hold the working set.  ``setup_s`` charges the model load of
    a cold target.
    """
    is_local = snapshot.node == local_node
    move_s = 0.0
    if not is_local:
        bandwidth_bytes = snapshot.bandwidth_mbps * 1e6 / 8.0
        if bandwidth_bytes <= 0:
            move_s = float("inf")
        else:
            move_s = input_mb * 1024 * 1024 / bandwidth_bytes

    width = snapshot.vcpus if snapshot.vcpus > 0 else snapshot.cpu_cores
    usable_cores = max(1.0, min(service.profile.parallelism, width)) * (
        1.0 - snapshot.cpu_load
    )
    usable_cores = max(usable_cores, 0.25)  # a fully loaded node still trickles
    rate = usable_cores * snapshot.cpu_ghz * 1e9

    working_set = service.working_set_mb(input_mb)
    thrash = 1.0
    if snapshot.mem_free_mb > 0 and working_set > snapshot.mem_free_mb:
        thrash = 1.0 + thrash_coefficient * (
            working_set / snapshot.mem_free_mb - 1.0
        )
    execute_s = service.cycles(input_mb) * thrash / rate

    return PlacementEstimate(
        node=snapshot.node,
        locate_s=0.0 if is_local else locate_s,
        move_s=move_s,
        execute_s=execute_s,
        setup_s=setup_s,
    )
