"""Simulated Amazon-S3-style object storage.

The prototype wrapped the s3tools interface: "a blocking call that uses
a TCP/IP-based data transfer mechanism" (Section IV).  Our S3 lives on
a ``cloud``-group network host; puts ride the home→cloud uplink route
and gets ride the cloud→home downlink route, both of which carry the
TCP slow-start/window-cap/ISP-shaping model that produces the paper's
Figure 5 throughput curve.

Objects are metadata only (key → size); the bytes themselves are what
the network model moves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net import Network, TransferReport

__all__ = ["S3Object", "S3Store"]


class S3Error(Exception):
    """S3-side failures (missing objects, bad arguments)."""


@dataclass
class S3Object:
    """One stored object's cloud-side metadata."""

    key: str
    size_bytes: float
    stored_at: float

    @property
    def size_mb(self) -> float:
        return self.size_bytes / (1024 * 1024)


class S3Store:
    """The cloud-side storage service.

    ``request_overhead_s`` models per-request authentication/HTTP
    overhead on top of the data transfer itself.
    """

    def __init__(
        self,
        network: Network,
        host_name: str = "s3",
        bucket: str = "vstore-bucket",
        request_overhead_s: float = 0.08,
    ) -> None:
        self.network = network
        self.bucket = bucket
        self.request_overhead_s = request_overhead_s
        if host_name not in network.hosts:
            network.add_host(host_name, group="cloud")
        self.host_name = host_name
        self.objects: dict[str, S3Object] = {}
        self.puts = 0
        self.gets = 0

    @property
    def sim(self):
        return self.network.sim

    def url_for(self, key: str) -> str:
        """The S3 URL stored as the object's location in the KV store."""
        return f"s3://{self.bucket}/{key}"

    def contains(self, key: str) -> bool:
        return key in self.objects

    def size_of(self, key: str) -> float:
        """Size in bytes; raises S3Error for unknown keys."""
        obj = self.objects.get(key)
        if obj is None:
            raise S3Error(f"no such object {key!r} in bucket {self.bucket!r}")
        return obj.size_bytes

    # -- blocking data operations (processes) --------------------------------

    def put_object(self, src_node: str, key: str, nbytes: float, ctx=None):
        """Process: upload ``nbytes`` from ``src_node``; returns the URL."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        tel = self.sim.telemetry
        span = (
            tel.begin(
                "s3.put",
                layer="cloud",
                node=self.host_name,
                parent=ctx,
                key=key,
                src=src_node,
                bytes=nbytes,
            )
            if tel is not None
            else None
        )
        yield self.sim.timeout(self.request_overhead_s)
        yield self.network.transfer(src_node, self.host_name, nbytes)
        self.objects[key] = S3Object(key, float(nbytes), self.sim.now)
        self.puts += 1
        if span is not None:
            tel.end(span)
        return self.url_for(key)

    def get_object(self, dst_node: str, key: str, ctx=None):
        """Process: download the object to ``dst_node``.

        Returns the network :class:`TransferReport`.  Raises
        :class:`S3Error` for unknown keys.
        """
        obj = self.objects.get(key)
        if obj is None:
            raise S3Error(f"no such object {key!r} in bucket {self.bucket!r}")
        tel = self.sim.telemetry
        span = (
            tel.begin(
                "s3.get",
                layer="cloud",
                node=self.host_name,
                parent=ctx,
                key=key,
                dst=dst_node,
                bytes=obj.size_bytes,
            )
            if tel is not None
            else None
        )
        yield self.sim.timeout(self.request_overhead_s)
        report: TransferReport = yield self.network.transfer(
            self.host_name, dst_node, obj.size_bytes
        )
        self.gets += 1
        if span is not None:
            tel.end(span)
        return report

    def delete_object(self, key: str) -> None:
        """Remove the object's metadata (no data transfer needed)."""
        if key not in self.objects:
            raise S3Error(f"no such object {key!r} in bucket {self.bucket!r}")
        del self.objects[key]

    @property
    def stored_bytes(self) -> float:
        return sum(o.size_bytes for o in self.objects.values())
