"""Simulated EC2 compute instances.

The paper offloads face detection/recognition to "an extra large EC2
para-virtualized instance with five 2.9 GHZ CPUs with 14 GB memory"
(S3 in Figure 7).  An :class:`Ec2Instance` is a cloud-group network
host backed by the virtualization substrate: one hypervisor, one
para-virtualized domain sized to the instance type.
"""

from __future__ import annotations

from repro.net import Network
from repro.services import Service, ServiceResult
from repro.virt import EC2_XL, DeviceProfile, Domain, Hypervisor

__all__ = ["Ec2Instance"]


class Ec2Instance:
    """One rented cloud VM that can run VStore++ services."""

    def __init__(
        self,
        network: Network,
        name: str = "ec2-xl-1",
        profile: DeviceProfile = EC2_XL,
        boot_overhead_s: float = 0.5,
    ) -> None:
        self.network = network
        self.profile = profile
        self.boot_overhead_s = boot_overhead_s
        if name not in network.hosts:
            network.add_host(name, group="cloud")
        self.name = name
        self.hypervisor = Hypervisor(network.sim, profile)
        # A para-virtualized instance is one big domain on the host.
        self.domain: Domain = self.hypervisor.create_domain(
            name, vcpus=profile.cpu_cores, mem_mb=profile.mem_mb
        )
        #: Services deployed on this instance, by qualified name.
        self.services: dict[str, Service] = {}
        self._booted = False

    @property
    def sim(self):
        return self.network.sim

    def deploy(self, service: Service) -> None:
        """Install a service image on the instance."""
        self.services[service.qualified_name] = service

    def boot(self):
        """Process: first-use instance start-up cost (paid once)."""
        if not self._booted:
            yield self.sim.timeout(self.boot_overhead_s)
            self._booted = True

    def upload_input(self, src_node: str, nbytes: float):
        """Process: move service input from a home node to the instance."""
        yield self.network.transfer(src_node, self.name, nbytes)

    def download_output(self, dst_node: str, nbytes: float):
        """Process: return a result object to a home node."""
        if nbytes > 0:
            yield self.network.transfer(self.name, dst_node, nbytes)
        return nbytes

    def run_service(self, qualified_name: str, input_mb: float):
        """Process: execute a deployed service on already-present data.

        Returns the :class:`ServiceResult`.  Raises KeyError if the
        service is not deployed.
        """
        service = self.services[qualified_name]
        yield from self.boot()
        result: ServiceResult = yield from service.execute(self.domain, input_mb)
        return result

    def offload(self, src_node: str, qualified_name: str, input_mb: float):
        """Process: the full offload path — upload, execute, download.

        Returns (ServiceResult, total_elapsed_s).
        """
        started = self.sim.now
        nbytes = input_mb * 1024 * 1024
        yield from self.upload_input(src_node, nbytes)
        result = yield from self.run_service(qualified_name, input_mb)
        yield from self.download_output(src_node, result.output_mb * 1024 * 1024)
        return result, self.sim.now - started
