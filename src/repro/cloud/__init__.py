"""Simulated public cloud: S3-style storage and EC2-style compute.

Public surface:

* :class:`S3Store`, :class:`S3Object`, :class:`S3Error` — blocking
  object storage behind the uplink.
* :class:`Ec2Instance` — rentable compute with the EC2-XL profile.
* :class:`PublicCloudInterface` — the per-node (or gateway-routed)
  doorway VStore++ uses.
"""

from repro.cloud.ec2 import Ec2Instance
from repro.cloud.interface import PublicCloudInterface
from repro.cloud.s3 import S3Error, S3Object, S3Store

__all__ = [
    "S3Store",
    "S3Object",
    "S3Error",
    "Ec2Instance",
    "PublicCloudInterface",
]
