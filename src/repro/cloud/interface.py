"""The per-node public-cloud interface module.

"A key component of VStore++ is its ability to interface the home cloud
infrastructure with remote public clouds ...  One or more nodes in the
home cloud support a public cloud interface module, responsible for
routing all remote cloud interactions.  In our current implementation,
the VStore++ domain on each node includes an interface to Amazon's S3
storage cloud, but other implementations, where the public cloud
interactions are performed only via some subset of designated nodes ...
are possible." (Section III-C.)

:class:`PublicCloudInterface` supports both modes: every node talks to
S3 directly, or traffic relays through a designated gateway node.
"""

from __future__ import annotations

from typing import Optional

from repro.cloud.s3 import S3Store
from repro.net import Network

__all__ = ["PublicCloudInterface"]


class PublicCloudInterface:
    """One home node's doorway to the remote cloud."""

    def __init__(
        self,
        network: Network,
        node_name: str,
        s3: S3Store,
        gateway: Optional[str] = None,
    ) -> None:
        self.network = network
        self.node_name = node_name
        self.s3 = s3
        self.gateway = gateway
        self.uploads = 0
        self.downloads = 0

    @property
    def sim(self):
        return self.network.sim

    def store_remote(self, key: str, nbytes: float, ctx=None):
        """Process: push an object to S3 (blocking); returns the URL."""
        tel = self.sim.telemetry
        span = (
            tel.begin(
                "cloud.store",
                layer="cloud",
                node=self.node_name,
                parent=ctx,
                key=key,
                bytes=nbytes,
                via=self.gateway or "",
            )
            if tel is not None
            else None
        )
        if self.gateway is not None and self.gateway != self.node_name:
            # Hop to the designated gateway over the home LAN first.
            yield self.network.transfer(self.node_name, self.gateway, nbytes)
            origin = self.gateway
        else:
            origin = self.node_name
        url = yield from self.s3.put_object(origin, key, nbytes, ctx=span)
        self.uploads += 1
        if span is not None:
            tel.end(span)
        return url

    def fetch_remote(self, key: str, ctx=None):
        """Process: pull an object from S3; returns bytes received."""
        tel = self.sim.telemetry
        span = (
            tel.begin(
                "cloud.fetch",
                layer="cloud",
                node=self.node_name,
                parent=ctx,
                key=key,
                via=self.gateway or "",
            )
            if tel is not None
            else None
        )
        if self.gateway is not None and self.gateway != self.node_name:
            report = yield from self.s3.get_object(self.gateway, key, ctx=span)
            yield self.network.transfer(
                self.gateway, self.node_name, report.nbytes
            )
        else:
            report = yield from self.s3.get_object(self.node_name, key, ctx=span)
        self.downloads += 1
        if span is not None:
            tel.end(span, bytes=report.nbytes)
        return report.nbytes
