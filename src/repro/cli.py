"""Command-line interface: quick looks at a simulated deployment.

Usage::

    python -m repro demo                 # store/fetch walkthrough
    python -m repro topology             # show the assembled testbed
    python -m repro trace --files 12     # sample the eDonkey workload
    python -m repro surveillance         # run the camera pipeline once
    python -m repro sweep --workers 4    # paper sweeps on a process pool
    python -m repro report --files 8     # traced run + latency attribution
    python -m repro chaos --seed 3       # churn workload, resilience on
    python -m repro load --nodes 256     # open-loop load driver
    python -m repro slo --check          # SLO fire/resolve chaos gate
    python -m repro lint --check         # simlint invariant checker
    python -m repro bench-help           # how to regenerate the paper

All subcommands run entirely offline on the discrete-event simulator.
"""

from __future__ import annotations

import argparse
from typing import Optional

from repro import __version__
from repro.cluster import Cloud4Home, ClusterConfig, MetricsCollector

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cloud4Home / VStore++ reproduction (ICDCS 2011)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="store/fetch walkthrough")
    demo.add_argument("--seed", type=int, default=7)

    topology = sub.add_parser("topology", help="show the assembled testbed")
    topology.add_argument("--seed", type=int, default=0)

    trace = sub.add_parser("trace", help="sample the eDonkey workload")
    trace.add_argument("--files", type=int, default=10)
    trace.add_argument("--accesses", type=int, default=10)
    trace.add_argument("--seed", type=int, default=0)

    surveillance = sub.add_parser(
        "surveillance", help="run the camera pipeline once"
    )
    surveillance.add_argument("--image-mb", type=float, default=0.5)
    surveillance.add_argument("--seed", type=int, default=42)

    overlay = sub.add_parser("overlay", help="inspect the DHT ring")
    overlay.add_argument("--seed", type=int, default=0)
    overlay.add_argument(
        "--keys",
        nargs="*",
        default=["camera.jpg", "movie.avi", "song.mp3"],
        help="object names to map onto owners",
    )

    sweep = sub.add_parser(
        "sweep", help="run paper sweeps across a process pool"
    )
    sweep.add_argument(
        "experiment",
        nargs="?",
        default="all",
        choices=["table1", "fig5", "storm", "chaos", "decision", "all"],
        help="which sweep to run (default: all)",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=0,
        help="pool size; 0 or 1 runs inline (the serial reference path)",
    )
    sweep.add_argument(
        "--repeats", type=int, default=1, help="repeats/trials per sweep point"
    )
    sweep.add_argument(
        "--root-seed",
        type=int,
        default=0,
        help="root seed every job seed is derived from",
    )
    sweep.add_argument(
        "--smoke", action="store_true", help="tiny sweep points (CI-sized)"
    )
    sweep.add_argument(
        "--verify",
        action="store_true",
        help="re-run inline and require bit-identical results",
    )
    sweep.add_argument(
        "--output", default=None, help="write the JSON payload to this path"
    )

    report = sub.add_parser(
        "report",
        help="run a traced scenario; print latency attribution + metrics",
    )
    report.add_argument(
        "--files", type=int, default=6, help="objects to store and fetch"
    )
    report.add_argument("--seed", type=int, default=0)
    report.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a Chrome-trace JSON (load in chrome://tracing or Perfetto)",
    )
    report.add_argument(
        "--spans-out",
        default=None,
        metavar="PATH",
        help="write the raw span dump as JSON",
    )
    report.add_argument(
        "--top-traces",
        type=int,
        default=1,
        help="slowest request trees to render in full",
    )

    chaos = sub.add_parser(
        "chaos",
        help="run a seeded random-churn workload with the resilience layer",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--objects", type=int, default=24, help="objects stored over the run"
    )
    chaos.add_argument(
        "--horizon",
        type=float,
        default=300.0,
        help="simulated seconds of random chaos",
    )
    chaos.add_argument(
        "--mean-interval",
        type=float,
        default=30.0,
        help="mean seconds between injected faults",
    )
    chaos.add_argument(
        "--loss-max",
        type=float,
        default=0.0,
        help="max message-loss probability drawn by loss faults (loss "
        "stresses layers below the retry wrapper, so it defaults off)",
    )
    chaos.add_argument(
        "--resilience-off",
        action="store_true",
        help="run the same script without the resilience layer (contrast)",
    )
    chaos.add_argument(
        "--durability",
        action="store_true",
        help="attach the WAL storage backend: crashed nodes lose RAM, "
        "replay their journal on revive, and run an anti-entropy round "
        "(with --assert-clean, the run must show a WAL-backed recovery)",
    )
    chaos.add_argument(
        "--assert-clean",
        action="store_true",
        help="exit 1 unless every operation succeeded and the repair "
        "log is non-empty (the CI chaos smoke)",
    )
    chaos.add_argument(
        "--flightrec-dir",
        default=None,
        metavar="DIR",
        help="enable the flight recorder and dump per-node rings to "
        "this directory when --assert-clean fails (CI uploads them "
        "as artifacts)",
    )

    slo = sub.add_parser(
        "slo",
        help="seeded availability-SLO chaos scenario: kill 2 of 8 nodes, "
        "require the alert to fire within a window and resolve after repair",
    )
    slo.add_argument("--seed", type=int, default=7)
    slo.add_argument(
        "--objects", type=int, default=24, help="objects in the working set"
    )
    slo.add_argument(
        "--horizon",
        type=float,
        default=80.0,
        help="simulated seconds of fetch load after the stores",
    )
    slo.add_argument(
        "--dump-dir",
        default=None,
        metavar="DIR",
        help="write alert-triggered flight-recorder dumps here",
    )
    slo.add_argument(
        "--check",
        action="store_true",
        help="CI gate: exit 1 unless the SLO fires within one window of "
        "the kills, resolves after the Repairer acts, and the "
        "flight-recorder dump is schema-valid",
    )
    slo.add_argument(
        "--json",
        action="store_true",
        help="print the scenario timeline as JSON (dump elided to a summary)",
    )

    load = sub.add_parser(
        "load",
        help="drive an overlay with the open-loop load generator",
    )
    load.add_argument(
        "--nodes", type=int, default=256, help="overlay size (devices)"
    )
    load.add_argument(
        "--rate", type=float, default=2000.0, help="offered arrival rate, req/s"
    )
    load.add_argument(
        "--duration",
        type=float,
        default=5.0,
        help="simulated injection window, seconds",
    )
    load.add_argument("--seed", type=int, default=0)
    load.add_argument(
        "--arrivals",
        choices=["poisson", "deterministic"],
        default="poisson",
        help="arrival process (both seeded / exactly reproducible)",
    )
    load.add_argument(
        "--smoke",
        action="store_true",
        help="CI gate: cap at 256 nodes, run the point twice, and fail "
        "unless the simulated results are bit-for-bit identical",
    )
    load.add_argument(
        "--json",
        action="store_true",
        help="print the full scale_point payload as JSON",
    )

    lint = sub.add_parser(
        "lint",
        help="run simlint, the AST-based invariant checker (--check = CI gate)",
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(lint)

    sub.add_parser("bench-help", help="how to regenerate the paper's results")
    return parser


def cmd_demo(args) -> int:
    c4h = Cloud4Home(ClusterConfig(seed=args.seed))
    c4h.start(monitors=False)
    metrics = MetricsCollector(c4h)
    device = c4h.devices[0]
    print(f"deployment: {[d.name for d in c4h.devices]} + S3/EC2")
    for name, size in [("photo.jpg", 2.0), ("album.mp3", 6.0)]:
        result = c4h.run(
            metrics.timed(
                "store", device.name, device.client.store_file(name, size)
            )
        )
        print(f"stored {name} -> {result.meta.location} ({result.total_s:.2f}s)")
    fetch = c4h.run(
        metrics.timed(
            "fetch", "desktop", c4h.device("desktop").client.fetch_object("photo.jpg")
        )
    )
    print(f"fetched photo.jpg from {fetch.served_from} ({fetch.total_s:.2f}s)")
    print()
    print(metrics.report())
    return 0


def cmd_topology(args) -> int:
    c4h = Cloud4Home(ClusterConfig(seed=args.seed))
    print("Cloud4Home testbed (paper Section V):")
    for device in c4h.devices:
        profile = device.profile
        power = "mains" if device.config.battery is None else "battery"
        print(
            f"  {device.name:10s} {profile.name:13s} "
            f"{profile.cpu_cores}x{profile.cpu_ghz:g} GHz "
            f"{profile.mem_mb:.0f} MB "
            f"(guest VM: {device.guest.vcpus} vcpu / "
            f"{device.guest.mem_mb:.0f} MB, {power})"
        )
    lan = c4h.config.lan
    wan = c4h.config.wan
    print(f"  LAN: {lan.bandwidth_mbps:g} Mbps, {lan.latency_s * 1000:g} ms")
    print(
        f"  WAN: up {wan.up_flow_mean_mb_s:g} MB/s / "
        f"down {wan.down_flow_mean_mb_s:g} MB/s mean per transfer, "
        f"shaping after {wan.shaping_after_s:g}s"
    )
    print(f"  cloud: S3 bucket + {len(c4h.ec2)} EC2 instance(s)")
    return 0


def cmd_trace(args) -> int:
    from repro.sim import RandomSource
    from repro.workloads import EDonkeyTraceGenerator

    gen = EDonkeyTraceGenerator(
        rng=RandomSource(args.seed), n_files=args.files
    )
    print(f"files ({args.files}):")
    for f in gen.files():
        print(f"  {f.name:22s} {f.size_mb:6.1f} MB  [{f.bucket}]")
    print(f"accesses ({args.accesses}, 60/40 store/fetch):")
    for a in gen.accesses(args.accesses):
        print(f"  client {a.client}: {a.op:5s} {a.file.name}")
    return 0


def cmd_surveillance(args) -> int:
    from repro.services import FaceDetection, FaceRecognition

    c4h = Cloud4Home(ClusterConfig(seed=args.seed))
    c4h.start(monitors=False)
    camera = c4h.device("netbook0")
    c4h.deploy_service(lambda: FaceDetection(), nodes=["netbook0", "desktop"])
    c4h.deploy_service(
        lambda: FaceRecognition(training_mb=60.0), nodes=["netbook0", "desktop"]
    )
    for svc in camera.registry.local.values():
        svc.prewarm(camera.guest)
    c4h.run(camera.client.store_file("frame.jpg", args.image_mb))
    result = c4h.run(
        camera.client.process_pipeline(
            "frame.jpg", ["face-detect#v1", "face-recognize#v1"]
        )
    )
    print(
        f"{args.image_mb:g} MB frame: pipeline ran on {result.executed_on} "
        f"in {result.total_s:.2f}s (decision {result.decision_s * 1000:.0f} ms, "
        f"move {result.move_s:.2f}s, exec {result.execute_s:.2f}s)"
    )
    return 0


def cmd_overlay(args) -> int:
    from repro.overlay import NodeId, ring_diagram, routing_summary

    c4h = Cloud4Home(ClusterConfig(seed=args.seed))
    c4h.start(monitors=False)
    nodes = [d.chimera for d in c4h.devices]
    keys = {name: NodeId.from_name(f"object:{name}") for name in args.keys}
    print(ring_diagram(nodes, keys=keys))
    print()
    print(routing_summary(nodes[0]))
    return 0


def cmd_sweep(args) -> int:
    import json
    import time

    from repro.parallel.sweeps import run_sweep

    started = time.perf_counter()
    payload = run_sweep(
        args.experiment,
        workers=args.workers,
        repeats=args.repeats,
        root_seed=args.root_seed,
        smoke=args.smoke,
        verify=args.verify,
    )
    wall_s = time.perf_counter() - started

    sweeps = payload["sweeps"].values() if "sweeps" in payload else [payload]
    n_jobs = sum(p["n_jobs"] for p in sweeps)
    n_distinct = sum(p["n_distinct_jobs"] for p in sweeps)
    n_failed = sum(p["n_failed"] for p in sweeps)
    mode = "inline" if args.workers <= 1 else f"{args.workers} workers"
    print(
        f"sweep {args.experiment}: {n_jobs} jobs "
        f"({n_distinct} distinct) on {mode} in {wall_s:.2f}s"
        + (", verified vs serial" if args.verify and args.workers > 1 else "")
    )
    if n_failed:
        print(f"  {n_failed} job(s) FAILED:")
        for p in sweeps:
            _print_failures(p)
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"  wrote {args.output}")
    return 1 if n_failed else 0


def _print_failures(payload: dict) -> None:
    """Surface failed sweep points buried in the aggregated results."""

    def walk(obj, path):
        if isinstance(obj, dict):
            if set(obj) == {"error"}:
                print(f"    {payload['experiment']}/{path}: {obj['error']}")
                return
            for key, value in obj.items():
                walk(value, f"{path}/{key}" if path else key)
        elif isinstance(obj, list):
            for i, value in enumerate(obj):
                walk(value, f"{path}[{i}]")

    walk(payload["results"], "")


def cmd_report(args) -> int:
    import json

    from repro.services import FaceDetection
    from repro.telemetry import (
        attribution_report,
        chrome_trace,
        metrics_report,
        span_dump,
    )
    from repro.workloads import EDonkeyTraceGenerator
    from repro.sim import RandomSource

    c4h = Cloud4Home(ClusterConfig(seed=args.seed, telemetry=True))
    c4h.start(monitors=False)
    tel = c4h.telemetry
    c4h.deploy_service(lambda: FaceDetection(), nodes=["netbook0", "desktop"])

    files = EDonkeyTraceGenerator(
        rng=RandomSource(args.seed), n_files=max(1, args.files)
    ).files()
    storer = c4h.devices[0]
    fetcher = c4h.device("desktop")
    for f in files:
        c4h.run(storer.client.store_file(f.name, f.size_mb))
    for f in files:
        c4h.run(fetcher.client.fetch_object(f.name))
    c4h.run(storer.client.process(files[0].name, "face-detect#v1"))

    n_roots = len(tel.roots())
    print(
        f"scenario: {len(files)} stores + {len(files)} fetches + 1 process "
        f"-> {len(tel.spans)} spans in {n_roots} request trees "
        f"({c4h.sim.now:.2f}s simulated)"
    )
    print()
    print(attribution_report(tel, top_traces=args.top_traces))
    print()
    print(metrics_report(c4h.collect_metrics()))

    if args.trace_out:
        with open(args.trace_out, "w") as fh:
            json.dump(chrome_trace(tel), fh)
        print(f"\nwrote Chrome trace: {args.trace_out}")
    if args.spans_out:
        with open(args.spans_out, "w") as fh:
            json.dump(span_dump(tel), fh, indent=2)
        print(f"wrote span dump: {args.spans_out}")
    return 0


def cmd_chaos(args) -> int:
    from repro.cluster import SloConfig
    from repro.cluster.chaos import RandomChaos
    from repro.kvstore import KvError
    from repro.net import NetworkError
    from repro.vstore.errors import VStoreError

    # The flight recorder rides on the SLO layer; enabling it is
    # observation-only (guarded emits), so the churn outcome is the
    # same either way.
    config = ClusterConfig(
        seed=args.seed,
        resilience=not args.resilience_off,
        data_replicas=2,
        replication_factor=3,
        slo=args.flightrec_dir is not None,
        slo_tuning=SloConfig(recorder_dump_dir=args.flightrec_dir),
        storage="wal" if args.durability else "off",
    )
    c4h = Cloud4Home(config)
    c4h.start()
    chaos = RandomChaos(
        c4h,
        seed=args.seed,
        mean_interval_s=args.mean_interval,
        protected=("netbook0",),  # the measuring client stays up
        loss_rate_max=args.loss_max,
    )
    schedule = chaos.script(args.horizon)
    schedule.start()

    client = c4h.device("netbook0")
    failures: list[tuple[str, str]] = []
    names: list[str] = []
    step = args.horizon / max(1, args.objects)
    for i in range(args.objects):
        writer = c4h.devices[i % len(c4h.devices)]
        if not c4h.network.hosts[writer.name].online:
            writer = client  # a dead client can't issue requests
        name = f"chaos-{i:03d}.bin"
        try:
            c4h.run(writer.client.store_file(name, 1.0))
            names.append(name)
        except (NetworkError, VStoreError, KvError) as exc:
            failures.append((f"store {name}", repr(exc)))
        c4h.sim.run(until=c4h.sim.now + step)
    for name in names:
        try:
            c4h.run(client.client.fetch_object(name))
        except (NetworkError, VStoreError, KvError) as exc:
            failures.append((f"fetch {name}", repr(exc)))
    c4h.sim.run(until=c4h.sim.now + 90.0)  # let revives and repairs drain

    kinds: dict[str, int] = {}
    for event in schedule.events:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
    repairs = sum(
        len(d.repairer.repairs) for d in c4h.devices if d.repairer is not None
    )
    mode = "off" if args.resilience_off else "on"
    print(
        f"chaos run (seed {args.seed}, resilience {mode}): "
        f"{len(schedule.events)} fault events over {args.horizon:g}s "
        + (f"{dict(sorted(kinds.items()))}" if kinds else "")
    )
    ops = args.objects + len(names)
    print(
        f"  operations: {ops - len(failures)}/{ops} succeeded, "
        f"{repairs} repair action(s) logged"
    )
    recoveries = 0
    if args.durability:
        recoveries = sum(
            1
            for event in schedule.events
            if event.kind == "revive" and "replayed" in event.detail
        )
        backends = sum(1 for d in c4h.devices if d.storage is not None)
        print(
            f"  durability: {backends} WAL backends attached, "
            f"{recoveries} revive(s) recovered from the journal"
        )
    for op, error in failures:
        print(f"  FAILED {op}: {error}")
    if args.assert_clean:
        missing_recovery = args.durability and recoveries == 0
        if failures or (not args.resilience_off and repairs == 0) or missing_recovery:
            print(
                "assert-clean: operation failures above"
                if failures
                else "assert-clean: repair log is empty"
                if not args.resilience_off and repairs == 0
                else "assert-clean: no revive recovered from the WAL"
            )
            if c4h.recorders is not None:
                c4h.recorders.dump(
                    now=c4h.sim.now, reason="assert-clean-failure"
                )
                for path in c4h.recorders.dump_paths:
                    print(f"  flight recorder: {path}")
            return 1
        print("assert-clean: ok")
    return 0


def cmd_slo(args) -> int:
    import json

    from repro.cluster import availability_chaos_scenario
    from repro.telemetry import validate_recorder_dump

    result = availability_chaos_scenario(
        seed=args.seed,
        n_objects=args.objects,
        horizon_s=args.horizon,
        dump_dir=args.dump_dir,
    )
    try:
        entries = validate_recorder_dump(result["dump"])
        dump_error = None
    except ValueError as exc:
        entries = 0
        dump_error = str(exc)

    if args.json:
        payload = dict(result)
        payload["dump"] = {
            "schema": result["dump"].get("schema"),
            "entries": entries,
            "nodes": sorted(result["dump"].get("nodes", {})),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        bar = result["window_s"] + result["eval_period_s"]
        print(
            f"slo scenario (seed {args.seed}): {result['nodes']} nodes, "
            f"{result['objects']} objects, killed {result['killed']} "
            f"at t={result['t_kill']:.1f}s"
        )
        if result["fired_at"] is not None:
            print(
                f"  firing   at {result['fired_at']:.2f}s "
                f"(+{result['fired_within_s']:.2f}s after the kill; "
                f"bar {bar:g}s)"
            )
        else:
            print("  firing   never (FAIL)")
        if result["first_repair_at"] is not None:
            print(
                f"  repair   at {result['first_repair_at']:.2f}s "
                f"({result['repair_actions']} promote/replicate actions)"
            )
        if result["resolved_at"] is not None:
            print(f"  resolved at {result['resolved_at']:.2f}s")
        else:
            print("  resolved never (FAIL)")
        if dump_error is None:
            print(
                f"  flight recorder: {entries} entries across "
                f"{len(result['dump']['nodes'])} nodes "
                f"(schema {result['dump']['schema']})"
            )
        else:
            print(f"  flight recorder: INVALID — {dump_error}")
        for path in result["dump_paths"]:
            print(f"  wrote {path}")
        health = " ".join(
            f"{node} {score:.2f}"
            for node, score in sorted(result["health"].items())
        )
        print(f"  health: {health}")

    if args.check:
        ok = result["ok"] and dump_error is None
        print(f"slo --check: {'ok' if ok else 'FAIL'}")
        return 0 if ok else 1
    return 0


def cmd_load(args) -> int:
    import json

    from repro.load import scale_point

    nodes = args.nodes
    if args.smoke and nodes > 256:
        print(f"load --smoke: capping --nodes {nodes} at 256")
        nodes = 256
    kwargs = dict(
        n_nodes=nodes,
        rate=args.rate,
        duration_s=args.duration,
        seed=args.seed,
        arrivals=args.arrivals,
        probe_objects=False,
    )
    result = scale_point(**kwargs)

    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        sim = result["sim"]
        wall = result["wall"]
        lat = sim["latency"]
        print(
            f"load: {nodes} nodes, {args.arrivals} arrivals at "
            f"{args.rate:g} req/s for {args.duration:g}s (seed {args.seed})"
        )
        print(
            f"  offered {sim['offered_rate']:.1f}/s -> achieved "
            f"{sim['achieved_rate']:.1f}/s "
            f"({sim['completed']} completed, {sim['shed']} shed, "
            f"{sim['failed']} failed, {sim['kv_misses']} misses)"
        )
        print(
            f"  latency p50 {lat['p50'] * 1000:.1f} ms / "
            f"p99 {lat['p99'] * 1000:.1f} ms / "
            f"p999 {lat['p999'] * 1000:.1f} ms "
            f"(max inflight {sim['max_inflight_seen']})"
        )
        print(
            f"  wall: build {wall['build_s']:.2f}s, run {wall['run_s']:.2f}s, "
            f"{wall['events_per_s']} events/s, "
            f"rss {result['memory']['rss_mb']} MB"
        )

    if args.smoke:
        rerun = scale_point(**kwargs)
        # Wall/memory blocks measure the machine; the simulated block
        # must be reproduced bit-for-bit from the seed.
        first, second = result["sim"], rerun["sim"]
        if json.dumps(first, sort_keys=True) != json.dumps(
            second, sort_keys=True
        ):
            print("load --smoke: FAIL — seeded rerun diverged")
            return 1
        print("load --smoke: ok (seeded rerun bit-for-bit identical)")
    return 0


def cmd_lint(args) -> int:
    from repro.lint.cli import run

    return run(args)


def cmd_bench_help(args) -> int:
    print("Regenerate every table and figure from the paper with:")
    print()
    print("    pytest benchmarks/ --benchmark-only")
    print()
    print("Individual experiments:")
    for bench, what in [
        ("test_fig4_home_vs_remote.py", "Figure 4: home vs remote latency"),
        ("test_table1_fetch_costs.py", "Table I: fetch cost breakdown"),
        ("test_fig5_optimal_object_size.py", "Figure 5: optimal object size"),
        ("test_fig6_fetch_throughput.py", "Figure 6: concurrent fetch throughput"),
        ("test_split_processing.py", "Sec. V-B: home/EC2/split recognition"),
        ("test_fig7_service_placement.py", "Figure 7: pipeline placement"),
        ("test_fig8_dynamic_routing.py", "Figure 8: Town vs Topt"),
        ("test_scaling.py", "future work (iii): overlay scaling"),
        ("test_ablation_*.py", "design ablations"),
    ]:
        print(f"    pytest benchmarks/{bench:36s} # {what}")
    return 0


COMMANDS = {
    "demo": cmd_demo,
    "topology": cmd_topology,
    "trace": cmd_trace,
    "surveillance": cmd_surveillance,
    "overlay": cmd_overlay,
    "sweep": cmd_sweep,
    "report": cmd_report,
    "chaos": cmd_chaos,
    "slo": cmd_slo,
    "load": cmd_load,
    "lint": cmd_lint,
    "bench-help": cmd_bench_help,
}


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)
