"""Service framework: compute models, profiles, and execution.

VStore++ associates *services* (object manipulation functions) with
storage: face detection and recognition for the surveillance use case,
x264 media conversion for the multimedia one.  We cannot run OpenCV or
x264 against real pixels here, so each service carries an analytic
:class:`ComputeModel` — calibrated so that CPU-bound services scale with
processor speed and parallelism, and memory-bound services thrash when
the hosting VM's memory is smaller than their working set.  Those are
exactly the effects the paper's Figure 7 placement experiment turns on.

"Additional service information is maintained in service profiles,
which encode the minimum resource requirements for a service for a
given SLA ...  such profiles are determined a priori and made available
to VStore++ when services are deployed." (Section III-A.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.monitoring import ResourceSnapshot
from repro.virt import Domain

__all__ = ["ComputeModel", "ServiceProfile", "ServiceResult", "Service"]


@dataclass(frozen=True)
class ComputeModel:
    """Analytic cost of processing ``input_mb`` of data.

    ``cycles = base_cycles + cycles_per_mb * input_mb ** size_exponent``

    ``working_set_mb = working_set_base_mb
    + working_set_per_mb * input_mb ** working_set_exponent``
    (decompressed pixels, model state, temporary buffers; a super-linear
    exponent models feature/pyramid blow-up for larger inputs).
    """

    base_cycles: float = 0.0
    cycles_per_mb: float = 1e9
    size_exponent: float = 1.0
    working_set_base_mb: float = 0.0
    working_set_per_mb: float = 0.0
    working_set_exponent: float = 1.0

    def cycles(self, input_mb: float) -> float:
        if input_mb < 0:
            raise ValueError("input_mb must be non-negative")
        return self.base_cycles + self.cycles_per_mb * input_mb**self.size_exponent

    def working_set_mb(self, input_mb: float) -> float:
        return (
            self.working_set_base_mb
            + self.working_set_per_mb * input_mb**self.working_set_exponent
        )


@dataclass(frozen=True)
class ServiceProfile:
    """Minimum resource requirements for acceptable service quality."""

    min_mem_mb: float = 0.0
    min_free_compute_ghz: float = 0.0
    parallelism: int = 1

    def admits(self, snapshot: ResourceSnapshot) -> bool:
        """Does a node's snapshot satisfy this profile?"""
        return (
            snapshot.mem_free_mb >= self.min_mem_mb
            and snapshot.free_compute_ghz >= self.min_free_compute_ghz
        )


@dataclass
class ServiceResult:
    """Outcome of one service execution."""

    service: str
    node: str
    input_mb: float
    output_mb: float
    elapsed_s: float
    extra: dict = field(default_factory=dict)


class Service:
    """A deployable object-manipulation function.

    ``service_id`` disambiguates multiple deployments of the same
    algorithm (the registry key is "service name concatenated with
    service ID").  ``output_ratio`` sizes the result object relative to
    the input (e.g. an ``.avi``→``.mp4`` downgrade shrinks it).
    """

    def __init__(
        self,
        name: str,
        compute: ComputeModel,
        profile: Optional[ServiceProfile] = None,
        service_id: str = "v1",
        output_ratio: float = 1.0,
        setup_mb: float = 0.0,
        node_profiles: Optional[dict[str, ServiceProfile]] = None,
    ) -> None:
        if output_ratio < 0:
            raise ValueError("output_ratio must be non-negative")
        if setup_mb < 0:
            raise ValueError("setup_mb must be non-negative")
        self.name = name
        self.compute = compute
        self.profile = profile or ServiceProfile()
        #: Per-device-type requirement overrides: "service profiles ...
        #: encode the minimum resource requirements for a service for a
        #: given SLA for the different types of nodes" (Section III-A).
        self.node_profiles: dict[str, ServiceProfile] = dict(node_profiles or {})
        self.service_id = service_id
        self.output_ratio = output_ratio
        #: Data read from local disk on first invocation at a node
        #: (model/cascade/training files).  A node that has run the
        #: service keeps it warm; a freshly chosen remote target pays
        #: this cold-start — the asymmetry that lets a low-end owner
        #: beat a faster remote node for small inputs (Figure 7).
        self.setup_mb = setup_mb
        self._warm_domains: set[int] = set()

    @property
    def qualified_name(self) -> str:
        """Registry key component: name concatenated with service id."""
        return f"{self.name}#{self.service_id}"

    def cycles(self, input_mb: float) -> float:
        return self.compute.cycles(input_mb)

    def working_set_mb(self, input_mb: float) -> float:
        return self.compute.working_set_mb(input_mb)

    def output_mb(self, input_mb: float) -> float:
        return input_mb * self.output_ratio

    def profile_for(self, device_type: str) -> ServiceProfile:
        """The requirement profile applying to a given node type."""
        return self.node_profiles.get(device_type, self.profile)

    def admits(self, snapshot: ResourceSnapshot) -> bool:
        """Does a node satisfy this service's requirements for its type?"""
        return self.profile_for(snapshot.device_type).admits(snapshot)

    def is_warm(self, domain: Domain) -> bool:
        return id(domain) in self._warm_domains

    def prewarm(self, domain: Domain) -> None:
        """Mark the service's model data as already resident on a node."""
        self._warm_domains.add(id(domain))

    def execute(self, domain: Domain, input_mb: float, ctx=None):
        """Process: run the service on ``domain`` over ``input_mb``.

        Returns a :class:`ServiceResult`.  The execution charges the
        domain's VCPUs (so concurrent services contend) and applies the
        memory-thrashing slowdown when the working set exceeds the
        domain's allocation.  The first execution on a domain pays the
        ``setup_mb`` disk load (cold start) unless :meth:`prewarm` ran.
        """
        started = domain.sim.now
        cold = self.setup_mb > 0 and not self.is_warm(domain)
        tel = domain.sim.telemetry
        span = (
            tel.begin(
                "service.execute",
                layer="service",
                node=domain.name,
                parent=ctx,
                service=self.qualified_name,
                input_mb=input_mb,
                cold_start=cold,
            )
            if tel is not None
            else None
        )
        if cold:
            yield domain.sim.timeout(self.setup_mb / domain.profile.disk_mb_s)
            self._warm_domains.add(id(domain))
        yield from domain.execute(
            self.cycles(input_mb),
            parallelism=self.profile.parallelism,
            working_set_mb=self.working_set_mb(input_mb),
        )
        if span is not None:
            tel.end(span)
        return ServiceResult(
            service=self.qualified_name,
            node=domain.name,
            input_mb=input_mb,
            output_mb=self.output_mb(input_mb),
            elapsed_s=domain.sim.now - started,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Service {self.qualified_name!r}>"
