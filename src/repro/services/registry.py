"""Service discovery through the key-value store.

"Every node registers its list of services with the key-value store
using a service name concatenated with service ID as key, and a value
that is a list of nodes supporting a service along with a service
policy." (Section IV.)

Registration is a read-modify-write on the shared entry; the overwrite
policy of the KV store keeps the latest list authoritative.
"""

from __future__ import annotations

from typing import Optional

from repro.kvstore import DhtKeyValueStore, KeyNotFoundError
from repro.services.base import Service, ServiceProfile

__all__ = ["ServiceRegistry", "service_key"]


def service_key(qualified_name: str) -> str:
    """KV-store key for a service's availability entry."""
    return f"service:{qualified_name}"


class ServiceRegistry:
    """Per-node view of which nodes host which services."""

    def __init__(self, store: DhtKeyValueStore) -> None:
        self.store = store
        #: Services this node itself hosts, by qualified name.
        self.local: dict[str, Service] = {}

    @property
    def name(self) -> str:
        return self.store.name

    @property
    def sim(self):
        return self.store.sim

    def register(self, service: Service, policy: Optional[str] = None):
        """Process: announce that this node hosts ``service``."""
        self.local[service.qualified_name] = service
        key = service_key(service.qualified_name)
        entry = yield from self._read_entry(key)
        if self.name not in entry["nodes"]:
            entry["nodes"].append(self.name)
        if policy is not None:
            entry["policy"] = policy
        entry["profile"] = self._profile_wire(service.profile)
        if service.node_profiles:
            entry["profiles_by_type"] = {
                device_type: self._profile_wire(profile)
                for device_type, profile in service.node_profiles.items()
            }
        yield from self.store.put(key, entry)
        return entry

    @staticmethod
    def _profile_wire(profile: ServiceProfile) -> dict:
        return {
            "min_mem_mb": profile.min_mem_mb,
            "min_free_compute_ghz": profile.min_free_compute_ghz,
            "parallelism": profile.parallelism,
        }

    def deregister(self, service: Service):
        """Process: withdraw this node from the service's node list."""
        self.local.pop(service.qualified_name, None)
        key = service_key(service.qualified_name)
        try:
            entry = yield from self.store.get(key)
        except KeyNotFoundError:
            return None
        if self.name in entry["nodes"]:
            entry["nodes"].remove(self.name)
        yield from self.store.put(key, entry)
        return entry

    def lookup(self, qualified_name: str, ctx=None):
        """Process: nodes currently advertising the service.

        Returns the registry entry dict: ``nodes`` (list of names),
        ``policy`` (optional placement hint), ``profile`` (minimum
        resource requirements).  Raises KeyNotFoundError if the service
        was never registered.
        """
        value = yield from self.store.get(service_key(qualified_name), ctx=ctx)
        return value

    def profile_of(self, entry: dict, device_type: str = "") -> ServiceProfile:
        """Reconstruct the ServiceProfile from a registry entry.

        A per-node-type override (if the service registered one for
        ``device_type``) wins over the generic profile.
        """
        data = entry.get("profiles_by_type", {}).get(device_type) or entry.get(
            "profile", {}
        )
        return ServiceProfile(
            min_mem_mb=data.get("min_mem_mb", 0.0),
            min_free_compute_ghz=data.get("min_free_compute_ghz", 0.0),
            parallelism=int(data.get("parallelism", 1)),
        )

    def admitter(self, entry: dict):
        """Predicate checking a snapshot against the entry's profile
        for that node's device type."""

        def admits(snapshot) -> bool:
            return self.profile_of(entry, snapshot.device_type).admits(snapshot)

        return admits

    def hosts_locally(self, qualified_name: str) -> bool:
        """Does this node itself run the service? (Fetch-and-process
        first checks the requester, then the owner — Section III-B.)"""
        return qualified_name in self.local

    def _read_entry(self, key: str):
        try:
            entry = yield from self.store.get(key)
        except KeyNotFoundError:
            entry = {"nodes": [], "policy": None, "profile": {}}
        return entry
