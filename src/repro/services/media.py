"""Media conversion service (the x264 use case).

"We use another example, based on a media conversion service that
downgrades files from the '.avi' video format to a mobile compatible
'.mp4' format, using the x264 CPU-intensive library." (Section V-B.)

Encoding is CPU-bound and parallelizes well across cores; the output is
substantially smaller than the input (a mobile-resolution downgrade).
"""

from __future__ import annotations

from repro.services.base import ComputeModel, Service, ServiceProfile

__all__ = ["MediaConversion"]


class MediaConversion(Service):
    """x264-style ``.avi`` → ``.mp4`` transcoder."""

    def __init__(
        self,
        parallelism: int = 4,
        service_id: str = "v1",
        output_ratio: float = 0.35,
    ) -> None:
        super().__init__(
            name="media-convert",
            compute=ComputeModel(
                base_cycles=0.5e9,
                cycles_per_mb=4.0e9,
                size_exponent=1.0,
                working_set_base_mb=48.0,
                working_set_per_mb=2.0,
            ),
            profile=ServiceProfile(
                min_mem_mb=128.0,
                min_free_compute_ghz=1.0,
                parallelism=parallelism,
            ),
            service_id=service_id,
            output_ratio=output_ratio,
            # Encoder binaries/preset data loaded at first invocation.
            setup_mb=10.0,
        )
