"""The home-surveillance vision services: face detection + recognition.

"Captured images are first processed by a CPU-intensive face detection
step (FDet), followed by memory-intensive face recognition (FRec)"
(Section V-B).  The prototype ran OpenCV with a training dataset; here
the two steps are analytic compute models with the same character:

* **FDet** — CPU-bound: cycles grow slightly superlinearly with image
  size (cascade detectors rescan at multiple scales); tiny working set.
* **FRec** — memory-bound: the training dataset must be resident
  ("the training data for FRec is usually very large"), so the working
  set is the training set plus a large decompressed-image factor.  On a
  small VM (S2's 128 MB) this thrashes — the effect that hands the
  largest images to the remote cloud in Figure 7.

Calibration targets the Figure 7 crossovers, not OpenCV's absolute
speed on 2011 hardware.
"""

from __future__ import annotations

from repro.services.base import ComputeModel, Service, ServiceProfile

__all__ = ["FaceDetection", "FaceRecognition", "surveillance_pipeline"]


class FaceDetection(Service):
    """CPU-intensive cascade face detector (the paper's FDet step)."""

    def __init__(self, parallelism: int = 4, service_id: str = "v1") -> None:
        super().__init__(
            name="face-detect",
            compute=ComputeModel(
                base_cycles=0.05e9,
                cycles_per_mb=0.75e9,
                size_exponent=1.3,
                working_set_base_mb=20.0,
                working_set_per_mb=8.0,
            ),
            profile=ServiceProfile(
                min_mem_mb=64.0,
                min_free_compute_ghz=0.5,
                parallelism=parallelism,
            ),
            service_id=service_id,
            # Output: face crops plus bounding-box metadata.
            output_ratio=0.10,
            # The Haar cascade files loaded at first invocation.
            setup_mb=8.0,
        )


class FaceRecognition(Service):
    """Memory-intensive face recognizer (the paper's FRec step).

    ``training_mb`` is the resident training dataset; the paper assumes
    it is already available at every processing location, so it costs
    memory but not movement.
    """

    def __init__(
        self,
        training_mb: float = 60.0,
        parallelism: int = 4,
        service_id: str = "v1",
    ) -> None:
        if training_mb < 0:
            raise ValueError("training_mb must be non-negative")
        self.training_mb = training_mb
        super().__init__(
            name="face-recognize",
            compute=ComputeModel(
                base_cycles=0.07e9,
                cycles_per_mb=1.4e9,
                size_exponent=1.3,
                working_set_base_mb=training_mb,
                # Feature matrices and the decompressed multi-scale
                # pyramid blow up super-linearly with image size; this
                # is what overwhelms S2's 128 MB VM for 2 MB images.
                working_set_per_mb=100.0,
                working_set_exponent=2.0,
            ),
            profile=ServiceProfile(
                min_mem_mb=96.0,
                min_free_compute_ghz=0.5,
                parallelism=parallelism,
            ),
            service_id=service_id,
            # Output: the ID of the best-matched image.
            output_ratio=0.001,
            # The training dataset read from disk at first invocation.
            setup_mb=training_mb,
        )


def surveillance_pipeline(
    training_mb: float = 60.0, parallelism: int = 4
) -> list[Service]:
    """The two-step FDet → FRec pipeline used by the use case."""
    return [
        FaceDetection(parallelism=parallelism),
        FaceRecognition(training_mb=training_mb, parallelism=parallelism),
    ]
