"""Data-manipulation services and service discovery.

Public surface:

* :class:`Service`, :class:`ComputeModel`, :class:`ServiceProfile`,
  :class:`ServiceResult` — the framework.
* :class:`FaceDetection`, :class:`FaceRecognition`,
  :func:`surveillance_pipeline` — the home-surveillance use case.
* :class:`MediaConversion` — the x264 media use case.
* :class:`ServiceRegistry` — KV-store-backed service discovery.
"""

from repro.services.base import (
    ComputeModel,
    Service,
    ServiceProfile,
    ServiceResult,
)
from repro.services.media import MediaConversion
from repro.services.registry import ServiceRegistry, service_key
from repro.services.vision import (
    FaceDetection,
    FaceRecognition,
    surveillance_pipeline,
)

__all__ = [
    "Service",
    "ComputeModel",
    "ServiceProfile",
    "ServiceResult",
    "FaceDetection",
    "FaceRecognition",
    "surveillance_pipeline",
    "MediaConversion",
    "ServiceRegistry",
    "service_key",
]
