"""Ablations on the data-movement machinery.

Two mechanisms from Section IV:

* zero-copy inter-node transfers ("the Linux zero copy mechanism using
  splice and tee ... avoids user space overheads") — vs. a conventional
  double-copy path;
* blocking vs non-blocking stores ("blocking operations incur the cost
  of an additional acknowledgement");
* XenSocket page size ("the page size can be increased up to 2 MB ...
  for better performance").
"""

import pytest

from benchmarks.common import MB, format_table, report, run_once
from repro import Cloud4Home, ClusterConfig
from repro.sim import Simulator
from repro.virt import XenSocketChannel


def measure_zero_copy(zero_copy, seed):
    c4h = Cloud4Home(ClusterConfig(seed=seed))
    c4h.start(monitors=False)
    for device in c4h.devices:
        device.vstore.transfer.zero_copy = zero_copy
    owner, reader = c4h.devices[0], c4h.devices[3]
    c4h.run(owner.client.store_file("blob.bin", 50.0))
    t0 = c4h.sim.now
    c4h.run(reader.client.fetch_object("blob.bin"))
    return c4h.sim.now - t0


def measure_store_blocking(blocking, seed):
    c4h = Cloud4Home(ClusterConfig(seed=seed))
    c4h.start(monitors=False)
    device = c4h.devices[0]
    t0 = c4h.sim.now
    c4h.run(device.client.store_file("note.bin", 5.0, blocking=blocking))
    elapsed = c4h.sim.now - t0
    c4h.sim.run()  # let background placement settle
    return elapsed


def measure_page_size(page_size):
    sim = Simulator()
    channel = XenSocketChannel(sim, page_size=page_size)
    return channel.transfer_time(100 * MB)


@pytest.mark.benchmark(group="ablation")
def test_ablation_transport_mechanisms(benchmark):
    def scenario():
        return {
            "zero_copy": measure_zero_copy(True, seed=2000),
            "double_copy": measure_zero_copy(False, seed=2000),
            "blocking": measure_store_blocking(True, seed=2001),
            "non_blocking": measure_store_blocking(False, seed=2001),
            "pages_4k": measure_page_size(4 * 1024),
            "pages_2m": measure_page_size(2 * MB),
        }

    r = run_once(benchmark, scenario)

    report(
        "Ablation — transport mechanisms",
        format_table(
            ["mechanism", "config", "time (s)"],
            [
                ["50 MB fetch", "zero-copy (splice/tee)", f"{r['zero_copy']:.2f}"],
                ["50 MB fetch", "double copy", f"{r['double_copy']:.2f}"],
                ["5 MB store", "blocking (+ack)", f"{r['blocking']:.3f}"],
                ["5 MB store", "non-blocking", f"{r['non_blocking']:.3f}"],
                ["100 MB XenSocket", "4 KB pages", f"{r['pages_4k']:.2f}"],
                ["100 MB XenSocket", "2 MB pages", f"{r['pages_2m']:.2f}"],
            ],
        ),
    )

    assert r["zero_copy"] < r["double_copy"]
    assert r["non_blocking"] < r["blocking"]
    assert r["pages_2m"] < r["pages_4k"] / 2.0
