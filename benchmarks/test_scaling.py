"""Scaling study: larger @home overlays (paper future-work item (iii)).

"There remain many open issues with Cloud4Home, the most notable ones
being ... (iii) to understand how to scale to larger numbers of @home
and then in the cloud participants" (Section VII).  This benchmark
grows the overlay from the paper's 6 devices to 48 and measures what
the metadata layer costs: DHT lookup latency and route hop counts
should grow logarithmically (prefix routing), not linearly.
"""

import math

import pytest

from benchmarks.common import format_table, report, run_once
from repro.kvstore import DhtKeyValueStore
from repro.net import Link, Network, Route
from repro.overlay import ChimeraNode, NodeId, PeerInfo
from repro.sim import RandomSource, Simulator

OVERLAY_SIZES = [6, 12, 24, 48]
N_KEYS = 30


def build_overlay(n, seed):
    """An n-node overlay with complete state (fast static build) plus
    KV stores, on one home LAN."""
    sim = Simulator()
    net = Network(sim, RandomSource(seed))
    link = Link(sim, bandwidth=95.5e6 / 8, name="lan")
    net.connect_groups("home", "home", Route(link, base_latency=0.0008))
    nodes = []
    for i in range(n):
        host = net.add_host(f"node{i:03d}", group="home")
        node = ChimeraNode(net, host, leaf_size=2)
        node.start()
        nodes.append(node)
    for node in nodes:
        for other in nodes:
            if other is not node:
                node._add_peer(PeerInfo(other.name, other.id))
    stores = [DhtKeyValueStore(node) for node in nodes]
    return sim, nodes, stores


def run(sim, generator):
    proc = sim.process(generator)
    return sim.run(until=proc)


def measure(n, seed):
    sim, nodes, stores = build_overlay(n, seed)
    # Static hop counts from prefix routing (leaf set capped at 2/side,
    # so big overlays really do take multiple hops).
    hops = []
    for i in range(N_KEYS):
        key = NodeId.from_name(f"scale-key-{i}")
        current = nodes[i % n]
        count = 0
        while True:
            nxt = current.next_hop(key)
            if nxt is None:
                break
            current = next(x for x in nodes if x.name == nxt.name)
            count += 1
        hops.append(count)
    # Dynamic lookup latency through the real KV store.
    for i in range(N_KEYS):
        run(sim, stores[i % n].put(f"scale-key-{i}", i))
    latencies = []
    for i in range(N_KEYS):
        reader = stores[(i * 7 + 1) % n]
        t0 = sim.now
        run(sim, reader.get(f"scale-key-{i}"))
        latencies.append(sim.now - t0)
    return (
        sum(hops) / len(hops),
        max(hops),
        sum(latencies) / len(latencies),
    )


@pytest.mark.benchmark(group="scaling")
def test_overlay_scaling(benchmark):
    def scenario():
        return {n: measure(n, seed=2100 + n) for n in OVERLAY_SIZES}

    results = run_once(benchmark, scenario)

    rows = [
        [
            f"{n}",
            f"{results[n][0]:.2f}",
            f"{results[n][1]}",
            f"{results[n][2] * 1000:.1f}",
        ]
        for n in OVERLAY_SIZES
    ]
    report(
        "Scaling — overlay size vs metadata costs (future work iii)",
        format_table(
            ["nodes", "mean hops", "max hops", "mean lookup (ms)"], rows
        )
        + ["expected: logarithmic growth (prefix routing), not linear"],
    )

    mean_hops = {n: results[n][0] for n in OVERLAY_SIZES}
    lookups = {n: results[n][2] for n in OVERLAY_SIZES}

    # An 8x larger overlay must cost far less than 8x the hops: the
    # growth is bounded by the log16 factor of prefix routing.
    growth = mean_hops[48] / max(mean_hops[6], 0.5)
    assert growth < 8 / math.log2(8), f"hop growth {growth:.2f} too steep"
    # Lookup latency also grows sub-linearly.
    assert lookups[48] < 4.0 * lookups[6]
    # And stays in the milliseconds regime even at 48 nodes.
    assert lookups[48] < 0.1
