"""100 MB XenSocket transfer: per-page events vs coalesced timeout."""

from __future__ import annotations

import time

from repro.sim import Simulator
from repro.virt import XenSocketChannel

MB = 1024 * 1024


def _run(nbytes: int, paged: bool) -> tuple[float, float]:
    """Returns (wall seconds, simulated elapsed seconds)."""
    sim = Simulator()
    chan = XenSocketChannel(sim)  # 4 KB pages, 32-page ring (paper config)
    method = chan.transfer_paged if paged else chan.transfer
    t0 = time.perf_counter()
    elapsed = sim.run(until=sim.process(method(nbytes)))
    return time.perf_counter() - t0, elapsed


def bench_xensocket(nbytes: int = 100 * MB) -> dict:
    """The paper's largest Table I object through both implementations."""
    paged_wall, paged_sim = _run(nbytes, paged=True)
    fast_wall, fast_sim = _run(nbytes, paged=False)

    tol = 1e-9 * max(abs(paged_sim), abs(fast_sim))
    assert abs(paged_sim - fast_sim) <= tol, (
        f"simulated transfer times diverged: {paged_sim} vs {fast_sim}"
    )

    return {
        "nbytes": nbytes,
        "pages": nbytes // 4096,
        "simulated_transfer_s": fast_sim,
        "paged_wall_s": paged_wall,
        "coalesced_wall_s": fast_wall,
        "speedup": paged_wall / fast_wall,
    }
