"""Subprocess driver: time the Table I sweep inside one source tree.

Invoked as ``python _table1_driver.py <tree-root> <sizes-csv> <repeats>``.
Puts ``<tree-root>/src`` and ``<tree-root>`` at the front of ``sys.path``
so the sweep runs entirely against that tree (the perf runner points it
at both the extracted seed tree and the current checkout), then prints a
JSON blob with the best wall time and the simulated metrics so the
parent can verify both trees still compute identical results.
"""

import json
import sys
import time


def main() -> None:
    root, sizes_csv, repeats = sys.argv[1], sys.argv[2], int(sys.argv[3])
    sizes = [int(s) for s in sizes_csv.split(",")]
    sys.path.insert(0, root)
    sys.path.insert(0, root + "/src")

    from benchmarks.test_table1_fetch_costs import measure

    def sweep():
        t0 = time.perf_counter()
        results = {size: measure(size, seed=300 + size) for size in sizes}
        return time.perf_counter() - t0, results

    sweep()  # warm-up: imports, allocator, caches
    walls = []
    metrics = {}
    for _ in range(repeats):
        wall, results = sweep()
        walls.append(wall)
        metrics = {
            str(size): [f.total_s, f.dht_lookup_s, f.inter_node_s, f.inter_domain_s]
            for size, f in results.items()
        }
    print(json.dumps({"wall_s": min(walls), "metrics": metrics}))


if __name__ == "__main__":
    main()
