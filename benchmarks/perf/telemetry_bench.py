"""Telemetry overhead on the Table I sweep: ``BENCH_telemetry.json``.

The telemetry plane's contract is *near-zero cost when disabled*: every
instrumented layer guards span emission behind one ``sim.telemetry is
not None`` check, adds no keys to RPC bodies, and adds no simulated
time.  This benchmark quantifies both sides of that contract on the
paper's Table I store+fetch sweep:

* ``overhead_disabled_estimate`` — the guarded no-op path.  A tight
  microbenchmark times the guard pattern itself (attribute read +
  ``is not None``), which is then scaled by the number of guard sites
  the sweep actually executes (measured by running it once with
  telemetry attached and counting spans).  This is the cost the sweep
  pays for being instrumented at all; the acceptance bar is < 5%.
* ``overhead_enabled`` — the full recording path (span allocation,
  id assignment, histogram feed), for context.  Enabled runs do real
  extra work, so no threshold applies.

The benchmark also re-asserts the byte-identity invariant: the
simulated metrics of every sweep point must be identical with telemetry
off and on — tracing observes the simulation, it never perturbs it.
"""

from __future__ import annotations

import time

from repro import Cloud4Home, ClusterConfig
from repro.sim import Simulator

SIZES_MB = [1, 2, 5, 10, 20, 50, 100]


def guard_cost_ns(iterations: int = 1_000_000) -> float:
    """Per-call cost of the guarded emit pattern with telemetry off.

    Times ``iterations`` executions of exactly what an instrumented
    layer does on the disabled path — read ``sim.telemetry``, compare
    against None, skip — minus the cost of an equivalent loop with no
    guard, so pure loop/call overhead cancels out.
    """
    sim = Simulator()
    assert sim.telemetry is None

    def guarded(sim=sim):
        tel = sim.telemetry
        if tel is not None:  # pragma: no cover - telemetry is off
            raise AssertionError("telemetry unexpectedly attached")

    def bare():
        pass

    for fn in (guarded, bare):  # warm up
        for _ in range(10_000):
            fn()
    t0 = time.perf_counter()
    for _ in range(iterations):
        guarded()
    guarded_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(iterations):
        bare()
    bare_s = time.perf_counter() - t0
    return max(0.0, (guarded_s - bare_s) / iterations * 1e9)


def _measure(size_mb: int, telemetry: bool):
    c4h = Cloud4Home(
        ClusterConfig(seed=300 + size_mb, telemetry=telemetry)
    )
    c4h.start(monitors=False)
    owner = c4h.devices[0]
    reader = c4h.devices[2]
    name = f"table1-{size_mb}.bin"
    c4h.run(owner.client.store_file(name, float(size_mb)))
    fetched = c4h.run(reader.vstore.fetch_object(name))
    spans = len(c4h.telemetry.spans) if c4h.telemetry is not None else 0
    return fetched, spans


def _sweep(sizes, telemetry: bool) -> tuple[float, dict, int]:
    t0 = time.perf_counter()
    results = {size: _measure(size, telemetry) for size in sizes}
    wall = time.perf_counter() - t0
    metrics = {
        str(size): [f.total_s, f.dht_lookup_s, f.inter_node_s, f.inter_domain_s]
        for size, (f, _) in results.items()
    }
    spans = sum(n for _, n in results.values())
    return wall, metrics, spans


def bench_telemetry(sizes=SIZES_MB, repeats: int = 3) -> dict:
    off_walls, on_walls = [], []
    off_metrics = on_metrics = None
    spans = 0
    for _ in range(repeats):
        wall, off_metrics, _ = _sweep(sizes, telemetry=False)
        off_walls.append(wall)
        wall, on_metrics, spans = _sweep(sizes, telemetry=True)
        on_walls.append(wall)
    assert off_metrics == on_metrics, (
        "telemetry perturbed simulated results: "
        f"{off_metrics} vs {on_metrics}"
    )
    off_wall = min(off_walls)
    on_wall = min(on_walls)
    ns = guard_cost_ns()
    # Every span corresponds to one begin-site guard; ends, RPC-body
    # span injections, and never-fired sites roughly double the count.
    guard_sites = spans * 2
    return {
        "sizes_mb": list(sizes),
        "repeats": repeats,
        "disabled_wall_s": off_wall,
        "enabled_wall_s": on_wall,
        "spans_recorded": spans,
        "guard_cost_ns": ns,
        "guard_sites_estimate": guard_sites,
        "overhead_disabled_estimate": (ns * 1e-9 * guard_sites) / off_wall,
        "overhead_enabled": on_wall / off_wall - 1.0,
        "simulated_results_identical": True,
    }
