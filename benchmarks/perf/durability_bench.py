"""Durable rejoin vs empty rejoin: ``BENCH_durability.json``.

The WAL backend's quantitative claim: when crashed nodes come back,
recovering from the local journal must be far cheaper for the cluster
than rejoining empty-handed.  This benchmark runs the *same* seeded
crash-and-revive scenario with ``ClusterConfig(storage=)`` set to
``"mem"`` (RAM only — the revived nodes rejoin with nothing) and
``"wal"`` (the revived nodes replay their journals and keep their
payloads):

1. eight nodes store 1 MB objects round-robin (two payload replicas
   each, resilience on);
2. a fixed chaos script crashes two holder nodes, then revives them
   before the first repair sweep;
3. right after the revives, each victim fetches the objects it held
   before the crash — the *local-serve* fraction says whether recovery
   actually brought the payloads back (WAL) or just the membership
   (mem);
4. the repairers then sweep; every ``replicate`` action re-copies a
   full object, so summed copy bytes measure what the rejoin cost the
   cluster;
5. a survivor fetches every object: availability must be 100% in both
   modes — durability changes the *cost* of recovery, never whether
   data survives.

The WAL scenario runs twice and must agree bit-for-bit.
"""

from __future__ import annotations

from repro.cluster import (
    ChaosSchedule,
    Cloud4Home,
    ClusterConfig,
    DeviceConfig,
    ResilienceConfig,
)
from repro.kvstore import KvError
from repro.net import NetworkError
from repro.vstore.errors import VStoreError

N_NODES = 8
#: The two holder nodes the fixed chaos script kills and revives.
VICTIMS = ("node1", "node2")
OBJECT_MB = 1.0
#: Long repair period: the first sweep lands *after* the revives, so
#: what it finds is exactly what recovery left behind.
REPAIR_PERIOD_S = 60.0


def _build(seed: int, storage: str) -> Cloud4Home:
    config = ClusterConfig(
        devices=[DeviceConfig(name=f"node{i}") for i in range(N_NODES)],
        seed=seed,
        replication_factor=3,
        resilience=True,
        data_replicas=2,
        resilience_tuning=ResilienceConfig(repair_period_s=REPAIR_PERIOD_S),
        storage=storage,
    )
    c4h = Cloud4Home(config)
    c4h.start()
    return c4h


def _run_scenario(seed: int, storage: str, n_objects: int) -> dict:
    c4h = _build(seed, storage)
    names = []
    for i in range(n_objects):
        writer = c4h.devices[i % N_NODES]
        name = f"dur-{i:03d}.bin"
        c4h.run(writer.client.store_file(name, OBJECT_MB))
        names.append(name)

    # Stored payloads start single-homed; the repair sweeps are what
    # create the replica copies.  Run two periods so every object is at
    # full strength before the fault — pre-fault replication must not
    # be billed to the rejoin.
    c4h.sim.run(until=c4h.sim.now + 2.0 * REPAIR_PERIOD_S + 5.0)

    held_before = {
        victim: [n for n in names if c4h.device(victim).vstore.holds(n)]
        for victim in VICTIMS
    }

    chaos = (
        ChaosSchedule(c4h)
        .crash(after=1.0, device_name=VICTIMS[0])
        .crash(after=2.0, device_name=VICTIMS[1])
        .revive(after=20.0, device_name=VICTIMS[0])
        .revive(after=21.0, device_name=VICTIMS[1])
    )
    t0 = c4h.sim.now
    chaos.start()
    c4h.sim.run(until=t0 + 30.0)

    # Local-serve: can a revived node serve what it held, itself?
    # ("local" for objects it primaries, its own name for replicas.)
    local = 0
    held_total = 0
    for victim, held in sorted(held_before.items()):
        device = c4h.device(victim)
        for name in held:
            held_total += 1
            try:
                fetch = c4h.run(device.client.fetch_object(name))
            except (NetworkError, VStoreError, KvError):
                continue
            if fetch.served_from in ("local", victim):
                local += 1
    local_serve = local / held_total if held_total else 0.0

    # Let the repairers sweep twice more, then price the rejoin: every
    # replicate action after the crash re-copied a whole object.
    c4h.sim.run(until=t0 + 2.5 * REPAIR_PERIOD_S)
    repairs = [
        action
        for device in c4h.devices
        if device.repairer is not None
        for action in device.repairer.repairs
        if action.at >= t0
    ]
    replicate_copies = sum(
        len(action.nodes) for action in repairs if action.action == "replicate"
    )
    reattaches = sum(1 for action in repairs if action.action == "reattach")

    survivor = c4h.device("node0")
    failures = 0
    latencies: list[float] = []
    for name in names:
        started = c4h.sim.now
        try:
            c4h.run(survivor.client.fetch_object(name))
        except (NetworkError, VStoreError, KvError):
            failures += 1
        else:
            latencies.append(c4h.sim.now - started)

    recoveries = [
        event.detail
        for event in chaos.events
        if event.kind == "revive"
    ]
    return {
        "storage": storage,
        "objects": n_objects,
        "held_by_victims": held_total,
        "local_serve_fraction": local_serve,
        "replicate_copies": replicate_copies,
        "repair_bytes_mb": replicate_copies * OBJECT_MB,
        "reattach_actions": reattaches,
        "repair_actions": len(repairs),
        "failures": failures,
        "success_rate": (n_objects - failures) / n_objects,
        "latencies_s": latencies,
        "revives": recoveries,
    }


def bench_durability(seed: int = 1100, n_objects: int = 24) -> dict:
    """WAL rejoin vs empty rejoin under the fixed 2-of-8 crash script.

    The WAL scenario runs twice; the benchmark asserts the runs agree
    bit-for-bit (every fetch latency and repair action included) before
    reporting anything.
    """
    mem = _run_scenario(seed, "mem", n_objects)
    wal = _run_scenario(seed, "wal", n_objects)
    wal_again = _run_scenario(seed, "wal", n_objects)
    assert wal == wal_again, (
        "durability scenario is not deterministic: two identically "
        "seeded WAL runs disagree"
    )
    deterministic = wal == wal_again
    for mode in (mem, wal, wal_again):
        mode.pop("latencies_s")
    mem_mb = mem["repair_bytes_mb"]
    ratio = wal["repair_bytes_mb"] / mem_mb if mem_mb > 0 else 1.0
    return {
        "nodes": N_NODES,
        "killed": list(VICTIMS),
        "object_mb": OBJECT_MB,
        "objects": n_objects,
        "mem": mem,
        "wal": wal,
        #: WAL repair traffic as a fraction of the empty-rejoin cost
        #: (1.0 when the mem run repaired nothing — a broken scenario
        #: must fail the ratio check, not pass it vacuously).
        "repair_ratio": ratio,
        "deterministic": deterministic,
    }
