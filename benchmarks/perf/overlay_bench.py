"""48-node overlay lookup storm: cached/interned vs legacy routing."""

from __future__ import annotations

import time

from repro.overlay import NodeId
from repro.overlay import ids as overlay_ids

from tests.conftest import build_overlay


def _storm(n_nodes: int, n_lookups: int, fastpath: bool) -> tuple[float, list]:
    """Build the overlay and resolve ``n_lookups`` keys; returns
    (wall seconds, [(key hex, owner name, completion time), ...])."""
    overlay_ids.clear_id_caches()
    overlay_ids.set_interning(fastpath)
    try:
        t0 = time.perf_counter()
        sim, net, nodes = build_overlay(
            n_nodes,
            seed=7,
            route_cache=fastpath,
            coalesce_timer=fastpath,
            batched=fastpath,
            coalesce_delivery=fastpath,
            rpc_push=fastpath,
        )
        trace = []
        for i in range(n_lookups):
            key = NodeId.from_name(f"storm-{i % 250}")
            origin = nodes[i % len(nodes)]
            proc = sim.process(origin.resolve(key))
            owner = sim.run(until=proc)
            trace.append((key.hex, owner.name, sim.now))
        return time.perf_counter() - t0, trace
    finally:
        overlay_ids.set_interning(True)


def bench_overlay(n_nodes: int = 48, n_lookups: int = 1000) -> dict:
    legacy_wall, legacy_trace = _storm(n_nodes, n_lookups, fastpath=False)
    fast_wall, fast_trace = _storm(n_nodes, n_lookups, fastpath=True)

    assert len(legacy_trace) == len(fast_trace)
    for (k1, o1, t1), (k2, o2, t2) in zip(legacy_trace, fast_trace):
        assert k1 == k2 and o1 == o2, "lookup routing diverged"
        assert abs(t1 - t2) <= 1e-9 * max(abs(t1), abs(t2), 1e-30), (
            "lookup completion times diverged"
        )

    return {
        "n_nodes": n_nodes,
        "n_lookups": n_lookups,
        "legacy_wall_s": legacy_wall,
        "fastpath_wall_s": fast_wall,
        "speedup": legacy_wall / fast_wall,
    }
