"""Kernel event throughput: step()-per-event loop vs batched run."""

from __future__ import annotations

import time

from repro.sim import SimulationError, Simulator


def _build_workload(n_procs: int, n_waits: int) -> tuple[Simulator, list]:
    sim = Simulator()
    finish = []

    def worker(sim, k):
        for i in range(n_waits):
            yield sim.timeout(0.001 * ((k + i) % 7 + 1))
        finish.append(sim.now)

    for k in range(n_procs):
        sim.process(worker(sim, k))
    return sim, finish


def _drain_stepped(sim: Simulator) -> int:
    events = 0
    while True:
        try:
            sim.step()
        except SimulationError:
            return events
        events += 1


def _drain_batched(sim: Simulator) -> int:
    events = 0
    while True:
        n = sim.run_batch(4096)
        events += n
        if n < 4096:
            return events


def bench_kernel(n_procs: int = 2000, n_waits: int = 50, repeats: int = 3) -> dict:
    """Identical workloads drained through both loops; best-of wall time.

    The two dispatch loops differ by a few percent at most, so a single
    measurement is dominated by scheduler noise — take the best of
    ``repeats`` runs per mode and verify simulated results agree every
    time.
    """
    stepped_s = float("inf")
    batched_s = float("inf")
    events_stepped = events_batched = 0
    finish_ref = None
    for _ in range(max(1, repeats)):
        sim_a, finish_a = _build_workload(n_procs, n_waits)
        t0 = time.perf_counter()
        events_stepped = _drain_stepped(sim_a)
        stepped_s = min(stepped_s, time.perf_counter() - t0)

        sim_b, finish_b = _build_workload(n_procs, n_waits)
        t0 = time.perf_counter()
        events_batched = _drain_batched(sim_b)
        batched_s = min(batched_s, time.perf_counter() - t0)

        assert events_stepped == events_batched, "event counts diverged"
        assert finish_a == finish_b, "simulated completion times diverged"
        assert sim_a.now == sim_b.now
        if finish_ref is None:
            finish_ref = finish_a
        else:
            assert finish_a == finish_ref, "runs are not deterministic"

    return {
        "events": events_batched,
        "repeats": repeats,
        "stepped_wall_s": stepped_s,
        "batched_wall_s": batched_s,
        "stepped_events_per_s": events_stepped / stepped_s,
        "batched_events_per_s": events_batched / batched_s,
        "speedup": stepped_s / batched_s,
    }
