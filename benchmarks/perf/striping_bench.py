"""Erasure-coded striping vs whole-payload replication: ``BENCH_striping.json``.

The striping layer's claim is a two-axis trade: large-object fetches get
*faster* (k chunks stream in parallel, the read completes at the k-th
arrival) while durable storage gets *cheaper* ((k+m)/k = 1.5x the
payload for the default (4, 2) code, against 3.0x for a primary plus
two replicas).  This benchmark runs the same seeded scenario twice,
once with ``ClusterConfig(striping=)`` off (payload replication,
``data_replicas=2``) and once on:

1. eight nodes on a GbE home LAN store a set of large objects
   round-robin — the fast LAN makes the per-flow cap the bottleneck,
   which is exactly the regime where parallel chunk pulls win;
2. every object is fetched back healthy, recording simulated transfer
   time (the speedup axis) and the bytes each mode parked across the
   home cloud plus S3 (the storage axis);
3. a fixed chaos script kills 2 of 8 nodes — exactly the parity budget
   m — and a survivor re-fetches everything, recording availability
   (the resilience bar: no worse than ``BENCH_resilience.json``'s
   100% with the same kill);
4. the repairers sweep, and repair activity is counted.

The striping-on scenario runs **twice** and must agree bit-for-bit:
chunk placement, gather completion order, degraded decode choices, and
repair targets all draw from seeded streams, so the benchmark asserts
repeatability rather than assuming it.
"""

from __future__ import annotations

from repro.cluster import (
    ChaosSchedule,
    Cloud4Home,
    ClusterConfig,
    DeviceConfig,
    LanConfig,
    ResilienceConfig,
)
from repro.kvstore import KvError
from repro.net import NetworkError
from repro.vstore.errors import VStoreError

N_NODES = 8
#: The two holder nodes the fixed chaos script kills (= parity budget m).
VICTIMS = ("node1", "node2")
FRESHNESS_TTL_S = 30.0
#: GbE home LAN: the 8 MB/s per-flow cap binds, not the shared medium.
LAN_BANDWIDTH_MBPS = 1000.0


def _build(seed: int, striping: bool) -> Cloud4Home:
    config = ClusterConfig(
        devices=[DeviceConfig(name=f"node{i}") for i in range(N_NODES)],
        seed=seed,
        lan=LanConfig(bandwidth_mbps=LAN_BANDWIDTH_MBPS),
        striping=striping,
        # The baseline buys its availability with whole-payload copies;
        # the stripe buys the same tolerance with m=2 parity chunks.
        data_replicas=0 if striping else 2,
        replication_factor=3,
        resilience=True,
        resilience_tuning=ResilienceConfig(
            repair_period_s=20.0, freshness_ttl_s=FRESHNESS_TTL_S
        ),
    )
    c4h = Cloud4Home(config)
    c4h.start()
    return c4h


def _stored_mb(c4h: Cloud4Home) -> float:
    """Payload bytes parked across the home cloud plus S3, in MB."""
    home = sum(
        size
        for d in c4h.devices
        for bin_name in ("mandatory", "voluntary")
        for size in d.vstore.inventory()[bin_name].values()
    )
    return home + c4h.s3.stored_bytes / (1024.0 * 1024.0)


def _run_scenario(seed: int, striping: bool, n_objects: int, object_mb: float) -> dict:
    c4h = _build(seed, striping)
    names = []
    for i in range(n_objects):
        writer = c4h.devices[i % N_NODES]
        name = f"stripe-{i:03d}.bin"
        c4h.run(writer.client.store_file(name, object_mb))
        names.append(name)
    stored_mb = _stored_mb(c4h)

    # Healthy fetches: the speedup axis.  The reader must not hold
    # copies of the working set: balanced placement concentrates the
    # baseline's replicas on node0, and the resilient fetch path serves
    # an object from the reader's own disk when it can — which would
    # measure a local read, not the cross-LAN transfer this axis
    # compares.  node3 wrote only 1/8th of the objects and holds no
    # replicas, so nearly every fetch crosses the LAN in both modes.
    reader = c4h.device("node3")
    healthy_transfer_s: list[float] = []
    healthy_total_s: list[float] = []
    for name in names:
        result = c4h.run(reader.client.fetch_object(name))
        healthy_transfer_s.append(result.inter_node_s)
        healthy_total_s.append(result.total_s)

    chaos = (
        ChaosSchedule(c4h)
        .crash(after=0.5, device_name=VICTIMS[0])
        .crash(after=1.0, device_name=VICTIMS[1])
    )
    chaos.start()
    c4h.sim.run(until=c4h.sim.now + FRESHNESS_TTL_S + 5.0)

    failures = 0
    degraded_transfer_s: list[float] = []
    for name in names:
        try:
            result = c4h.run(reader.client.fetch_object(name))
        except (NetworkError, VStoreError, KvError):
            failures += 1
        else:
            degraded_transfer_s.append(result.inter_node_s)

    c4h.sim.run(until=c4h.sim.now + 60.0)
    repairs = sum(
        len(d.repairer.repairs)
        for d in c4h.devices
        if d.repairer is not None and d.name not in VICTIMS
    )
    return {
        "operations": n_objects,
        "stored_mb": stored_mb,
        "storage_blowup": stored_mb / (n_objects * object_mb),
        "healthy_transfer_s": healthy_transfer_s,
        "healthy_total_s_sum": sum(healthy_total_s),
        "failures": failures,
        "success_rate": (n_objects - failures) / n_objects,
        "degraded_transfer_s_sum": sum(degraded_transfer_s),
        "repair_actions": repairs,
    }


def bench_striping(
    seed: int = 910, n_objects: int = 24, object_mb: float = 32.0
) -> dict:
    """Striping-on vs replication-off on the same seeded GbE scenario.

    Reports the large-object fetch speedup (summed healthy transfer
    time, replication / striping), the storage ratio (striped bytes /
    replicated bytes), and availability under the fixed 2-of-8 kill.
    The striping-on case runs twice and the benchmark asserts the two
    runs agree bit-for-bit.
    """
    off = _run_scenario(seed, False, n_objects, object_mb)
    on = _run_scenario(seed, True, n_objects, object_mb)
    on_again = _run_scenario(seed, True, n_objects, object_mb)
    assert on == on_again, (
        "striping scenario is not deterministic: two identically seeded "
        "runs disagree"
    )
    deterministic = on == on_again
    speedup = sum(off["healthy_transfer_s"]) / sum(on["healthy_transfer_s"])
    storage_ratio = on["stored_mb"] / off["stored_mb"]
    # The raw samples proved determinism; keep the report compact.
    for mode in (off, on, on_again):
        mode["healthy_transfer_s_sum"] = sum(mode.pop("healthy_transfer_s"))
    return {
        "nodes": N_NODES,
        "killed": list(VICTIMS),
        "objects": n_objects,
        "object_mb": object_mb,
        "lan_bandwidth_mbps": LAN_BANDWIDTH_MBPS,
        "off": off,
        "on": on,
        "speedup": speedup,
        "storage_ratio": storage_ratio,
        "deterministic": deterministic,
    }
