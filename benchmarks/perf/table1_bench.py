"""Full Table I scenario sweep: this tree vs the pre-fastpath seed.

The primary comparison checks out the repository's seed tree (the root
commit, which predates the fast path entirely) with ``git archive`` and
times the same ``benchmarks/test_table1_fetch_costs.py`` sweep in both
trees via subprocess drivers — wall time measured inside each process,
after imports.  When git history is unavailable (shallow CI clones),
the benchmark falls back to the in-repo legacy toggles
(``ClusterConfig(fastpath=False)`` + interning off), which restore the
legacy timer processes, uncached routing, and step()-per-event dispatch
but cannot un-slot the event classes, so the fallback understates the
real speedup.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
import tarfile
import tempfile
import time
from pathlib import Path

from repro import Cloud4Home, ClusterConfig
from repro.overlay import ids as overlay_ids

REPO_ROOT = Path(__file__).resolve().parents[2]
DRIVER = Path(__file__).with_name("_table1_driver.py")

SIZES_MB = [1, 2, 5, 10, 20, 50, 100]

REL_TOL = 1e-9


def _run_driver(tree_root: Path, sizes, repeats: int) -> dict:
    out = subprocess.run(
        [
            sys.executable,
            str(DRIVER),
            str(tree_root),
            ",".join(str(s) for s in sizes),
            str(repeats),
        ],
        check=True,
        capture_output=True,
        text=True,
        timeout=600,
    )
    return json.loads(out.stdout)


def _extract_seed_tree(dest: Path) -> None:
    """``git archive`` the root commit (the growth seed) into ``dest``."""
    commits = subprocess.run(
        ["git", "rev-list", "--max-parents=0", "HEAD"],
        cwd=REPO_ROOT,
        check=True,
        capture_output=True,
        text=True,
        timeout=60,
    ).stdout.split()
    seed_commit = commits[-1]
    archive = dest / "seed.tar"
    with open(archive, "wb") as fh:
        subprocess.run(
            ["git", "archive", "--format=tar", seed_commit],
            cwd=REPO_ROOT,
            check=True,
            stdout=fh,
            timeout=120,
        )
    with tarfile.open(archive) as tar:
        tar.extractall(dest / "tree")
    archive.unlink()


def _assert_metrics_match(a: dict, b: dict, context: str) -> None:
    assert set(a) == set(b), f"{context}: size sets differ"
    for size in a:
        for x, y in zip(a[size], b[size]):
            tol = REL_TOL * max(abs(x), abs(y), 1e-30)
            assert abs(x - y) <= tol, (
                f"{context}: table1[{size}] simulated metrics diverged: {x} vs {y}"
            )


def _bench_vs_seed(sizes, repeats: int) -> dict | None:
    """Seed-tree comparison; None when git history is unavailable."""
    scratch = Path(tempfile.mkdtemp(prefix=".bench-seed-", dir=REPO_ROOT))
    try:
        try:
            _extract_seed_tree(scratch)
            seed = _run_driver(scratch / "tree", sizes, repeats)
            current = _run_driver(REPO_ROOT, sizes, repeats)
        except (subprocess.CalledProcessError, subprocess.TimeoutExpired, OSError):
            return None
        _assert_metrics_match(seed["metrics"], current["metrics"], "seed vs fastpath")
        return {
            "mode": "seed-tree",
            "sizes_mb": list(sizes),
            "repeats": repeats,
            "legacy_wall_s": seed["wall_s"],
            "fastpath_wall_s": current["wall_s"],
            "speedup": seed["wall_s"] / current["wall_s"],
        }
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def _measure(size_mb: int, fastpath: bool):
    c4h = Cloud4Home(ClusterConfig(seed=300 + size_mb, fastpath=fastpath))
    c4h.start(monitors=False)
    owner = c4h.devices[0]
    reader = c4h.devices[2]
    name = f"table1-{size_mb}.bin"
    c4h.run(owner.client.store_file(name, float(size_mb)))
    return c4h.run(reader.vstore.fetch_object(name))


def _sweep(sizes, fastpath: bool) -> tuple[float, dict]:
    overlay_ids.clear_id_caches()
    overlay_ids.set_interning(fastpath)
    try:
        t0 = time.perf_counter()
        results = {size: _measure(size, fastpath) for size in sizes}
        wall = time.perf_counter() - t0
    finally:
        overlay_ids.set_interning(True)
    return wall, {
        str(size): [f.total_s, f.dht_lookup_s, f.inter_node_s, f.inter_domain_s]
        for size, f in results.items()
    }


def _bench_toggles(sizes, repeats: int) -> dict:
    """In-repo fallback: legacy toggles inside the current tree."""
    legacy_wall = min(_sweep(sizes, fastpath=False)[0] for _ in range(repeats))
    _, legacy_metrics = _sweep(sizes, fastpath=False)
    fast_wall = min(_sweep(sizes, fastpath=True)[0] for _ in range(repeats))
    _, fast_metrics = _sweep(sizes, fastpath=True)
    _assert_metrics_match(legacy_metrics, fast_metrics, "legacy vs fastpath")
    return {
        "mode": "legacy-toggles",
        "sizes_mb": list(sizes),
        "repeats": repeats,
        "legacy_wall_s": legacy_wall,
        "fastpath_wall_s": fast_wall,
        "speedup": legacy_wall / fast_wall,
    }


def bench_table1(sizes=SIZES_MB, repeats: int = 3) -> dict:
    result = _bench_vs_seed(sizes, repeats)
    if result is not None:
        return result
    return _bench_toggles(sizes, repeats)
