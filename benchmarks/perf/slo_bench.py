"""SLO-layer overhead + the fire/resolve proof: ``BENCH_slo.json``.

Two claims, one payload:

* **Overhead** — the active observability layer (windowed rollups fed
  from judged spans, the SLO engine, the flight-recorder hub) must
  cost ≤ 5% wall time *on top of plain telemetry* on the paper's
  Table I store+fetch sweep.  Three sweeps are timed: everything off,
  telemetry on, and ``slo=True`` (telemetry + windowed rollups +
  engine + recorders); the gate compares the minimum walls of the
  last two, with the modes interleaved across ``repeats`` rounds so
  host-load drift hits all three alike.  The simulated metrics of all
  three must be bit-identical — the SLO layer observes the
  simulation, it never perturbs it.

  Staying under the bar is a design property, not luck: the span feed
  only writes rollups for the metrics the engine and health board
  judge (``WindowPolicy.names``), and the flight recorder reads span
  tails from the telemetry plane at dump time instead of copying
  every span as it finishes — so a span outside the judged set costs
  one set-membership test.

* **Fire/resolve** — the seeded 8-node chaos scenario
  (:func:`repro.cluster.availability_chaos_scenario`): killing 2 of 8
  nodes must fire the availability SLO within one window (plus one
  evaluator period) of the second kill, and the alert must resolve
  after the Repairer restores replication.  The scenario is run twice
  and must reproduce bit-for-bit; its flight-recorder dump must
  validate against the ``c4h.flightrec/1`` schema.
"""

from __future__ import annotations

import json
import time

from repro import Cloud4Home, ClusterConfig
from repro.cluster import availability_chaos_scenario
from repro.telemetry import validate_recorder_dump

SIZES_MB = [1, 2, 5, 10, 20, 50, 100]

#: Sweep modes, in measurement order.
_MODES = ("off", "telemetry", "slo")


def _measure(size_mb: int, mode: str, ops: int):
    """One Table I point: a cluster, then ``ops`` store+fetch pairs.

    Several operations per build keep the measurement about the steady
    state (the per-span feed, the rollup writes) rather than about
    cluster construction, which dominates a single-op point.
    """
    config = ClusterConfig(
        seed=700 + size_mb,
        telemetry=mode != "off",
        slo=mode == "slo",
    )
    c4h = Cloud4Home(config)
    c4h.start(monitors=False)
    owner = c4h.devices[0]
    reader = c4h.devices[2]
    fetches = []
    for i in range(ops):
        name = f"table1-{size_mb}-{i}.bin"
        c4h.run(owner.client.store_file(name, float(size_mb)))
        fetches.append(c4h.run(reader.vstore.fetch_object(name)))
    if mode == "slo":
        # One end-of-point evaluation (the periodic evaluator is a
        # monitor and monitors are off here) so the engine path is on
        # the clock too.
        c4h.slo_engine.evaluate(c4h.sim.now)
    return fetches


def _sweep(sizes, mode: str, ops: int) -> tuple[float, dict]:
    t0 = time.perf_counter()
    results = {size: _measure(size, mode, ops) for size in sizes}
    wall = time.perf_counter() - t0
    metrics = {
        str(size): [
            [f.total_s, f.dht_lookup_s, f.inter_node_s, f.inter_domain_s]
            for f in fetches
        ]
        for size, fetches in results.items()
    }
    return wall, metrics


def _chaos_section() -> dict:
    """Run the availability scenario twice; summarize + verify."""
    first = availability_chaos_scenario()
    second = availability_chaos_scenario()
    deterministic = json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True
    )
    dump_entries = validate_recorder_dump(first["dump"])
    return {
        "nodes": first["nodes"],
        "killed": first["killed"],
        "window_s": first["window_s"],
        "eval_period_s": first["eval_period_s"],
        "t_kill": first["t_kill"],
        "fired_at": first["fired_at"],
        "fired_within_s": first["fired_within_s"],
        "resolved_at": first["resolved_at"],
        "first_repair_at": first["first_repair_at"],
        "repair_actions": first["repair_actions"],
        "alerts": first["alerts"],
        "evaluations": first["evaluations"],
        "dump_entries": dump_entries,
        "ok": first["ok"],
        "deterministic": deterministic,
    }


def bench_slo(sizes=SIZES_MB, repeats: int = 9, ops: int = 6) -> dict:
    walls: dict[str, list[float]] = {mode: [] for mode in _MODES}
    metrics: dict[str, dict] = {}
    for _ in range(repeats):
        for mode in _MODES:
            wall, metrics[mode] = _sweep(sizes, mode, ops)
            walls[mode].append(wall)
    assert metrics["off"] == metrics["telemetry"] == metrics["slo"], (
        "the SLO layer perturbed simulated results: "
        f"{metrics['off']} vs {metrics['telemetry']} vs {metrics['slo']}"
    )
    off_wall = min(walls["off"])
    telemetry_wall = min(walls["telemetry"])
    slo_wall = min(walls["slo"])
    return {
        "sizes_mb": list(sizes),
        "repeats": repeats,
        "ops_per_point": ops,
        "disabled_wall_s": off_wall,
        "telemetry_wall_s": telemetry_wall,
        "slo_wall_s": slo_wall,
        "overhead_vs_disabled": slo_wall / off_wall - 1.0,
        "overhead_vs_telemetry": slo_wall / telemetry_wall - 1.0,
        "simulated_results_identical": True,
        "chaos": _chaos_section(),
    }
