"""The scale wall: open-loop load curves on 256 → 10k-node overlays.

Two measurements, sharded as :class:`repro.parallel.Job` units over the
process pool (every point is an independent simulation):

* **Load curves** — ``repro.load.bench:scale_point`` at each
  (node count, offered rate) pair.  The simulated side gives offered
  vs. achieved throughput and the latency percentiles (deterministic
  for the seed); the wall side gives events/s on this machine — the
  number the hot-path work moves.
* **Join A/B** — ``repro.load.bench:join_wall`` with the paper-faithful
  sequential protocol join (O(N²) messages) vs. ``fast_join``'s direct
  view construction, at each A/B node count.  The headline fix: the
  reported ``speedup`` is the A/B ratio at the largest node count and
  is what ``--check`` holds against the ≥2× threshold.

Saturation methodology (why the knee sits near
``max_inflight / mean latency``) is documented in ``docs/SCALING.md``.
"""

from __future__ import annotations

from repro.load.bench import DEFAULT_MAX_INFLIGHT
from repro.parallel import Job, run_jobs

__all__ = ["bench_scale", "DEFAULT_NODE_COUNTS", "DEFAULT_RATES"]

DEFAULT_NODE_COUNTS = (256, 1000, 4000, 10000)

#: Offered-rate ladder (req/s): below, near, and past the concurrency
#: budget's saturation knee (~96 in-flight / ~10 ms mean ≈ 10 k/s).
DEFAULT_RATES = (1000.0, 4000.0, 16000.0)

#: Node counts for the protocol-join vs fast-join A/B.  The reference
#: join is O(N²) messages, so this list stays below the full ladder.
DEFAULT_AB_NODE_COUNTS = (256, 4000)


def bench_scale(
    node_counts=DEFAULT_NODE_COUNTS,
    rates=DEFAULT_RATES,
    duration_s: float = 5.0,
    seed: int = 0,
    workers: int = 4,
    ab_node_counts=DEFAULT_AB_NODE_COUNTS,
) -> dict:
    """Run the full grid + join A/B; return the BENCH_scale payload."""
    point_jobs = [
        Job.make(
            "repro.load.bench:scale_point",
            {
                "n_nodes": n,
                "rate": rate,
                "duration_s": duration_s,
                "seed": seed,
                "max_inflight": DEFAULT_MAX_INFLIGHT,
                "probe_objects": False,
            },
        )
        for n in node_counts
        for rate in rates
    ]
    ab_jobs = [
        Job.make(
            "repro.load.bench:join_wall",
            {"n_nodes": n, "seed": seed, "fast_join": fast},
        )
        for n in ab_node_counts
        for fast in (False, True)
    ]
    # One batch: the slow O(N²) reference joins overlap the load points.
    results = run_jobs(point_jobs + ab_jobs, workers=workers, on_error="raise")
    points = [r.value for r in results[: len(point_jobs)]]
    ab_values = [r.value for r in results[len(point_jobs) :]]

    curves = {}
    grid = iter(points)
    for n in node_counts:
        curve_points = []
        for rate in rates:
            value = next(grid)
            sim = value["sim"]
            curve_points.append(
                {
                    "rate": rate,
                    "offered_rate": sim["offered_rate"],
                    "achieved_rate": sim["achieved_rate"],
                    "shed": sim["shed"],
                    "p50_ms": sim["latency"]["p50"] * 1000.0,
                    "p99_ms": sim["latency"]["p99"] * 1000.0,
                    "p999_ms": sim["latency"]["p999"] * 1000.0,
                    "wall": value["wall"],
                    "memory": value["memory"],
                }
            )
        curves[str(n)] = {
            "points": curve_points,
            "saturation_rate": max(p["achieved_rate"] for p in curve_points),
            "peak_rss_mb": max(
                (p["memory"]["peak_rss_mb"] or 0.0) for p in curve_points
            ),
        }

    join_ab = {}
    pairs = iter(ab_values)
    for n in ab_node_counts:
        reference, fast = next(pairs), next(pairs)
        join_ab[str(n)] = {
            "reference_s": reference["total_s"],
            "fast_s": fast["total_s"],
            "speedup": (
                reference["total_s"] / fast["total_s"]
                if fast["total_s"]
                else float("inf")
            ),
            "reference": reference,
            "fast": fast,
        }

    largest_ab = str(max(ab_node_counts))
    return {
        "node_counts": list(node_counts),
        "rates": list(rates),
        "duration_s": duration_s,
        "seed": seed,
        "max_inflight": DEFAULT_MAX_INFLIGHT,
        "curves": curves,
        "join_ab": join_ab,
        # The headline hot-path fix, in run.py --check threshold shape.
        "speedup": join_ab[largest_ab]["speedup"],
        "speedup_nodes": int(largest_ab),
    }
