"""Microbenchmarks for the cross-layer simulation fast path.

Unlike the ``benchmarks/test_*`` suite (which reproduces the paper's
tables and figures in *simulated* time), this package measures the
*wall-clock* cost of running the simulator itself, comparing each fast
path against the legacy reference implementation that is kept in-tree:

==================  =============================  =========================
benchmark           fast path                      legacy baseline
==================  =============================  =========================
kernel              batched ``Simulator.run``      ``step()``-per-event loop
xensocket           closed-form ``transfer``       per-page ``transfer_paged``
overlay             route cache + interned ids     uncached routing, no
                                                   interning, timer processes
table1              ``ClusterConfig(fastpath=      ``fastpath=False`` + no
                    True)`` (default)              interning
==================  =============================  =========================

Run ``python -m benchmarks.perf.run`` from the repo root to execute
everything and write ``BENCH_fastpath.json``; every benchmark first
checks that both modes produce identical simulated results, so a
speedup that changes behaviour fails loudly instead of being recorded.
"""
