"""Availability under chaos: ``BENCH_resilience.json``.

The resilience layer's claim is quantitative: with two payload replicas
per object (``data_replicas=2``), killing 2 of 8 home nodes mid-workload
must leave fetch/process availability at >= 99% — versus the unprotected
stack, where every object homed on a dead node is simply gone until it
revives.  This benchmark runs the *same* seeded scenario twice, with
``ClusterConfig(resilience=)`` off and on:

1. eight nodes store objects round-robin (primaries spread across the
   home cloud, plus two replica copies each when resilience is on);
2. a fixed chaos script crashes two holder nodes;
3. the simulation advances past the freshness TTL (the window in which
   health-aware decisions learn the victims are gone);
4. one surviving node fetches every object and runs a face-detection
   service over a fixed subset, recording per-operation success and
   simulated latency.

Reported per mode: success rate, p50/p99 latency of successful
operations, and repair activity.  The resilience-on scenario is run
**twice** and must agree bit-for-bit — every retry backoff, failover
choice, and repair action draws from seeded streams, so two runs of the
same scenario are identical; the benchmark asserts it rather than
assuming it.
"""

from __future__ import annotations

from repro.cluster import (
    ChaosSchedule,
    Cloud4Home,
    ClusterConfig,
    DeviceConfig,
    ResilienceConfig,
)
from repro.kvstore import KvError
from repro.net import NetworkError
from repro.services import FaceDetection
from repro.vstore.errors import VStoreError

N_NODES = 8
#: The two holder nodes the fixed chaos script kills.
VICTIMS = ("node1", "node2")
FRESHNESS_TTL_S = 30.0


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (0 for an empty sample)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def _build(seed: int, resilience: bool) -> Cloud4Home:
    config = ClusterConfig(
        devices=[DeviceConfig(name=f"node{i}") for i in range(N_NODES)],
        seed=seed,
        # Three metadata copies so any two crashes leave records
        # reachable; what's measured here is *payload* availability.
        replication_factor=3,
        resilience=resilience,
        data_replicas=2,
        resilience_tuning=ResilienceConfig(
            repair_period_s=20.0, freshness_ttl_s=FRESHNESS_TTL_S
        ),
    )
    c4h = Cloud4Home(config)
    c4h.start()
    c4h.deploy_service(
        lambda: FaceDetection(), nodes=[d.name for d in c4h.devices]
    )
    return c4h


def _run_scenario(
    seed: int, resilience: bool, n_objects: int, process_every: int
) -> dict:
    c4h = _build(seed, resilience)
    names = []
    for i in range(n_objects):
        writer = c4h.devices[i % N_NODES]
        name = f"avail-{i:03d}.jpg"
        c4h.run(writer.client.store_file(name, 1.0))
        names.append(name)

    chaos = (
        ChaosSchedule(c4h)
        .crash(after=0.5, device_name=VICTIMS[0])
        .crash(after=1.0, device_name=VICTIMS[1])
    )
    chaos.start()
    # Let the health signals converge: the victims' published snapshots
    # age past the freshness TTL, so (with resilience on) placement and
    # processing decisions stop routing work at the corpses.
    c4h.sim.run(until=c4h.sim.now + FRESHNESS_TTL_S + 5.0)

    survivor = c4h.device("node0")
    failures = 0
    latencies: list[float] = []
    for i, name in enumerate(names):
        t0 = c4h.sim.now
        try:
            if process_every and i % process_every == 0:
                c4h.run(survivor.client.process(name, "face-detect#v1"))
            else:
                c4h.run(survivor.client.fetch_object(name))
        except (NetworkError, VStoreError, KvError):
            failures += 1
        else:
            latencies.append(c4h.sim.now - t0)

    # Let the repairers sweep a few periods, then count what they did.
    c4h.sim.run(until=c4h.sim.now + 60.0)
    repairs = sum(
        len(d.repairer.repairs)
        for d in c4h.devices
        if d.repairer is not None and d.name not in VICTIMS
    )
    return {
        "operations": n_objects,
        "failures": failures,
        "success_rate": (n_objects - failures) / n_objects,
        "p50_s": _percentile(latencies, 0.50),
        "p99_s": _percentile(latencies, 0.99),
        "latencies_s": latencies,
        "repair_actions": repairs,
    }


def bench_resilience(
    seed: int = 900, n_objects: int = 48, process_every: int = 4
) -> dict:
    """Off-vs-on availability under the fixed 2-of-8 crash script.

    The resilience-on case runs twice; the benchmark asserts the two
    runs agree bit-for-bit (success pattern *and* every simulated
    latency, which includes every retry backoff delay).
    """
    off = _run_scenario(seed, False, n_objects, process_every)
    on = _run_scenario(seed, True, n_objects, process_every)
    on_again = _run_scenario(seed, True, n_objects, process_every)
    assert on == on_again, (
        "resilience-on scenario is not deterministic: two identically "
        "seeded runs disagree"
    )
    deterministic = on == on_again
    # The raw samples proved determinism; keep the report compact.
    for mode in (off, on, on_again):
        mode.pop("latencies_s")
    return {
        "nodes": N_NODES,
        "killed": list(VICTIMS),
        "data_replicas": 2,
        "objects": n_objects,
        "process_every": process_every,
        "off": off,
        "on": on,
        "availability_gain": on["success_rate"] - off["success_rate"],
        "deterministic": deterministic,
    }
