"""Run every fast-path microbenchmark and write ``BENCH_fastpath.json``.

Usage (from the repo root)::

    PYTHONPATH=src python -m benchmarks.perf.run            # full run
    PYTHONPATH=src python -m benchmarks.perf.run --smoke    # CI smoke
    PYTHONPATH=src python -m benchmarks.perf.run --check    # + thresholds

``--smoke`` shrinks every workload so the whole suite finishes in a few
seconds (used by CI, which makes no timing assertions).  ``--check``
additionally enforces the acceptance thresholds: ≥2× on the 100 MB
XenSocket transfer and ≥1.3× on the full Table I sweep.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks.perf.kernel_bench import bench_kernel
from benchmarks.perf.overlay_bench import bench_overlay
from benchmarks.perf.table1_bench import bench_table1
from benchmarks.perf.xensocket_bench import bench_xensocket

MB = 1024 * 1024

THRESHOLDS = {"xensocket_100mb": 2.0, "table1_sweep": 1.3}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workloads; verifies the harness runs, not the timings",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless the acceptance speedup thresholds are met",
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_fastpath.json"),
        help="where to write the results JSON",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        results = {
            "kernel": bench_kernel(n_procs=200, n_waits=10),
            "xensocket_100mb": bench_xensocket(nbytes=5 * MB),
            "overlay_lookup_storm": bench_overlay(n_nodes=12, n_lookups=100),
            "table1_sweep": bench_table1(sizes=[1, 10], repeats=1),
        }
    else:
        results = {
            "kernel": bench_kernel(),
            "xensocket_100mb": bench_xensocket(),
            "overlay_lookup_storm": bench_overlay(),
            "table1_sweep": bench_table1(),
        }

    payload = {
        "suite": "fastpath",
        "smoke": args.smoke,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "results": results,
        "thresholds": THRESHOLDS,
    }
    out = Path(args.output)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    print(f"fastpath microbenchmarks ({'smoke' if args.smoke else 'full'} mode)")
    for name, r in results.items():
        print(f"  {name:22s} speedup {r['speedup']:6.2f}x")
    print(f"written: {out}")

    if args.check:
        failures = [
            f"{name}: {results[name]['speedup']:.2f}x < {minimum}x"
            for name, minimum in THRESHOLDS.items()
            if results[name]["speedup"] < minimum
        ]
        if failures:
            print("threshold failures:\n  " + "\n  ".join(failures))
            return 1
        print("all speedup thresholds met")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
