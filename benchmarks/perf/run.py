"""Run the perf suites: ``BENCH_fastpath.json`` + ``BENCH_parallel.json``
+ ``BENCH_telemetry.json`` + ``BENCH_resilience.json`` + ``BENCH_scale.json``
+ ``BENCH_striping.json`` + ``BENCH_slo.json`` + ``BENCH_durability.json``.

Usage (from the repo root)::

    PYTHONPATH=src python -m benchmarks.perf.run            # full run
    PYTHONPATH=src python -m benchmarks.perf.run --smoke    # CI smoke
    PYTHONPATH=src python -m benchmarks.perf.run --check    # + thresholds

``--smoke`` shrinks every workload so the whole suite finishes in a few
seconds (used by CI, which makes no timing assertions).  ``--check``
additionally enforces the acceptance thresholds: ≥2× on the 100 MB
XenSocket transfer, ≥1.3× on the full Table I sweep, ≥2× for the
parallel harness on the Table I sweep with repeats, a strictly
faster scatter-gather decision at every candidate count, a
disabled-telemetry guard overhead under 5% of the Table I sweep,
an active SLO layer (windowed rollups + engine + flight recorders)
under 5% on top of plain telemetry with its seeded chaos scenario
firing and resolving the availability alert deterministically,
>= 99% fetch/process availability with resilience on while 2 of 8
nodes are down (the resilience suite also self-asserts that two
identically seeded resilient runs agree bit-for-bit), for the
striping suite a >= 2x large-object fetch speedup over whole-payload
replication at <= 0.6x its stored bytes with 100% availability under
the same 2-of-8 kill, and for the durability suite a WAL rejoin that
costs <= 0.25x the repair bytes of an empty (mem) rejoin while the
revived nodes serve >= 90% of their pre-crash holdings locally and
both modes stay at 100% fetch availability.

The parallel suite verifies — not just claims — that pooled execution
reproduces the naive serial loop bit-for-bit at several worker counts;
the speedup numbers only mean anything on top of that equality.

The scale suite (``BENCH_scale.json``) drives 256 → 10 k-node overlays
with the open-loop load driver and A/Bs the O(N²) protocol join against
``fast_join``; ``--check`` requires ≥2× on that A/B at the largest
node count.  It is the slow suite — skip it with ``--no-scale`` when
iterating on the others.  Every suite payload records a
:func:`repro.telemetry.memory_probe` snapshot (current + peak RSS) so
memory regressions surface next to time regressions.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks.perf.decision_bench import bench_decision
from benchmarks.perf.durability_bench import bench_durability
from benchmarks.perf.kernel_bench import bench_kernel
from benchmarks.perf.overlay_bench import bench_overlay
from benchmarks.perf.parallel_bench import (
    bench_parallel_fig5,
    bench_parallel_table1,
)
from benchmarks.perf.resilience_bench import bench_resilience
from benchmarks.perf.scale_bench import bench_scale
from benchmarks.perf.slo_bench import bench_slo
from benchmarks.perf.striping_bench import bench_striping
from benchmarks.perf.table1_bench import bench_table1
from benchmarks.perf.telemetry_bench import bench_telemetry
from benchmarks.perf.xensocket_bench import bench_xensocket
from repro.telemetry import memory_probe

MB = 1024 * 1024

THRESHOLDS = {"xensocket_100mb": 2.0, "table1_sweep": 1.3}

#: Protocol join vs fast_join at the largest A/B node count.
SCALE_MIN_JOIN_SPEEDUP = 2.0

PARALLEL_THRESHOLDS = {
    "table1_parallel": 2.0,
    "fig5_parallel": 2.0,
    "decision_scatter_gather": 1.2,
}

#: The guarded no-op emit path must stay under 5% of sweep wall time.
TELEMETRY_MAX_DISABLED_OVERHEAD = 0.05

#: The active SLO layer must stay under 5% on top of plain telemetry.
SLO_MAX_ENABLED_OVERHEAD = 0.05

#: Fetch/process availability with resilience on, 2 of 8 nodes dead.
RESILIENCE_MIN_SUCCESS = 0.99

#: Striping vs replication: summed healthy large-object transfer time.
STRIPING_MIN_SPEEDUP = 2.0
#: Striped stored bytes over replicated stored bytes ((k+m)/k vs 1+R).
STRIPING_MAX_STORAGE_RATIO = 0.6
#: Fetch availability with striping on and exactly m=2 holders dead.
STRIPING_MIN_SUCCESS = 1.0

#: WAL-rejoin repair bytes over empty-rejoin repair bytes.
DURABILITY_MAX_REPAIR_RATIO = 0.25
#: Fraction of their pre-crash holdings revived WAL nodes serve locally.
DURABILITY_MIN_LOCAL_SERVE = 0.9
#: Fetch availability after recovery, in *both* storage modes.
DURABILITY_MIN_SUCCESS = 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workloads; verifies the harness runs, not the timings",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless the acceptance speedup thresholds are met",
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_fastpath.json"),
        help="where to write the fastpath results JSON",
    )
    parser.add_argument(
        "--output-parallel",
        default=str(REPO_ROOT / "BENCH_parallel.json"),
        help="where to write the parallel-harness results JSON",
    )
    parser.add_argument(
        "--output-telemetry",
        default=str(REPO_ROOT / "BENCH_telemetry.json"),
        help="where to write the telemetry-overhead results JSON",
    )
    parser.add_argument(
        "--output-resilience",
        default=str(REPO_ROOT / "BENCH_resilience.json"),
        help="where to write the availability-under-chaos results JSON",
    )
    parser.add_argument(
        "--output-scale",
        default=str(REPO_ROOT / "BENCH_scale.json"),
        help="where to write the scale-wall results JSON",
    )
    parser.add_argument(
        "--output-striping",
        default=str(REPO_ROOT / "BENCH_striping.json"),
        help="where to write the striping-vs-replication results JSON",
    )
    parser.add_argument(
        "--output-slo",
        default=str(REPO_ROOT / "BENCH_slo.json"),
        help="where to write the SLO-layer overhead + chaos results JSON",
    )
    parser.add_argument(
        "--output-durability",
        default=str(REPO_ROOT / "BENCH_durability.json"),
        help="where to write the WAL-vs-empty rejoin results JSON",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="pool size for the parallel-harness benchmarks",
    )
    parser.add_argument(
        "--no-scale",
        action="store_true",
        help="skip the (slow) 10k-node scale suite",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        results = {
            "kernel": bench_kernel(n_procs=200, n_waits=10),
            "xensocket_100mb": bench_xensocket(nbytes=5 * MB),
            "overlay_lookup_storm": bench_overlay(n_nodes=12, n_lookups=100),
            "table1_sweep": bench_table1(sizes=[1, 10], repeats=1),
        }
        parallel_results = {
            "table1_parallel": bench_parallel_table1(
                sizes=[1, 10], repeats=6, workers=args.workers
            ),
            "fig5_parallel": bench_parallel_fig5(
                sizes=[5, 20], repeats=4, workers=args.workers
            ),
            "decision_scatter_gather": bench_decision(ks=(2, 4)),
        }
        telemetry_result = bench_telemetry(sizes=[1, 10], repeats=1)
        resilience_result = bench_resilience(n_objects=16)
        striping_result = bench_striping(n_objects=8)
        slo_result = bench_slo(sizes=[1, 10], repeats=2, ops=2)
        durability_result = bench_durability(n_objects=12)
        scale_result = None
        if not args.no_scale:
            scale_result = bench_scale(
                node_counts=(64, 256),
                rates=(500.0, 4000.0),
                duration_s=2.0,
                workers=args.workers,
                ab_node_counts=(256,),
            )
    else:
        results = {
            "kernel": bench_kernel(),
            "xensocket_100mb": bench_xensocket(),
            "overlay_lookup_storm": bench_overlay(),
            "table1_sweep": bench_table1(),
        }
        parallel_results = {
            "table1_parallel": bench_parallel_table1(workers=args.workers),
            "fig5_parallel": bench_parallel_fig5(workers=args.workers),
            "decision_scatter_gather": bench_decision(),
        }
        telemetry_result = bench_telemetry()
        resilience_result = bench_resilience()
        striping_result = bench_striping()
        slo_result = bench_slo()
        durability_result = bench_durability()
        scale_result = None
        if not args.no_scale:
            scale_result = bench_scale(workers=args.workers)

    host = {"python": platform.python_version(), "platform": platform.platform()}
    # Satellite invariant: every BENCH json records a memory snapshot.
    host["memory"] = memory_probe(count_objects=False)
    out = Path(args.output)
    out.write_text(
        json.dumps(
            {
                "suite": "fastpath",
                "smoke": args.smoke,
                **host,
                "results": results,
                "thresholds": THRESHOLDS,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    out_parallel = Path(args.output_parallel)
    out_parallel.write_text(
        json.dumps(
            {
                "suite": "parallel",
                "smoke": args.smoke,
                **host,
                "results": parallel_results,
                "thresholds": PARALLEL_THRESHOLDS,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )

    out_telemetry = Path(args.output_telemetry)
    out_telemetry.write_text(
        json.dumps(
            {
                "suite": "telemetry",
                "smoke": args.smoke,
                **host,
                "results": {"table1_telemetry": telemetry_result},
                "max_disabled_overhead": TELEMETRY_MAX_DISABLED_OVERHEAD,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )

    out_resilience = Path(args.output_resilience)
    out_resilience.write_text(
        json.dumps(
            {
                "suite": "resilience",
                "smoke": args.smoke,
                **host,
                "results": {"availability_under_chaos": resilience_result},
                "min_success_rate": RESILIENCE_MIN_SUCCESS,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )

    out_striping = Path(args.output_striping)
    out_striping.write_text(
        json.dumps(
            {
                "suite": "striping",
                "smoke": args.smoke,
                **host,
                "results": {"striping_vs_replication": striping_result},
                "min_speedup": STRIPING_MIN_SPEEDUP,
                "max_storage_ratio": STRIPING_MAX_STORAGE_RATIO,
                "min_success_rate": STRIPING_MIN_SUCCESS,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )

    out_slo = Path(args.output_slo)
    out_slo.write_text(
        json.dumps(
            {
                "suite": "slo",
                "smoke": args.smoke,
                **host,
                "results": {"table1_slo": slo_result},
                "max_enabled_overhead": SLO_MAX_ENABLED_OVERHEAD,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )

    out_durability = Path(args.output_durability)
    out_durability.write_text(
        json.dumps(
            {
                "suite": "durability",
                "smoke": args.smoke,
                **host,
                "results": {"wal_vs_empty_rejoin": durability_result},
                "max_repair_ratio": DURABILITY_MAX_REPAIR_RATIO,
                "min_local_serve": DURABILITY_MIN_LOCAL_SERVE,
                "min_success_rate": DURABILITY_MIN_SUCCESS,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )

    out_scale = Path(args.output_scale)
    if scale_result is not None:
        out_scale.write_text(
            json.dumps(
                {
                    "suite": "scale",
                    "smoke": args.smoke,
                    **host,
                    "results": scale_result,
                    "min_join_speedup": SCALE_MIN_JOIN_SPEEDUP,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )

    mode = "smoke" if args.smoke else "full"
    print(f"fastpath microbenchmarks ({mode} mode)")
    for name, r in results.items():
        print(f"  {name:24s} speedup {r['speedup']:6.2f}x")
    print(f"parallel harness ({mode} mode, {args.workers} workers)")
    for name, r in parallel_results.items():
        extra = ""
        if "jobs" in r:
            extra = f"  ({r['jobs']} jobs, {r['distinct_jobs']} distinct)"
        print(f"  {name:24s} speedup {r['speedup']:6.2f}x{extra}")
    print(f"telemetry overhead ({mode} mode)")
    print(
        f"  table1_telemetry         disabled "
        f"{telemetry_result['overhead_disabled_estimate']:.4%} (est.), "
        f"enabled {telemetry_result['overhead_enabled']:+.1%}, "
        f"guard {telemetry_result['guard_cost_ns']:.0f} ns"
    )
    chaos = slo_result["chaos"]
    print(f"slo layer ({mode} mode)")
    print(
        f"  table1_slo               overhead "
        f"{slo_result['overhead_vs_telemetry']:+.1%} vs telemetry "
        f"({slo_result['overhead_vs_disabled']:+.1%} vs all-off); "
        f"chaos fired +{chaos['fired_within_s']:.2f}s after the kill, "
        f"resolved at {chaos['resolved_at']:.2f}s "
        f"(ok={chaos['ok']}, deterministic={chaos['deterministic']}, "
        f"{chaos['dump_entries']} dump entries)"
    )
    print(f"availability under chaos ({mode} mode)")
    print(
        f"  resilience               off "
        f"{resilience_result['off']['success_rate']:.1%} -> on "
        f"{resilience_result['on']['success_rate']:.1%} "
        f"(p99 {resilience_result['on']['p99_s']:.3f} s, "
        f"{resilience_result['on']['repair_actions']} repairs, "
        f"deterministic={resilience_result['deterministic']})"
    )
    print(f"striping vs replication ({mode} mode)")
    print(
        f"  striping                 speedup "
        f"{striping_result['speedup']:6.2f}x, storage "
        f"{striping_result['storage_ratio']:.2f}x of replication, "
        f"availability {striping_result['on']['success_rate']:.0%} "
        f"with {len(striping_result['killed'])} of "
        f"{striping_result['nodes']} killed "
        f"(deterministic={striping_result['deterministic']})"
    )
    print(f"durable vs empty rejoin ({mode} mode)")
    print(
        f"  durability               repair bytes "
        f"{durability_result['wal']['repair_bytes_mb']:.0f} MB (wal) vs "
        f"{durability_result['mem']['repair_bytes_mb']:.0f} MB (mem), "
        f"ratio {durability_result['repair_ratio']:.2f}x, "
        f"local-serve {durability_result['wal']['local_serve_fraction']:.0%}, "
        f"availability {durability_result['wal']['success_rate']:.0%}/"
        f"{durability_result['mem']['success_rate']:.0%} "
        f"(deterministic={durability_result['deterministic']})"
    )
    if scale_result is not None:
        print(f"scale wall ({mode} mode, {args.workers} workers)")
        for n in scale_result["node_counts"]:
            curve = scale_result["curves"][str(n)]
            knee = curve["points"][-1]
            print(
                f"  {n:>6d} nodes: saturation "
                f"{curve['saturation_rate']:8.0f} req/s, "
                f"p99 {knee['p99_ms']:6.1f} ms, "
                f"peak rss {curve['peak_rss_mb']:.0f} MB"
            )
        print(
            f"  join A/B @ {scale_result['speedup_nodes']} nodes: "
            f"{scale_result['speedup']:.2f}x"
        )

    written = [
        out,
        out_parallel,
        out_telemetry,
        out_resilience,
        out_striping,
        out_slo,
        out_durability,
    ]
    if scale_result is not None:
        written.append(out_scale)
    print("written: " + " ".join(str(p) for p in written))

    if args.check:
        failures = [
            f"{name}: {suite[name]['speedup']:.2f}x < {minimum}x"
            for suite, thresholds in (
                (results, THRESHOLDS),
                (parallel_results, PARALLEL_THRESHOLDS),
            )
            for name, minimum in thresholds.items()
            if suite[name]["speedup"] < minimum
        ]
        disabled = telemetry_result["overhead_disabled_estimate"]
        if disabled >= TELEMETRY_MAX_DISABLED_OVERHEAD:
            failures.append(
                f"table1_telemetry: disabled-path overhead {disabled:.2%}"
                f" >= {TELEMETRY_MAX_DISABLED_OVERHEAD:.0%}"
            )
        slo_overhead = slo_result["overhead_vs_telemetry"]
        if slo_overhead >= SLO_MAX_ENABLED_OVERHEAD:
            failures.append(
                f"slo: enabled overhead {slo_overhead:.2%} on top of telemetry"
                f" >= {SLO_MAX_ENABLED_OVERHEAD:.0%}"
            )
        if not slo_result["chaos"]["ok"]:
            failures.append(
                "slo: chaos scenario did not fire-and-resolve the"
                " availability SLO within its bars"
            )
        if not slo_result["chaos"]["deterministic"]:
            failures.append("slo: chaos scenario runs are not bit-for-bit repeatable")
        on_success = resilience_result["on"]["success_rate"]
        if on_success < RESILIENCE_MIN_SUCCESS:
            failures.append(
                f"resilience: on-success {on_success:.1%}"
                f" < {RESILIENCE_MIN_SUCCESS:.0%}"
            )
        if not resilience_result["deterministic"]:
            failures.append("resilience: runs are not bit-for-bit repeatable")
        if striping_result["speedup"] < STRIPING_MIN_SPEEDUP:
            failures.append(
                f"striping: fetch speedup {striping_result['speedup']:.2f}x"
                f" < {STRIPING_MIN_SPEEDUP}x"
            )
        if striping_result["storage_ratio"] > STRIPING_MAX_STORAGE_RATIO:
            failures.append(
                f"striping: storage ratio {striping_result['storage_ratio']:.2f}x"
                f" > {STRIPING_MAX_STORAGE_RATIO}x of replication"
            )
        striping_success = striping_result["on"]["success_rate"]
        if striping_success < STRIPING_MIN_SUCCESS:
            failures.append(
                f"striping: availability {striping_success:.1%}"
                f" < {STRIPING_MIN_SUCCESS:.0%} with m holders killed"
            )
        if not striping_result["deterministic"]:
            failures.append("striping: runs are not bit-for-bit repeatable")
        if durability_result["repair_ratio"] > DURABILITY_MAX_REPAIR_RATIO:
            failures.append(
                f"durability: WAL rejoin repair ratio"
                f" {durability_result['repair_ratio']:.2f}x"
                f" > {DURABILITY_MAX_REPAIR_RATIO}x of the empty rejoin"
            )
        wal_local = durability_result["wal"]["local_serve_fraction"]
        if wal_local < DURABILITY_MIN_LOCAL_SERVE:
            failures.append(
                f"durability: WAL local-serve {wal_local:.1%}"
                f" < {DURABILITY_MIN_LOCAL_SERVE:.0%} after revive"
            )
        for mode_name in ("mem", "wal"):
            mode_success = durability_result[mode_name]["success_rate"]
            if mode_success < DURABILITY_MIN_SUCCESS:
                failures.append(
                    f"durability: {mode_name} availability {mode_success:.1%}"
                    f" < {DURABILITY_MIN_SUCCESS:.0%} after recovery"
                )
        if not durability_result["deterministic"]:
            failures.append(
                "durability: runs are not bit-for-bit repeatable"
            )
        if scale_result is not None and (
            scale_result["speedup"] < SCALE_MIN_JOIN_SPEEDUP
        ):
            failures.append(
                f"scale: join A/B {scale_result['speedup']:.2f}x"
                f" < {SCALE_MIN_JOIN_SPEEDUP}x"
                f" at {scale_result['speedup_nodes']} nodes"
            )
        if failures:
            print("threshold failures:\n  " + "\n  ".join(failures))
            return 1
        print("all speedup thresholds met")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
