"""Scatter-gather vs sequential snapshot fetch in the decision engine.

Measures *simulated* decision latency — the quantity the paper's
evaluation charges for ``chimeraGetDecision()`` — with the k candidate
``store.get`` lookups issued one after another (sum-of-k) vs all in
flight at once (max-of-k).  Rankings must be identical; only the time
axis may move.
"""

from __future__ import annotations

from repro.parallel.sweeps import decision_point


def bench_decision(ks=(2, 4, 6), seed: int = 11) -> dict:
    """Simulated decision latency per candidate count, both modes."""
    per_k = {}
    worst_speedup = None
    for k in ks:
        serial = decision_point(k, parallel=False, seed=seed)
        parallel = decision_point(k, parallel=True, seed=seed)
        if parallel["ranking"] != serial["ranking"]:
            raise AssertionError(
                f"k={k}: scatter-gather changed the ranking "
                f"({serial['ranking']} vs {parallel['ranking']})"
            )
        speedup = serial["latency_s"] / parallel["latency_s"]
        per_k[str(k)] = {
            "serial_sim_s": serial["latency_s"],
            "parallel_sim_s": parallel["latency_s"],
            "speedup": speedup,
        }
        if worst_speedup is None or speedup < worst_speedup:
            worst_speedup = speedup
    return {
        "ks": list(ks),
        "seed": seed,
        "per_k": per_k,
        "rankings_identical": True,
        # The headline number is the *worst* candidate count: the
        # threshold holds even where overlap helps least (small k).
        "speedup": worst_speedup,
    }
