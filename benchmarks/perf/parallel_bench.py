"""Parallel harness vs the naive serial loop on real paper sweeps.

The serial baseline is what the benchmarks did before this harness
existed: execute every submitted job one after another, including the
timing repeats of identical deterministic sweep points.  The parallel
path is ``run_jobs`` — duplicate jobs computed once, distinct jobs
fanned across a ``multiprocessing`` pool.  On a multi-core box both
effects compound; on a single core the dedup alone carries the
speedup (the pool adds fork/IPC overhead, reported transparently via
``jobs`` vs ``distinct_jobs``).

Every measurement also *verifies* the contract the speedup rests on:
the canonical result projection is byte-identical between the naive
loop and the pool at every checked worker count.
"""

from __future__ import annotations

import time

from repro.parallel import canonical_results, run_jobs
from repro.parallel.sweeps import fig5_jobs, table1_jobs

VERIFY_WORKER_COUNTS = (2, 4)


def _bench_jobs(jobs, workers: int) -> dict:
    """Time naive-serial vs pooled execution of one job batch."""
    t0 = time.perf_counter()
    naive = run_jobs(jobs, workers=0, dedup=False)
    serial_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    pooled = run_jobs(jobs, workers=workers)
    parallel_wall = time.perf_counter() - t0

    # Bit-for-bit metric equality: the pool (with dedup) must report
    # exactly what the naive loop reports, at every worker count.
    reference = canonical_results(naive)
    mismatches = []
    if canonical_results(pooled) != reference:
        mismatches.append(workers)
    for n in VERIFY_WORKER_COUNTS:
        if n != workers and canonical_results(run_jobs(jobs, workers=n)) != reference:
            mismatches.append(n)
    if mismatches:
        raise AssertionError(
            f"parallel results diverged from serial at workers={mismatches}"
        )

    return {
        "jobs": len(jobs),
        "distinct_jobs": len({job.key for job in jobs}),
        "workers": workers,
        "serial_wall_s": serial_wall,
        "parallel_wall_s": parallel_wall,
        "speedup": serial_wall / parallel_wall,
        "verified_worker_counts": sorted({workers, *VERIFY_WORKER_COUNTS}),
        "metrics_identical": True,
    }


def bench_parallel_table1(
    sizes=None, repeats: int = 20, workers: int = 4
) -> dict:
    """Table I sweep points × timing repeats through the harness."""
    return _bench_jobs(table1_jobs(sizes, repeats=repeats), workers)


def bench_parallel_fig5(sizes=None, repeats: int = 10, workers: int = 4) -> dict:
    """Figure 5 replications (both methods) through the harness."""
    return _bench_jobs(fig5_jobs(sizes, repeats=repeats), workers)
