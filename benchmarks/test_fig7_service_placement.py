"""Figure 7: where should the surveillance pipeline (FDet+FRec) run?

Paper setup: images of 0.25 / 0.5 / 1 / 2 MB captured at S1 (a low-end
1.3 GHz dual-core Atom with a 512 MB, 1-VCPU VM); the pipeline can run
at S1, at S2 (1.8 GHz quad core, but a 128 MB multi-VCPU VM), or at S3
(an extra-large EC2 instance: five 2.9 GHz CPUs, 14 GB).  Findings:

* small images -> S1 wins ("this eliminates the need for data movement");
* mid sizes -> S2 wins (more compute outweighs LAN movement);
* the largest size -> S3 wins, because "the limited amount of memory on
  the S2 VMs starts delaying the execution of the FRec step" while the
  cloud instance has memory to spare — "despite the even greater data
  movement costs".

Each measurement runs the *process* operation from S1's viewpoint with
the candidate set restricted to one deployment target; decision time is
included, as in the paper.  S1's own services are warm (it runs the
surveillance application); remote targets pay the model-load cold start.
"""

import pytest

from benchmarks.common import format_table, report, run_once
from repro import Cloud4Home, ClusterConfig, DeviceConfig
from repro.services import FaceDetection, FaceRecognition
from repro.workloads import PAPER_IMAGE_SIZES_MB

TARGETS = ["S1", "S2", "S3"]


def build_cluster(seed):
    config = ClusterConfig(
        seed=seed,
        devices=[
            DeviceConfig(
                name="S1",
                profile_name="atom-s1",
                guest_mem_mb=512.0,
                guest_vcpus=1,
            ),
            DeviceConfig(
                name="S2",
                profile_name="quad-s2",
                guest_mem_mb=128.0,
                guest_vcpus=4,
                battery=None,
            ),
        ],
    )
    c4h = Cloud4Home(config)
    c4h.start(monitors=False)
    return c4h


def deploy_target(c4h, target):
    """Deploy the two services only at the measured target."""
    services = [FaceDetection(), FaceRecognition(training_mb=60.0)]
    if target == "S3":
        for service in services:
            c4h.ec2[0].deploy(service)
        c4h.ec2[0]._booted = True  # the instance is already running
        return services
    device = c4h.device(target)
    for service in services:
        c4h.run(device.registry.register(service))
        if target == "S1":
            # S1 runs the surveillance app continuously: warm models.
            service.prewarm(device.guest)
    return services


def measure(target, size_mb, seed):
    c4h = build_cluster(seed)
    deploy_target(c4h, target)
    s1 = c4h.device("S1")
    name = f"frame-{size_mb}.jpg"
    c4h.run(s1.client.store_file(name, size_mb))
    t0 = c4h.sim.now
    result = c4h.run(
        s1.client.process_pipeline(name, ["face-detect#v1", "face-recognize#v1"])
    )
    total = c4h.sim.now - t0
    expected = {"S1": "S1", "S2": "S2", "S3": "ec2-xl-0"}[target]
    assert result.executed_on == expected
    return total


@pytest.mark.benchmark(group="fig7")
def test_fig7_service_placement(benchmark):
    def scenario():
        results = {}
        for size in PAPER_IMAGE_SIZES_MB:
            for target in TARGETS:
                results[(size, target)] = measure(
                    target, size, seed=1100 + int(size * 4)
                )
        return results

    results = run_once(benchmark, scenario)

    rows = []
    for size in PAPER_IMAGE_SIZES_MB:
        best = min(TARGETS, key=lambda t, size=size: results[(size, t)])
        rows.append(
            [f"{size:g}"]
            + [f"{results[(size, t)]:.2f}" for t in TARGETS]
            + [best]
        )
    report(
        "Figure 7 — surveillance pipeline time by placement (seconds)",
        format_table(["image MB", "S1", "S2", "S3 (EC2)", "best"], rows)
        + [
            "paper shape: S1 best for the smallest images, S2 best at "
            "mid sizes, S3 best for the largest (S2's 128 MB VM thrashes "
            "on FRec)"
        ],
    )

    def best(size):
        return min(TARGETS, key=lambda t: results[(size, t)])

    # The paper's crossovers: local wins small, LAN peer wins mid,
    # cloud wins large.
    assert best(0.25) == "S1"
    assert best(1.0) == "S2"
    assert best(2.0) == "S3"
    # S2's memory pressure is the mechanism: its FRec time blows up
    # between 1 MB and 2 MB far faster than S3's.
    s2_growth = results[(2.0, "S2")] / results[(1.0, "S2")]
    s3_growth = results[(2.0, "S3")] / results[(1.0, "S3")]
    assert s2_growth > s3_growth
