"""Section V-B inline experiment: splitting recognition between home
and remote cloud.

Paper: "Consider an application where a sequence of images is to be
compared against an existing image dataset ... (i) the image sequence
is processed at home, using a 60 MB dataset stored across home devices,
(ii) the processing is performed on EC2 instances in the Amazon cloud,
using 190 MB dataset ... (iii) the sequence processing is split between
the home and remote cloud ... The resulting processing times for each
of these scenarios are 162 sec, 127 sec, and 98 sec, respectively,
demonstrating significant importance and performance gains due to joint
usage of home and remote cloud resources."

Mechanics reproduced: at home each image visits every device's dataset
shard in turn (the dataset is striped across the home cloud); on EC2
each image is uploaded over the constrained uplink and compared against
the larger cloud-resident dataset on much faster CPUs; the split drains
one shared image queue with both pipelines concurrently, i.e. the
paper's "roughly proportional to the amount of home vs. remote
resources" division emerges from the queue.
"""

import pytest

from benchmarks.common import format_table, report, run_once
from repro import Cloud4Home, ClusterConfig
from repro.services import ComputeModel, Service
from repro.sim import AllOf, Store

N_IMAGES = 30
IMAGE_MB = 1.0
HOME_DATASET_MB = 60.0
CLOUD_DATASET_MB = 190.0
#: Comparison cost per MB of dataset scanned.
COMPARE = ComputeModel(cycles_per_mb=0.25e9)


def comparison_service(parallelism):
    from repro.services import ServiceProfile

    return Service(
        "dataset-compare",
        COMPARE,
        profile=ServiceProfile(parallelism=parallelism),
    )


def build_cluster(seed):
    c4h = Cloud4Home(ClusterConfig(seed=seed))
    c4h.start(monitors=False)
    return c4h


def home_image(c4h, shard_mb):
    """Process one image at home: visit each device's dataset shard."""
    devices = c4h.devices
    service = comparison_service(parallelism=4)
    for i, device in enumerate(devices):
        if i > 0:
            # The image moves to the next shard's device over the LAN.
            yield c4h.network.transfer(
                devices[i - 1].name, device.name, IMAGE_MB * 1024 * 1024
            )
        yield from service.execute(device.guest, shard_mb)


def ec2_image(c4h, source):
    """Process one image on EC2: upload it, scan the cloud dataset."""
    instance = c4h.ec2[0]
    yield from instance.upload_input(source, IMAGE_MB * 1024 * 1024)
    service = instance.services["dataset-compare#v1"]
    yield from service.execute(instance.domain, CLOUD_DATASET_MB)


def run_home(seed):
    c4h = build_cluster(seed)
    shard_mb = HOME_DATASET_MB / len(c4h.devices)
    t0 = c4h.sim.now

    def sequence():
        for _ in range(N_IMAGES):
            yield from home_image(c4h, shard_mb)

    c4h.run(sequence())
    return c4h.sim.now - t0


def prepare_ec2(c4h):
    instance = c4h.ec2[0]
    instance.deploy(comparison_service(parallelism=4))
    instance._booted = True
    instance.services["dataset-compare#v1"].prewarm(instance.domain)
    return instance


def run_ec2(seed):
    c4h = build_cluster(seed)
    prepare_ec2(c4h)
    t0 = c4h.sim.now

    def sequence():
        for _ in range(N_IMAGES):
            yield from ec2_image(c4h, "netbook0")

    c4h.run(sequence())
    return c4h.sim.now - t0


def run_split(seed):
    c4h = build_cluster(seed)
    prepare_ec2(c4h)
    shard_mb = HOME_DATASET_MB / len(c4h.devices)
    queue = Store(c4h.sim)
    for i in range(N_IMAGES):
        queue.put(i)
    queue.put(None)
    queue.put(None)

    def home_worker():
        while True:
            item = yield queue.get()
            if item is None:
                return
            yield from home_image(c4h, shard_mb)

    def ec2_worker():
        while True:
            item = yield queue.get()
            if item is None:
                return
            yield from ec2_image(c4h, "netbook0")

    t0 = c4h.sim.now
    procs = [c4h.sim.process(home_worker()), c4h.sim.process(ec2_worker())]
    c4h.sim.run(until=AllOf(c4h.sim, procs))
    return c4h.sim.now - t0


@pytest.mark.benchmark(group="split")
def test_split_processing(benchmark):
    def scenario():
        return run_home(1500), run_ec2(1501), run_split(1502)

    t_home, t_ec2, t_split = run_once(benchmark, scenario)

    report(
        "Section V-B — image-sequence recognition: home vs EC2 vs split "
        "(seconds)",
        format_table(
            ["scenario", "measured", "paper"],
            [
                ["home only", f"{t_home:.0f}", "162"],
                ["EC2 only", f"{t_ec2:.0f}", "127"],
                ["split", f"{t_split:.0f}", "98"],
            ],
        )
        + ["paper shape: home > EC2 > split (joint usage wins)"],
    )

    # The paper's ordering: remote beats pure home, the split beats both.
    assert t_split < t_ec2 < t_home
    # Joint usage yields a significant (not marginal) gain.
    assert t_split < 0.85 * t_ec2
    # And the factors are in the paper's ballpark (home/split ≈ 1.65).
    assert 1.2 < t_home / t_split < 3.5
