"""Figure 6: aggregate fetch throughput vs. % of data in the remote cloud.

Paper setup: the synthetic dataset restricted to 'optimal'-size objects
(10-25 MB), ~700 MB fetched in total, placed across home and remote
resources; 3 of the 6 devices run client applications with 1, 2, or 3
fetch threads.  Findings: "when content is present mostly in the home
cloud, as the number of concurrent requests ... increase, the overall
throughput of system increases by factor of 45%"; with more content
remote, concurrency still helps but the gains shrink because flows
"contend for the aggregate bandwidth available to the remote cloud";
single-thread throughput decreases as the remote share grows; the
remote-cloud-only curve sits lowest.
"""

import pytest

from benchmarks.common import format_table, report, run_once
from repro import (
    Cloud4Home,
    ClusterConfig,
    Placement,
    PlacementTarget,
    StorePolicy,
)
from repro.sim import Store
from repro.workloads import EDonkeyTraceGenerator

REMOTE_PERCENTS = [0, 10, 25, 40, 55]
THREAD_COUNTS = [1, 2, 3]
TOTAL_FETCH_MB = 700.0
ACTIVE_CLIENTS = 3  # "We avoid using all 6 home devices"


def build_dataset(seed):
    gen = EDonkeyTraceGenerator(
        rng=None, n_clients=6, n_files=60, size_range=(10.0, 25.0)
    )
    files = []
    acc = 0.0
    for f in gen.files():
        files.append(f)
        acc += f.size_mb
        if acc >= TOTAL_FETCH_MB:
            break
    return files


def place_dataset(c4h, files, remote_fraction):
    """Store files so ~remote_fraction of the bytes live in S3."""
    total = sum(f.size_mb for f in files)
    remote_budget = total * remote_fraction
    remote_acc = 0.0
    remote_policy = StorePolicy(default=Placement(PlacementTarget.REMOTE_CLOUD))
    for i, f in enumerate(files):
        owner = c4h.devices[i % len(c4h.devices)]
        if remote_acc + f.size_mb <= remote_budget or (
            remote_budget > 0 and remote_acc == 0.0
        ):
            owner.vstore.store_policy = remote_policy
            remote_acc += f.size_mb
        else:
            owner.vstore.store_policy = StorePolicy()
        c4h.run(owner.client.store_file(f.name, f.size_mb))


def timed_fetch_all(c4h, files, n_threads):
    """Fetch every file once using n_threads concurrent fetch threads.

    The single-thread case is the paper's "single thread performs
    sequential object accesses"; additional threads spread across the
    active client devices.  Returns aggregate MB/s.
    """
    queue = Store(c4h.sim)
    for f in files:
        queue.put(f)
    for _ in range(n_threads):
        queue.put(None)  # poison pills

    def worker(device):
        while True:
            item = yield queue.get()
            if item is None:
                return
            yield from device.client.fetch_object(item.name)

    clients = c4h.devices[:ACTIVE_CLIENTS]
    t0 = c4h.sim.now
    procs = []
    for t in range(n_threads):
        procs.append(c4h.sim.process(worker(clients[t % ACTIVE_CLIENTS])))
    from repro.sim import AllOf

    c4h.sim.run(until=AllOf(c4h.sim, procs))
    makespan = c4h.sim.now - t0
    return sum(f.size_mb for f in files) / makespan


def run_point(remote_pct, n_threads, seed):
    c4h = Cloud4Home(ClusterConfig(seed=seed))
    c4h.start(monitors=False)
    files = build_dataset(seed)
    place_dataset(c4h, files, remote_pct / 100.0)
    return timed_fetch_all(c4h, files, n_threads)


@pytest.mark.benchmark(group="fig6")
def test_fig6_fetch_throughput(benchmark):
    def scenario():
        curves = {t: {} for t in THREAD_COUNTS}
        for pct in REMOTE_PERCENTS:
            for t in THREAD_COUNTS:
                curves[t][pct] = run_point(pct, t, seed=900 + pct * 10 + t)
        # Remote-cloud-only reference (all data remote, 3 threads).
        remote_only = run_point(100, 3, seed=990)
        return curves, remote_only

    curves, remote_only = run_once(benchmark, scenario)

    rows = []
    for pct in REMOTE_PERCENTS:
        rows.append(
            [f"{pct}%"]
            + [f"{curves[t][pct]:.2f}" for t in THREAD_COUNTS]
        )
    report(
        "Figure 6 — aggregate fetch throughput (MB/s) vs % data remote",
        format_table(["remote %", "1 thread", "2 threads", "3 threads"], rows)
        + [
            f"remote-cloud-only reference: {remote_only:.2f} MB/s",
            "paper shape: concurrency helps (~45% at mostly-home); "
            "throughput falls as remote share rises; remote-only lowest",
        ],
    )

    # Concurrency gain when content is mostly at home (paper: ~45 %).
    assert curves[3][0] > 1.35 * curves[1][0]
    assert curves[2][0] > curves[1][0]

    # Single-thread throughput degrades as the remote share grows.
    assert curves[1][0] > curves[1][25] > curves[1][55]

    # Concurrency still helps with more remote content, but the
    # absolute benefit shrinks: the extra threads contend for the
    # aggregate remote-cloud bandwidth.
    assert curves[3][55] > curves[1][55]
    gain_home = curves[3][0] - curves[1][0]
    gain_remote = curves[3][55] - curves[1][55]
    assert gain_home > gain_remote

    # The remote-only deployment sits below every point of the
    # equally-concurrent (3-thread) mixed curve.
    for pct in REMOTE_PERCENTS:
        assert remote_only < curves[3][pct]
