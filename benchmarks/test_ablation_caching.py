"""Ablation: intermediate-hop metadata caching on vs. off.

Section III-A: "Key-value entries are cached onto intermediate hops on
each request's path through the DHT overlay ...  Whenever a key-value
entry is modified, the corresponding caches are also updated."  The
ablation measures repeated metadata lookups from many nodes with the
cache enabled and disabled.
"""

import pytest

from benchmarks.common import format_table, report, run_once
from repro import Cloud4Home, ClusterConfig

N_OBJECTS = 10
REPEATS = 6


def measure(cache_enabled, seed):
    c4h = Cloud4Home(
        ClusterConfig(seed=seed, cache_enabled=cache_enabled)
    )
    c4h.start(monitors=False)
    owner = c4h.devices[0]
    for i in range(N_OBJECTS):
        c4h.run(owner.client.store_file(f"obj-{i}.bin", 1.0))
    lookups = []
    for _ in range(REPEATS):
        for i in range(N_OBJECTS):
            # Readers repeat their own lookups across rounds: at home
            # scale routes are one hop, so the requester-side cache is
            # the one that pays off.
            reader = c4h.devices[i % len(c4h.devices)]
            t0 = c4h.sim.now
            c4h.run(reader.kv.get(f"object:obj-{i}.bin"))
            lookups.append(c4h.sim.now - t0)
    hits = sum(d.kv.stats.cache_hits for d in c4h.devices)
    return sum(lookups) / len(lookups), hits


@pytest.mark.benchmark(group="ablation")
def test_ablation_intermediate_hop_caching(benchmark):
    def scenario():
        return measure(True, seed=1700), measure(False, seed=1700)

    (mean_on, hits_on), (mean_off, hits_off) = run_once(benchmark, scenario)

    report(
        "Ablation — intermediate-hop metadata caching",
        format_table(
            ["config", "mean lookup (ms)", "cache hits"],
            [
                ["caching on", f"{mean_on * 1000:.2f}", f"{hits_on}"],
                ["caching off", f"{mean_off * 1000:.2f}", f"{hits_off}"],
            ],
        ),
    )

    assert hits_off == 0
    assert hits_on > 0
    # Caching shortens repeated lookups.
    assert mean_on < mean_off
