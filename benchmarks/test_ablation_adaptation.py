"""Future work (iv): adapting to changing network conditions.

The adaptive bandwidth estimator feeds *observed* throughput into each
node's published snapshots, so placement decisions react when the
network degrades.  Scenario: a netbook owns a video; normally the
desktop wins the conversion (Figure 8's Topt).  Then the home LAN
collapses to a fraction of its capacity — once the nodes have observed
the slow transfers, the decision flips to converting at the owner,
because moving 30 MB through the degraded LAN now costs more than the
slower local CPU.
"""

import pytest

from benchmarks.common import format_table, report, run_once
from repro.cluster import ChaosSchedule, Cloud4Home, ClusterConfig
from repro.services import MediaConversion


def refresh_snapshots(c4h):
    for device in c4h.devices:
        c4h.run(device.monitor.publish_once())


def placement_for(c4h, owner, name):
    result = c4h.run(owner.client.process(name, "media-convert#v1"))
    return result.executed_on, result.total_s


@pytest.mark.benchmark(group="ablation")
def test_adaptation_to_degraded_lan(benchmark):
    def scenario():
        c4h = Cloud4Home(ClusterConfig(seed=2300, with_ec2=False))
        c4h.start(monitors=False)
        c4h.deploy_service(lambda: MediaConversion())
        owner = c4h.device("netbook0")
        c4h.run(owner.client.store_file("vid-a.avi", 30.0))
        c4h.run(owner.client.store_file("vid-b.avi", 30.0))
        c4h.run(owner.client.store_file("probe.avi", 10.0))

        # Healthy LAN: dynamic routing sends the work to the desktop.
        refresh_snapshots(c4h)
        before_target, before_time = placement_for(c4h, owner, "vid-a.avi")

        # The LAN degrades badly (e.g. interference): 2 % capacity.
        chaos = ChaosSchedule(c4h).degrade_link(
            after=0.0, link=c4h.lan_link, factor=0.02
        )
        chaos.start()
        c4h.sim.run(until=c4h.sim.now + 1.0)
        # Nodes observe the new conditions through real transfers (the
        # asymmetric estimator needs a few bad samples to converge)...
        for reader in ("netbook1", "netbook2", "netbook3", "netbook4"):
            c4h.run(c4h.device(reader).client.fetch_object("probe.avi"))
        # ...and publish updated snapshots.
        refresh_snapshots(c4h)
        after_target, after_time = placement_for(c4h, owner, "vid-b.avi")
        return (before_target, before_time), (after_target, after_time)

    (before_target, before_time), (after_target, after_time) = run_once(
        benchmark, scenario
    )

    report(
        "Adaptation — placement under changing network conditions "
        "(future work iv)",
        format_table(
            ["LAN state", "chosen target", "conversion time (s)"],
            [
                ["healthy (95.5 Mbps)", before_target, f"{before_time:.1f}"],
                ["degraded (2%)", after_target, f"{after_time:.1f}"],
            ],
        )
        + [
            "expected: healthy LAN -> desktop (move + fast CPU); "
            "degraded LAN -> owner (movement now dominates)"
        ],
    )

    assert before_target == "desktop"
    assert after_target == "netbook0"
