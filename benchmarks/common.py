"""Shared helpers for the benchmark harness.

Every benchmark reproduces one table or figure from the paper's
evaluation: it runs the scenario on the simulated testbed, registers a
paper-style text table through :func:`report`, and asserts the
qualitative *shape* of the result (who wins, where crossovers fall,
rough factors).  The registered tables are printed in pytest's terminal
summary by ``benchmarks/conftest.py`` and are the material for
EXPERIMENTS.md.
"""

from __future__ import annotations

import statistics
from typing import Iterable, Sequence

MB = 1024 * 1024

#: Tables registered by benchmarks during the run, printed at the end.
REPORTS: list[tuple[str, list[str]]] = []


def report(title: str, lines: Iterable[str]) -> None:
    """Register a result table for the end-of-run summary."""
    REPORTS.append((title, list(lines)))


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> list[str]:
    """Fixed-width text table (the paper-style rows/series)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))
    out = [fmt(headers), fmt(["-" * w for w in widths])]
    out.extend(fmt(row) for row in rows)
    return out


def mean_std(values: Sequence[float]) -> tuple[float, float]:
    """Mean and sample standard deviation of ``values``.

    A single value has zero deviation; an empty sequence is a caller
    bug (a scenario produced no samples) and raises ``ValueError``
    rather than crashing inside :mod:`statistics`.
    """
    if len(values) == 0:
        raise ValueError("mean_std() requires at least one value")
    if len(values) == 1:
        return values[0], 0.0
    return statistics.mean(values), statistics.stdev(values)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The wall-clock time pytest-benchmark records is the cost of running
    the simulation; the *simulated* metrics are what the benchmark
    reports and asserts.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
