"""Figure 5: remote-cloud throughput vs. object size (optimal ~20 MB).

Paper: "as the size of individual file transfers to and from the remote
cloud increases, the aggregate throughput actually increases" (TCP slow
start amortization and the provider's ~1.6 MB window cap) ... "Beyond a
certain point, throughput starts to deteriorate rapidly ... primarily
due to traffic shaping and rate limiting policies enforced by ISP
providers ...  In our experimental setup, the best aggregate throughput
levels are achieved when using remote clouds for object sizes of
approximately 20 MB."

Method 1 keeps the total bytes per size point constant; Method 2 keeps
the number of files constant.  Both show the same trend in the paper.
The access mix is the modified eDonkey trace's 60 % store / 40 % fetch.
"""

import pytest

from benchmarks.common import MB, format_table, report, run_once
from repro import Cloud4Home, ClusterConfig
from repro.sim import RandomSource

SIZES_MB = [5, 10, 20, 30, 50, 100]
TOTAL_MB_METHOD1 = 260.0
FILES_METHOD2 = 5
STORE_FRACTION = 0.6


def run_access_mix(size_mb, n_files, seed):
    """Sequential remote-cloud interactions; returns MB/s aggregate."""
    c4h = Cloud4Home(ClusterConfig(seed=seed))
    c4h.start(monitors=False)
    rng = RandomSource(seed).fork("fig5")
    s3 = c4h.s3
    names = [f"obj-{size_mb}-{i}" for i in range(n_files)]
    # Seed the bucket so fetches always have something to download.
    for name in names:
        c4h.run(s3.put_object("netbook0", name, size_mb * MB))

    t0 = c4h.sim.now
    moved_mb = 0.0
    n_ops = max(n_files, 8)
    clients = [d.name for d in c4h.devices]
    for i in range(n_ops):
        name = rng.choice(names)
        client = rng.choice(clients)
        if rng.random() < STORE_FRACTION:
            c4h.run(s3.put_object(client, name, size_mb * MB))
        else:
            c4h.run(s3.get_object(client, name))
        moved_mb += size_mb
    return moved_mb / (c4h.sim.now - t0)


@pytest.mark.benchmark(group="fig5")
def test_fig5_throughput_vs_object_size(benchmark):
    def scenario():
        method1 = {}
        method2 = {}
        for size in SIZES_MB:
            n1 = max(2, round(TOTAL_MB_METHOD1 / size))
            method1[size] = run_access_mix(size, n1, seed=500 + size)
            method2[size] = run_access_mix(size, FILES_METHOD2, seed=700 + size)
        return method1, method2

    method1, method2 = run_once(benchmark, scenario)

    rows = [
        [f"{s}", f"{method1[s]:.2f}", f"{method2[s]:.2f}"] for s in SIZES_MB
    ]
    report(
        "Figure 5 — remote cloud throughput vs object size (MB/s)",
        format_table(["size MB", "Method 1", "Method 2"], rows)
        + [
            "paper shape: rises with size, peaks near ~20-30 MB, degrades "
            "for large transfers (ISP shaping); both methods show the trend"
        ],
    )

    for series in (method1, method2):
        values = [series[s] for s in SIZES_MB]
        peak_index = values.index(max(values))
        peak_size = SIZES_MB[peak_index]
        # Interior peak in the paper's "approximately 20 MB" region.
        assert 10 <= peak_size <= 30, f"peak at {peak_size} MB"
        # Rising limb: the peak beats the smallest size.
        assert values[peak_index] > values[0]
        # Falling limb: 100 MB transfers are clearly worse than the peak.
        assert values[-1] < 0.9 * values[peak_index]
