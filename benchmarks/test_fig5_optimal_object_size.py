"""Figure 5: remote-cloud throughput vs. object size (optimal ~20 MB).

Paper: "as the size of individual file transfers to and from the remote
cloud increases, the aggregate throughput actually increases" (TCP slow
start amortization and the provider's ~1.6 MB window cap) ... "Beyond a
certain point, throughput starts to deteriorate rapidly ... primarily
due to traffic shaping and rate limiting policies enforced by ISP
providers ...  In our experimental setup, the best aggregate throughput
levels are achieved when using remote clouds for object sizes of
approximately 20 MB."

Method 1 keeps the total bytes per size point constant; Method 2 keeps
the number of files constant.  Both show the same trend in the paper.
The access mix is the modified eDonkey trace's 60 % store / 40 % fetch.
"""

import pytest

from benchmarks.common import format_table, report, run_once
from repro.parallel import run_jobs
from repro.parallel.sweeps import (
    FIG5_SIZES_MB,
    fig5_jobs,
)

SIZES_MB = FIG5_SIZES_MB


@pytest.mark.benchmark(group="fig5")
def test_fig5_throughput_vs_object_size(benchmark):
    def scenario():
        # Both methods' points as independent jobs through the shard
        # runner (inline here; the CLI fans the same jobs over a pool).
        jobs = fig5_jobs(SIZES_MB)
        results = run_jobs(jobs, workers=0, on_error="raise")
        method1 = {}
        method2 = {}
        for job, result in zip(jobs, results):
            size = job.kwargs["size_mb"]
            target = method1 if job.kwargs["seed"] == 500 + size else method2
            target[size] = result.value["mb_s"]
        return method1, method2

    method1, method2 = run_once(benchmark, scenario)

    rows = [
        [f"{s}", f"{method1[s]:.2f}", f"{method2[s]:.2f}"] for s in SIZES_MB
    ]
    report(
        "Figure 5 — remote cloud throughput vs object size (MB/s)",
        format_table(["size MB", "Method 1", "Method 2"], rows)
        + [
            "paper shape: rises with size, peaks near ~20-30 MB, degrades "
            "for large transfers (ISP shaping); both methods show the trend"
        ],
    )

    for series in (method1, method2):
        values = [series[s] for s in SIZES_MB]
        peak_index = values.index(max(values))
        peak_size = SIZES_MB[peak_index]
        # Interior peak in the paper's "approximately 20 MB" region.
        assert 10 <= peak_size <= 30, f"peak at {peak_size} MB"
        # Rising limb: the peak beats the smallest size.
        assert values[peak_index] > values[0]
        # Falling limb: 100 MB transfers are clearly worse than the peak.
        assert values[-1] < 0.9 * values[peak_index]
