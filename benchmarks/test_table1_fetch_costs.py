"""Table I: home-cloud fetch cost analysis.

Paper (Table I): for fetches within the home cloud, the total cost
decomposes into inter-node transfer (dominant, linear in object size),
inter-domain XenSocket delivery (linear, much smaller), and the DHT
metadata lookup (~12-16 ms, constant regardless of object size).
Paper values: 1 MB -> total 228 ms (inter-node 103, inter-domain 25,
DHT 12); 100 MB -> total 15.2 s (13.6 s, 1.6 s, 12 ms).
"""

import pytest

from benchmarks.common import format_table, report, run_once
from repro.parallel import run_jobs
from repro.parallel.sweeps import TABLE1_SIZES_MB, table1_fetch, table1_jobs

SIZES_MB = TABLE1_SIZES_MB

PAPER_ROWS = {
    1: (228, 103, 25, 12),
    2: (454, 190, 37, 13),
    5: (1160, 513, 57, 13),
    10: (2522, 1042, 189, 14),
    20: (2477, 2079, 386, 12),
    50: (5174, 4678, 480, 16),
    100: (15180, 13577, 1603, 12),
}


def measure(size_mb, seed):
    """One Table I point: the parallel harness's job, returned raw."""
    return table1_fetch(size_mb, seed)


@pytest.mark.benchmark(group="table1")
def test_table1_fetch_cost_breakdown(benchmark):
    def scenario():
        # The sweep runs through the shard runner (inline here; the CLI
        # and perf harness fan the same jobs across a pool).
        jobs = table1_jobs(SIZES_MB)
        results = run_jobs(jobs, workers=0, on_error="raise")
        return {size: r.value for size, r in zip(SIZES_MB, results)}

    results = run_once(benchmark, scenario)

    rows = []
    for size in SIZES_MB:
        f = results[size]
        p = PAPER_ROWS[size]
        rows.append(
            [
                f"{size}",
                f"{f['total_s'] * 1000:.0f}",
                f"{f['inter_node_s'] * 1000:.0f}",
                f"{f['inter_domain_s'] * 1000:.0f}",
                f"{f['dht_lookup_s'] * 1000:.1f}",
                f"{p[0]}/{p[1]}/{p[2]}/{p[3]}",
            ]
        )
    report(
        "Table I — home cloud fetch cost analysis (ms)",
        format_table(
            ["size MB", "total", "inter-node", "inter-domain", "DHT", "paper T/N/D/K"],
            rows,
        ),
    )

    lookups = [results[s]["dht_lookup_s"] for s in SIZES_MB]
    inter_node = [results[s]["inter_node_s"] for s in SIZES_MB]
    inter_domain = [results[s]["inter_domain_s"] for s in SIZES_MB]

    # DHT lookup cost is constant-ish and in the paper's millisecond range.
    assert max(lookups) < 0.05
    assert max(lookups) / max(min(lookups), 1e-9) < 5.0

    # Inter-node dominates inter-domain at every size.
    for n, d in zip(inter_node, inter_domain):
        assert n > d

    # Both transfer components grow roughly linearly with size.
    assert inter_node[-1] / inter_node[0] == pytest.approx(100, rel=0.5)
    assert inter_domain[-1] / inter_domain[0] == pytest.approx(100, rel=0.6)

    # Magnitudes in the same ballpark as the paper's testbed (within 2x).
    assert results[100]["inter_node_s"] == pytest.approx(13.577, rel=1.0)
    assert results[100]["inter_domain_s"] == pytest.approx(1.603, rel=1.0)

    # Total is the sum of its parts plus small command/processing costs.
    for size in SIZES_MB:
        f = results[size]
        parts = f["inter_node_s"] + f["inter_domain_s"] + f["dht_lookup_s"]
        assert f["total_s"] >= parts
        assert f["total_s"] < parts + 0.5
