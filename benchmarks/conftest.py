"""Benchmark-suite plumbing: print and persist registered result tables."""

from pathlib import Path

from benchmarks.common import REPORTS

#: Where the reproduced tables are saved after a benchmark run.
RESULTS_FILE = Path(__file__).parent / "results.txt"


def pytest_terminal_summary(terminalreporter):
    if not REPORTS:
        return
    tr = terminalreporter
    tr.write_sep("=", "Cloud4Home reproduction results (paper tables/figures)")
    chunks = []
    for title, lines in sorted(REPORTS):
        chunks.append(f"\n## {title}")
        chunks.extend(lines)
    for chunk in chunks:
        tr.write_line(chunk)
    tr.write_line("")
    try:
        RESULTS_FILE.write_text(
            "Cloud4Home reproduction results\n" + "\n".join(chunks) + "\n"
        )
        tr.write_line(f"(results saved to {RESULTS_FILE})")
    except OSError:
        pass
