"""Future work (v): collaborating Cloud4Home infrastructures.

"A concrete example ... would be a 'neighborhood security' system in
which multiple Cloud4Home systems interact to provide effective
security services for entire neighborhoods." (Section VII.)

Measures the primitives such a system needs: alert propagation latency
across homes, and snapshot sharing (publish + neighbour fetch) compared
with home-internal access.
"""

import pytest

from benchmarks.common import format_table, report, run_once
from repro.cluster import Federation


@pytest.mark.benchmark(group="federation")
def test_neighborhood_security_primitives(benchmark):
    def scenario():
        fed = Federation.build(n_homes=3, seed=2200, devices_per_home=3)
        fed.start()
        deliveries = []
        fed.on_alert.append(lambda idx, body: deliveries.append(fed.sim.now))

        # Alert propagation latency.
        t0 = fed.sim.now
        fed.run(fed.broadcast_alert(0, {"kind": "intruder", "zone": "yard"}))
        fed.sim.run()
        alert_latencies = [t - t0 for t in deliveries]

        # Publish a 2 MB snapshot and fetch it from a neighbour.
        home0 = fed.homes[0]
        home0.run(
            home0.devices[1].client.store_file(
                "evidence.jpg", 2.0, access="public"
            )
        )
        t0 = fed.sim.now
        fed.run(fed.publish(0, "evidence.jpg"))
        publish_s = fed.sim.now - t0
        t0 = fed.sim.now
        fed.run(fed.fetch_published(1, "evidence.jpg"))
        neighbour_fetch_s = fed.sim.now - t0

        # Home-internal fetch of the same object for comparison.
        t0 = fed.sim.now
        home0.run(home0.devices[2].client.fetch_object("evidence.jpg"))
        home_fetch_s = fed.sim.now - t0

        return alert_latencies, publish_s, neighbour_fetch_s, home_fetch_s

    alerts, publish_s, neighbour_s, home_s = run_once(benchmark, scenario)

    report(
        "Federation — neighborhood security primitives (future work v)",
        format_table(
            ["primitive", "time (s)"],
            [
                ["alert -> neighbour 1", f"{alerts[0]:.3f}"],
                ["alert -> neighbour 2", f"{alerts[1]:.3f}"],
                ["publish 2 MB snapshot", f"{publish_s:.2f}"],
                ["neighbour fetch (via cloud)", f"{neighbour_s:.2f}"],
                ["home-internal fetch", f"{home_s:.2f}"],
            ],
        )
        + [
            "expected: alerts are sub-second (control plane); "
            "cross-home data rides the cloud and costs much more than "
            "home-internal access"
        ],
    )

    assert len(alerts) == 2
    # Alerts are small control messages: sub-second even over two WAN hops.
    assert all(a < 1.0 for a in alerts)
    # Data sharing pays the cloud path: publish (upload) dominates, and
    # a neighbour fetch is far slower than home-internal access.
    assert publish_s > neighbour_s * 0.3
    assert neighbour_s > 3.0 * home_s
