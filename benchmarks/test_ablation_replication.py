"""Ablation: metadata replication factor under node failures.

Section III-A: "state can be replicated using a fixed replication
factor" for "improved availability and reliability".  The ablation
crashes nodes abruptly and counts how many metadata entries survive
with replication factors 0 and 2.
"""

import pytest

from benchmarks.common import format_table, report, run_once
from repro import Cloud4Home, ClusterConfig
from repro.kvstore import KeyNotFoundError
from repro.net import NetworkError

N_KEYS = 40
N_CRASHES = 2


def measure(replication_factor, seed):
    c4h = Cloud4Home(
        ClusterConfig(seed=seed, replication_factor=replication_factor)
    )
    c4h.start(monitors=False)
    writer = c4h.devices[0]
    for i in range(N_KEYS):
        c4h.run(writer.kv.put(f"meta-{i}", {"value": i}))
    c4h.sim.run()  # drain replica pushes
    # Crash nodes that are not the reader.
    for victim in c4h.devices[-N_CRASHES:]:
        victim.chimera.fail_abruptly()
        c4h.network.take_offline(victim.name)
    reader = c4h.devices[1]
    survived = 0
    for i in range(N_KEYS):
        try:
            value = c4h.run(reader.kv.get(f"meta-{i}"))
            if value == {"value": i}:
                survived += 1
        except (KeyNotFoundError, NetworkError):
            pass
    return survived


@pytest.mark.benchmark(group="ablation")
def test_ablation_replication_factor(benchmark):
    def scenario():
        return measure(0, seed=1800), measure(2, seed=1800)

    survived_r0, survived_r2 = run_once(benchmark, scenario)

    report(
        "Ablation — replication factor vs availability "
        f"({N_CRASHES} of 6 nodes crash)",
        format_table(
            ["replication", f"keys surviving (of {N_KEYS})"],
            [["0", f"{survived_r0}"], ["2", f"{survived_r2}"]],
        ),
    )

    # Unreplicated state dies with its owners; replicated state survives.
    assert survived_r0 < N_KEYS
    assert survived_r2 == N_KEYS
    assert survived_r2 > survived_r0
