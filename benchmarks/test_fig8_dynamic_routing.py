"""Figure 8: feasibility of dynamic request routing (Town vs Topt).

Paper: a low-end Atom device owns an ``.avi`` video that a mobile
device wants in ``.mp4``.  Either "(i) the format conversion may happen
at the 'owner' node (Town), or (ii) VStore++'s mechanisms for dynamic
resource discovery may determine that a third, desktop node, is most
suitable ...  The observation for Topt show that the latter case
results in substantial performance gains, despite the additional costs
for moving data from owner to the desktop node and executing the
VStore++ decision algorithm."
"""

import pytest

from benchmarks.common import format_table, report, run_once
from repro import Cloud4Home, ClusterConfig
from repro.services import MediaConversion

VIDEO_SIZES_MB = [20, 40, 60, 80, 100]


def build_cluster(seed):
    c4h = Cloud4Home(ClusterConfig(seed=seed, with_ec2=False))
    c4h.start(monitors=False)
    return c4h


def measure_town(size_mb, seed):
    """Conversion pinned at the owner (only the owner hosts it)."""
    c4h = build_cluster(seed)
    owner = c4h.device("netbook0")
    service = MediaConversion()
    c4h.run(owner.registry.register(service))
    service.prewarm(owner.guest)
    name = f"video-{size_mb}.avi"
    c4h.run(owner.client.store_file(name, float(size_mb)))
    t0 = c4h.sim.now
    result = c4h.run(owner.client.process(name, "media-convert#v1"))
    assert result.executed_on == "netbook0"
    return c4h.sim.now - t0


def measure_topt(size_mb, seed):
    """Dynamic discovery across all home nodes (decision included)."""
    c4h = build_cluster(seed)
    c4h.deploy_service(lambda: MediaConversion())
    owner = c4h.device("netbook0")
    name = f"video-{size_mb}.avi"
    c4h.run(owner.client.store_file(name, float(size_mb)))
    t0 = c4h.sim.now
    result = c4h.run(owner.client.process(name, "media-convert#v1"))
    return c4h.sim.now - t0, result.executed_on


@pytest.mark.benchmark(group="fig8")
def test_fig8_dynamic_routing(benchmark):
    def scenario():
        rows = {}
        for size in VIDEO_SIZES_MB:
            town = measure_town(size, seed=1300 + size)
            topt, chosen = measure_topt(size, seed=1300 + size)
            rows[size] = (town, topt, chosen)
        return rows

    rows = run_once(benchmark, scenario)

    table = [
        [
            f"{size}",
            f"{rows[size][0]:.1f}",
            f"{rows[size][1]:.1f}",
            f"{rows[size][0] / rows[size][1]:.1f}x",
            rows[size][2],
        ]
        for size in VIDEO_SIZES_MB
    ]
    report(
        "Figure 8 — media conversion: Town (owner) vs Topt (dynamic) "
        "(seconds)",
        format_table(
            ["video MB", "Town", "Topt", "speedup", "Topt target"], table
        )
        + [
            "paper shape: Topt substantially faster than Town at every "
            "size, despite data movement + decision costs"
        ],
    )

    for size in VIDEO_SIZES_MB:
        town, topt, chosen = rows[size]
        # Dynamic discovery picks the desktop, not the Atom owner.
        assert chosen == "desktop"
        # Substantial gain at every size.
        assert topt < town / 2.0
