"""Figure 4: home vs. remote cloud latency and latency variation.

Paper: "Figure 4 shows the latency and the latency variation for fetch
and store accesses to data stored in nodes in a home vs. a public
remote cloud.  ...  both the absolute latency and particularly the
latency variability are significantly increased when accessing public
cloud storage.  These increases become more significant for larger data
sizes.  For remote cloud accesses, additional variability exists
between the two types of storage operations, due to differences in the
available upload vs. download bandwidth."
"""

import pytest

from benchmarks.common import format_table, mean_std, report, run_once
from repro import (
    Cloud4Home,
    ClusterConfig,
    Placement,
    PlacementTarget,
    StorePolicy,
)

SIZES_MB = [1, 5, 10, 20, 50]
TRIALS = 4


def measure_home(size_mb, trials, seed):
    """Store/fetch latencies within the home cloud (on- and off-node)."""
    c4h = Cloud4Home(ClusterConfig(seed=seed))
    c4h.start(monitors=False)
    n = len(c4h.devices)
    stores, fetches = [], []
    for t in range(trials):
        owner = c4h.devices[t % n]
        # Distribute the dataset across nodes: alternate between
        # on-node placement and a named peer, as the paper's setup does.
        if t % 2 == 0:
            owner.vstore.store_policy = StorePolicy()
        else:
            peer = c4h.devices[(t + 1) % n].name
            owner.vstore.store_policy = StorePolicy(
                default=Placement(PlacementTarget.NAMED_NODE, node=peer)
            )
        name = f"home-{size_mb}-{t}.bin"
        t0 = c4h.sim.now
        c4h.run(owner.client.store_file(name, float(size_mb)))
        stores.append(c4h.sim.now - t0)
        reader = c4h.devices[(t + 2) % n]
        t0 = c4h.sim.now
        c4h.run(reader.client.fetch_object(name))
        fetches.append(c4h.sim.now - t0)
    return stores, fetches


def measure_remote(size_mb, trials, seed):
    """Store/fetch latencies against the simulated public cloud."""
    c4h = Cloud4Home(ClusterConfig(seed=seed))
    c4h.start(monitors=False)
    remote_policy = StorePolicy(default=Placement(PlacementTarget.REMOTE_CLOUD))
    stores, fetches = [], []
    for t in range(trials):
        owner = c4h.devices[t % len(c4h.devices)]
        owner.vstore.store_policy = remote_policy
        name = f"remote-{size_mb}-{t}.bin"
        t0 = c4h.sim.now
        c4h.run(owner.client.store_file(name, float(size_mb)))
        stores.append(c4h.sim.now - t0)
        reader = c4h.devices[(t + 3) % len(c4h.devices)]
        t0 = c4h.sim.now
        c4h.run(reader.client.fetch_object(name))
        fetches.append(c4h.sim.now - t0)
    return stores, fetches


@pytest.mark.benchmark(group="fig4")
def test_fig4_home_vs_remote_latency(benchmark):
    def scenario():
        rows = {}
        for size in SIZES_MB:
            h_store, h_fetch = measure_home(size, TRIALS, seed=100 + size)
            r_store, r_fetch = measure_remote(size, TRIALS, seed=200 + size)
            rows[size] = {
                "home_store": mean_std(h_store),
                "home_fetch": mean_std(h_fetch),
                "remote_store": mean_std(r_store),
                "remote_fetch": mean_std(r_fetch),
            }
        return rows

    rows = run_once(benchmark, scenario)

    table = []
    for size in SIZES_MB:
        r = rows[size]
        table.append(
            [
                f"{size}",
                f"{r['home_fetch'][0]:.2f}±{r['home_fetch'][1]:.2f}",
                f"{r['home_store'][0]:.2f}±{r['home_store'][1]:.2f}",
                f"{r['remote_fetch'][0]:.2f}±{r['remote_fetch'][1]:.2f}",
                f"{r['remote_store'][0]:.2f}±{r['remote_store'][1]:.2f}",
            ]
        )
    report(
        "Figure 4 — home vs remote cloud latency (seconds, mean±std)",
        format_table(
            ["size MB", "home fetch", "home store", "remote fetch", "remote store"],
            table,
        )
        + [
            "paper shape: remote >> home; remote variability >> home; "
            "gap grows with size; remote store > remote fetch"
        ],
    )

    for size in SIZES_MB:
        r = rows[size]
        # Remote accesses are much slower than home accesses.
        assert r["remote_fetch"][0] > 2.0 * r["home_fetch"][0], size
        assert r["remote_store"][0] > 2.0 * r["home_store"][0], size
        # Upload bandwidth < download bandwidth: stores hurt more.
        assert r["remote_store"][0] > r["remote_fetch"][0], size

    # Remote variability exceeds home variability (aggregate over sizes —
    # per-size std from 4 trials is noisy).
    remote_var = sum(rows[s]["remote_fetch"][1] for s in SIZES_MB)
    home_var = sum(rows[s]["home_fetch"][1] for s in SIZES_MB)
    assert remote_var > home_var

    # The absolute gap grows with object size.
    gap_small = rows[SIZES_MB[0]]["remote_fetch"][0] - rows[SIZES_MB[0]]["home_fetch"][0]
    gap_large = rows[SIZES_MB[-1]]["remote_fetch"][0] - rows[SIZES_MB[-1]]["home_fetch"][0]
    assert gap_large > gap_small
