"""Ablation: decision policies route the same request differently.

Section III-A: "The 'policy' parameter ... makes it possible to support
multiple decision policies, where requests are routed to target nodes
depending on overall service performance, vs. achieving balanced
resource utilization or improved battery lives for portable devices."

Scenario: the desktop (mains-powered) is busy; a netbook (on battery)
is idle.  PERFORMANCE follows the idle compute to the netbook; BATTERY
refuses to drain the portable device and stays on the desktop.
"""

import pytest

from benchmarks.common import format_table, report, run_once
from repro import Cloud4Home, ClusterConfig, DecisionPolicy
from repro.services import ComputeModel, Service, ServiceProfile


def relaxed_conversion():
    """A transcoder whose SLA tolerates busy nodes (no free-compute
    floor), so a loaded desktop stays eligible and the two policies can
    genuinely disagree."""
    return Service(
        "convert-lite",
        ComputeModel(cycles_per_mb=4.0e9, working_set_base_mb=48.0),
        profile=ServiceProfile(parallelism=4),
        setup_mb=10.0,
    )


def measure(policy, seed):
    c4h = Cloud4Home(ClusterConfig(seed=seed, with_ec2=False))
    c4h.start(monitors=False)
    c4h.deploy_service(relaxed_conversion, nodes=["desktop", "netbook1"])
    # Saturate the desktop with background work: still eligible for
    # the relaxed SLA, but its idle cycles are gone.
    desktop = c4h.device("desktop")
    background = desktop.guest.execute(6e12, parallelism=4)
    c4h.sim.process(background)
    c4h.sim.run(until=c4h.sim.now + 1.0)
    # Refresh published snapshots so the decision sees the load.
    for device in c4h.devices:
        c4h.run(device.monitor.publish_once())
    owner = c4h.device("netbook0")
    c4h.run(owner.client.store_file("video.avi", 20.0))
    result = c4h.run(
        owner.client.process("video.avi", "convert-lite#v1", policy=policy)
    )
    return result.executed_on


@pytest.mark.benchmark(group="ablation")
def test_ablation_decision_policies(benchmark):
    def scenario():
        return {
            "performance": measure(DecisionPolicy.PERFORMANCE, seed=1900),
            "battery": measure(DecisionPolicy.BATTERY, seed=1900),
        }

    targets = run_once(benchmark, scenario)

    report(
        "Ablation — decision policy routing (desktop busy, netbook idle)",
        format_table(
            ["policy", "chosen target"],
            [[k, v] for k, v in targets.items()],
        ),
    )

    # Performance chases idle cycles onto the battery-powered netbook;
    # the battery policy protects it and stays on mains power.
    assert targets["performance"] == "netbook1"
    assert targets["battery"] == "desktop"
