"""Legacy setup shim.

Kept so that ``pip install -e .`` works in offline environments where the
``wheel`` package (required by PEP 517 editable builds) is unavailable;
all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
